//! End-to-end determinism of the adaptive scheduling-policy engine.
//!
//! The policy layer observes per-node SoC estimates and moves the §5.5
//! rotation boundary online, which makes its event stream far more
//! irregular than the fixed-period schedule — exactly the situation where
//! a worker-count-dependent result would hide. The contract stays the
//! same as for the static sweeps: rendered reports are byte-identical for
//! any worker count, and `Static` is indistinguishable from the paper's
//! fixed configuration down to the simulation cache key.

use dles_core::experiment::{policy_config, Experiment};
use dles_core::faults::FaultProfile;
use dles_core::montecarlo::{render_montecarlo, run_monte_carlo, MonteCarloConfig};
use dles_core::pipeline::PipelineConfig;
use dles_core::policy::SchedulingPolicy;
use dles_core::sweep::{SimKey, SweepEngine};
use dles_sim::SimTime;

/// One horizon-capped job per policy: real 2C physics, bounded runtime.
fn policy_jobs(horizon_s: u64) -> Vec<PipelineConfig> {
    SchedulingPolicy::NAMES
        .iter()
        .map(|name| {
            let mut cfg = policy_config(SchedulingPolicy::by_name(name).expect("known name"));
            cfg.horizon = SimTime::from_secs(horizon_s);
            cfg
        })
        .collect()
}

/// Render a sweep the way `repro --sweep policy` does underneath: result
/// lines in job order, then the engine counters.
fn sweep_report(jobs: &[PipelineConfig], threads: usize) -> String {
    let engine = SweepEngine::new();
    let mut out = String::new();
    for r in engine.run(jobs, threads) {
        out.push_str(&format!(
            "{} lifetime={:?} frames={} misses={} counters={:?}\n",
            r.label, r.lifetime, r.frames_completed, r.deadline_misses, r.counters
        ));
    }
    out.push_str(&format!("{:?}\n", engine.counters()));
    out
}

#[test]
fn adaptive_policy_sweep_is_byte_identical_across_worker_counts() {
    let jobs = policy_jobs(1800);
    let baseline = sweep_report(&jobs, 1);
    assert!(
        baseline.contains("2C+soc-skew") && baseline.contains("2C+adaptive"),
        "sweep must actually exercise the adaptive policies:\n{baseline}"
    );
    for threads in [3, 8] {
        assert_eq!(
            baseline,
            sweep_report(&jobs, threads),
            "policy sweep report must not depend on the worker count ({threads} threads)"
        );
    }
}

#[test]
fn adaptive_montecarlo_report_does_not_depend_on_worker_count() {
    let mut base = policy_config(SchedulingPolicy::by_name("adaptive").expect("known name"));
    base.horizon = SimTime::from_secs(1800);
    let render = |threads: usize| {
        render_montecarlo(&run_monte_carlo(&MonteCarloConfig {
            base: base.clone(),
            trials: 6,
            master_seed: 42,
            profile: FaultProfile::lossy_link(),
            threads,
        }))
    };
    let baseline = render(1);
    for threads in [3, 8] {
        assert_eq!(
            baseline,
            render(threads),
            "adaptive Monte Carlo report diverged at {threads} threads"
        );
    }
}

#[test]
fn static_policy_is_the_paper_configuration_down_to_the_cache_key() {
    // `Static` must not merely behave like experiment 2C — it must *be*
    // 2C as far as the keyed simulation cache can tell, so golden traces
    // and cached results carry over unchanged.
    let paper = Experiment::Exp2C.config();
    assert_eq!(
        SimKey::of(&policy_config(SchedulingPolicy::Static)),
        SimKey::of(&paper)
    );
    for name in ["soc-skew", "adaptive"] {
        let adaptive = policy_config(SchedulingPolicy::by_name(name).expect("known name"));
        assert_ne!(
            SimKey::of(&adaptive),
            SimKey::of(&paper),
            "{name} must key separately from the static baseline"
        );
    }
}
