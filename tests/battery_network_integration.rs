//! Integration of the battery models with the power/network substrates:
//! properties spanning crate boundaries that no single crate can test.

use dles_battery::packs::{itsy_pack_a, itsy_pack_b};
use dles_battery::{simulate_lifetime, Battery, LoadProfile, LoadStep};
use dles_net::ppp::{decode_frames, encode_frame};
use dles_net::SerialConfig;
use dles_power::{CurrentModel, DvsTable, Mode};
use dles_sim::SimRng;

/// Build the load profile of an arbitrary (mode, level, seconds) schedule
/// using the power model — the bridge the node simulator crosses every
/// frame.
fn profile_from_schedule(schedule: &[(Mode, usize, f64)]) -> LoadProfile {
    let table = DvsTable::sa1100();
    let model = CurrentModel::itsy();
    let steps: Vec<LoadStep> = schedule
        .iter()
        .map(|&(mode, level_idx, secs)| {
            let level = table.level(level_idx % table.len());
            LoadStep::from_secs(secs, model.current_ma(mode, level).get())
        })
        .collect();
    LoadProfile::repeating(steps)
}

#[test]
fn dvs_during_io_always_helps_the_battery() {
    // Swapping the comm/idle steps of any frame shape to the 59 MHz level
    // never shortens pack-B lifetime.
    let table = DvsTable::sa1100();
    let model = CurrentModel::itsy();
    for level_idx in 1..table.len() {
        let level = table.level(level_idx);
        let low = table.lowest();
        let with_dvs = LoadProfile::repeating(vec![
            LoadStep::from_secs(1.0, model.current_ma(Mode::Communication, low).get()),
            LoadStep::from_secs(1.0, model.current_ma(Mode::Computation, level).get()),
            LoadStep::from_secs(0.3, model.current_ma(Mode::Idle, low).get()),
        ]);
        let without = LoadProfile::repeating(vec![
            LoadStep::from_secs(1.0, model.current_ma(Mode::Communication, level).get()),
            LoadStep::from_secs(1.0, model.current_ma(Mode::Computation, level).get()),
            LoadStep::from_secs(0.3, model.current_ma(Mode::Idle, level).get()),
        ]);
        let mut b1 = itsy_pack_b().fresh();
        let t_with = simulate_lifetime(&mut b1, &with_dvs).lifetime;
        let mut b2 = itsy_pack_b().fresh();
        let t_without = simulate_lifetime(&mut b2, &without).lifetime;
        assert!(
            t_with >= t_without,
            "DVS during I/O hurt at level {level_idx}: {t_with:?} < {t_without:?}"
        );
    }
}

#[test]
fn both_packs_prefer_lower_dvs_levels_for_compute_only_loads() {
    // Monotonicity across the full frequency ladder (experiment 0A→0B
    // generalized): lower level ⇒ longer life, more total frames.
    for pack in [itsy_pack_a(), itsy_pack_b()] {
        let table = DvsTable::sa1100();
        let model = CurrentModel::itsy();
        let mut prev_life = 0.0;
        for level in table.iter().collect::<Vec<_>>().into_iter().rev() {
            let profile = LoadProfile::constant(model.current_ma(Mode::Computation, level).get());
            let mut b = pack.fresh();
            let life = simulate_lifetime(&mut b, &profile).lifetime.as_hours_f64();
            assert!(
                life > prev_life,
                "{}: life at {level} = {life} not longer than at next level up",
                pack.name
            );
            prev_life = life;
        }
    }
}

#[test]
fn transfer_time_accounts_for_framing_overhead_budget() {
    // The serial model's 80/115.2 efficiency envelope must cover the PPP
    // framing overhead our codec actually produces for the paper's
    // payloads (framing alone explains only part; TCP/IP + turnaround the
    // rest).
    let cfg = SerialConfig::paper();
    let payload: Vec<u8> = (0..10_342u32).map(|i| (i as u8).wrapping_mul(31)).collect();
    let encoded = encode_frame(&payload);
    let framing_ratio = encoded.len() as f64 / payload.len() as f64;
    let efficiency = cfg.efficiency(); // ≈ 0.69
    assert!(
        1.0 / efficiency > framing_ratio,
        "measured efficiency {} can't even cover framing {framing_ratio}",
        efficiency
    );
    // And the frame survives the trip.
    let frames = decode_frames(&encoded);
    assert_eq!(frames, vec![Ok(payload)]);
}

#[test]
fn jittered_transaction_times_bound_battery_impact() {
    // Over many jittered transactions the mean startup approaches 75 ms,
    // so the deterministic profile is an unbiased stand-in.
    let cfg = SerialConfig::paper();
    let mut rng = SimRng::seed_from_u64(123);
    let n = 10_000;
    let mean_s: f64 = (0..n)
        .map(|_| cfg.transfer_time(614, Some(&mut rng)).as_secs_f64())
        .sum::<f64>()
        / n as f64;
    let nominal = cfg.transfer_secs(614);
    assert!(
        (mean_s - nominal).abs() < 0.002,
        "mean {mean_s} vs {nominal}"
    );
}

fn random_schedule(
    rng: &mut SimRng,
    max_steps: u64,
    min_secs: f64,
    max_secs: f64,
) -> Vec<(Mode, usize, f64)> {
    let modes = [Mode::Idle, Mode::Communication, Mode::Computation];
    let n = rng.uniform_u64(1, max_steps) as usize;
    (0..n)
        .map(|_| {
            (
                modes[rng.uniform_u64(0, 2) as usize],
                rng.uniform_u64(0, 10) as usize,
                rng.uniform_f64(min_secs, max_secs),
            )
        })
        .collect()
}

/// Cross-crate conservation: any schedule of (mode, level, duration)
/// steps discharges a battery by exactly the charge the power model
/// integrates. (Seeded randomized test — deterministic.)
#[test]
fn prop_schedule_charge_conservation() {
    let mut rng = SimRng::seed_from_u64(0x5C8E);
    for round in 0..48 {
        let schedule = random_schedule(&mut rng, 19, 0.01, 30.0);
        let profile = profile_from_schedule(&schedule);
        let mut b = itsy_pack_b().fresh();
        let life = simulate_lifetime(&mut b, &profile);
        let total = life.delivered_mah + b.state_of_charge() * b.nominal_capacity_mah();
        assert!(
            (total - itsy_pack_b().kibam.capacity_mah).abs() < 1e-6 * total,
            "round {round}: delivered {} + stranded {} != capacity",
            life.delivered_mah.get(),
            (b.state_of_charge() * b.nominal_capacity_mah()).get()
        );
    }
}

/// Lifetime under any repeating schedule is bounded below by the
/// all-at-max-current estimate and above by nominal capacity over the
/// mean current. (Seeded randomized test — deterministic.)
#[test]
fn prop_lifetime_bounds() {
    let mut rng = SimRng::seed_from_u64(0xB0B5);
    let mut checked = 0;
    for round in 0..48 {
        let schedule = random_schedule(&mut rng, 9, 0.05, 10.0);
        let profile = profile_from_schedule(&schedule);
        let mean = profile.mean_current_ma();
        if mean.get() <= 1.0 {
            continue;
        }
        checked += 1;
        let cap = itsy_pack_b().kibam.capacity_mah;
        let mut b = itsy_pack_b().fresh();
        let life = simulate_lifetime(&mut b, &profile).lifetime.as_hours_f64();
        let upper = (cap / mean).get();
        // Available-well-only lower bound.
        let lower = itsy_pack_b().kibam.c * cap.get() / 135.0; // max model current ≈ 130 mA
        assert!(
            life <= upper * 1.001,
            "round {round}: life {life} > {upper}"
        );
        assert!(
            life >= lower * 0.999,
            "round {round}: life {life} < {lower}"
        );
    }
    assert!(checked > 24, "too few non-trivial schedules: {checked}");
}
