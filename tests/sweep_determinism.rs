//! End-to-end determinism of the parallel sweep engine.
//!
//! The sweep engine's contract is that the *rendered report* — not just
//! the numbers — is byte-identical for any worker count and any cache
//! state, and that the parallel rewiring of the Monte Carlo and trace
//! paths changed no output byte (pinned against `tests/goldens/`).

use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use dles_core::experiment::Experiment;
use dles_core::faults::FaultProfile;
use dles_core::montecarlo::{render_montecarlo, run_monte_carlo, MonteCarloConfig};
use dles_core::pipeline::{run_pipeline_with, PipelineConfig};
use dles_core::rotation::RotationConfig;
use dles_core::sweep::{fig8_lifetime_sweep, render_fig8_sweep, SweepEngine};
use dles_core::workload::SystemConfig;
use dles_sim::{JsonlRecorder, SimTime};

/// A short Exp2-shaped job: real pipeline physics, capped horizon.
fn job(label: &str, horizon_s: u64, seed: u64) -> PipelineConfig {
    let mut cfg = Experiment::Exp2.config();
    cfg.label = label.to_owned();
    cfg.horizon = SimTime::from_secs(horizon_s);
    cfg.jitter_seed = Some(seed);
    cfg
}

/// Render a sweep the way `repro --sweep` does: result lines, then the
/// engine counters.
fn sweep_report(jobs: &[PipelineConfig], threads: usize) -> String {
    let engine = SweepEngine::new();
    let mut out = String::new();
    for r in engine.run(jobs, threads) {
        out.push_str(&format!(
            "{} lifetime={:?} frames={} misses={} counters={:?}\n",
            r.label, r.lifetime, r.frames_completed, r.deadline_misses, r.counters
        ));
    }
    out.push_str(&format!("{:?}\n", engine.counters()));
    out
}

#[test]
fn sweep_report_is_byte_identical_across_worker_counts() {
    let jobs = vec![
        job("a", 300, 1),
        job("b", 450, 2),
        job("c", 300, 1), // duplicate of `a` under a different label
        job("d", 600, 3),
        job("e", 150, 4),
    ];
    let baseline = sweep_report(&jobs, 1);
    for threads in [3, 8] {
        assert_eq!(
            baseline,
            sweep_report(&jobs, threads),
            "sweep report must not depend on the worker count ({threads} threads)"
        );
    }
}

#[test]
fn second_identical_sweep_is_served_from_the_cache() {
    let engine = SweepEngine::new();
    let sys = SystemConfig::paper();
    let first = fig8_lifetime_sweep(&engine, &sys, 0);
    assert_eq!(engine.counters().get("sweep_cache_hits"), 0);
    let sims_after_first = engine.counters().get("sweep_sims_run");
    assert!(sims_after_first > 0, "cold sweep must simulate something");
    let second = fig8_lifetime_sweep(&engine, &sys, 3);
    assert!(
        engine.counters().get("sweep_cache_hits") > 0,
        "identical second sweep must hit the cache"
    );
    assert_eq!(
        engine.counters().get("sweep_sims_run"),
        sims_after_first,
        "identical second sweep must not simulate again"
    );
    assert_eq!(
        render_fig8_sweep(&first),
        render_fig8_sweep(&second),
        "cache hits must be observationally invisible"
    );
}

// ---- golden pins: the parallel rewiring changed no output byte ----

#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join(name)
}

#[test]
fn exp2c_trace_golden_survives_the_sweep_rewiring() {
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let out = buf.clone();
    let mut cfg = Experiment::Exp2C.config();
    cfg.jitter_seed = Some(0x5EED);
    cfg.rotation = Some(RotationConfig::every(10));
    cfg.horizon = SimTime::from_secs(230);
    let _ = run_pipeline_with(cfg, Box::new(JsonlRecorder::to_writer(Box::new(out))));
    let actual = buf.0.lock().unwrap().clone();
    let golden = std::fs::read(golden_path("exp2c_trace_230s.jsonl")).expect("golden missing");
    assert!(
        actual == golden,
        "seeded EXP-2C trace diverged ({} vs {} bytes)",
        actual.len(),
        golden.len()
    );
}

#[test]
fn mc16_golden_survives_the_par_map_rewiring() {
    let mut base = Experiment::Exp2B.config();
    base.horizon = SimTime::from_secs(3600);
    // Explicitly vary the worker count: the report must match the golden
    // (captured pre-rewiring) at every thread setting, not just the default.
    for threads in [1, 3] {
        let report = run_monte_carlo(&MonteCarloConfig {
            base: base.clone(),
            trials: 16,
            master_seed: 42,
            profile: FaultProfile::lossy_link(),
            threads,
        });
        let golden =
            std::fs::read_to_string(golden_path("mc16_report_3600s.txt")).expect("golden missing");
        assert_eq!(
            render_montecarlo(&report),
            golden,
            "16-trial Monte Carlo report diverged at {threads} threads"
        );
    }
}
