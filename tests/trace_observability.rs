//! Integration tests for the observability subsystem: the structured
//! event trace must be byte-for-byte deterministic under a fixed seed,
//! and the monotonic event counters must agree with the metrics the
//! experiment runner reports.

use std::io::Write;
use std::sync::{Arc, Mutex};

use dles_core::experiment::Experiment;
use dles_core::pipeline::{run_pipeline, run_pipeline_with};
use dles_core::rotation::RotationConfig;
use dles_sim::{JsonlRecorder, SimTime};

/// A `Write` target the test can read back after the recorder is dropped.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run 100 frame slots of experiment 2C (rotating every 10 frames so
/// rotation events land inside the window) with a JSONL recorder attached
/// and return the raw bytes it wrote.
fn traced_2c_jsonl(seed: u64) -> Vec<u8> {
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let out = buf.clone();
    let mut cfg = Experiment::Exp2C.config();
    cfg.jitter_seed = Some(seed);
    cfg.rotation = Some(RotationConfig::every(10));
    cfg.horizon = SimTime::from_secs(230);
    let _ = run_pipeline_with(cfg, Box::new(JsonlRecorder::to_writer(Box::new(out))));
    let bytes = buf.0.lock().unwrap().clone();
    bytes
}

#[test]
fn seeded_exp2c_traces_are_byte_identical() {
    let a = traced_2c_jsonl(0x5EED);
    let b = traced_2c_jsonl(0x5EED);
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a, b, "same-seed traces must be byte-identical");
}

#[test]
fn trace_lines_are_ordered_structured_jsonl() {
    let text = String::from_utf8(traced_2c_jsonl(7)).expect("trace is UTF-8");
    let mut last_t = 0u64;
    let mut kinds = std::collections::BTreeSet::new();
    for line in text.lines() {
        assert!(line.starts_with("{\"t_us\": "), "bad line start: {line}");
        assert!(line.ends_with('}'), "bad line end: {line}");
        let t: u64 = line["{\"t_us\": ".len()..]
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap_or_else(|_| panic!("t_us not an integer in {line}"));
        assert!(t >= last_t, "time went backwards: {t} < {last_t}");
        last_t = t;
        let kind = line
            .split("\"kind\": \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or_else(|| panic!("no kind field in {line}"));
        kinds.insert(kind.to_owned());
    }
    for expected in [
        "state_transition",
        "power_segment",
        "transaction",
        "io",
        "frame_complete",
        "rotation",
    ] {
        assert!(
            kinds.contains(expected),
            "missing kind {expected}; saw {kinds:?}"
        );
    }
}

#[test]
fn counters_match_result_metrics_for_fig10_series() {
    // 100 frame slots of each I/O-bound experiment: the counters must
    // equal the metrics the result carries, because both are incremented
    // at the same event sites.
    for exp in Experiment::FIG10 {
        let mut cfg = exp.config();
        cfg.horizon = SimTime::from_secs(230);
        let r = run_pipeline(cfg);
        let c = |name: &str| r.counters.get(name);
        assert_eq!(
            c("frames_completed"),
            r.frames_completed,
            "{}: frames_completed counter",
            exp.label()
        );
        assert_eq!(
            c("deadline_misses"),
            r.deadline_misses,
            "{}: deadline_misses counter",
            exp.label()
        );
        assert!(
            c("frames_emitted") >= r.frames_completed,
            "{}: emitted {} < completed {}",
            exp.label(),
            c("frames_emitted"),
            r.frames_completed
        );
        assert!(
            c("state_transitions") > 0 && c("transfers_data") > 0,
            "{}: transitions {} transfers {}",
            exp.label(),
            c("state_transitions"),
            c("transfers_data")
        );
    }
}

#[test]
fn untraced_and_traced_runs_report_the_same_metrics() {
    // The recorder must be pure observation: attaching one cannot change
    // the simulation outcome.
    let mut cfg = Experiment::Exp2.config();
    cfg.horizon = SimTime::from_secs(230);
    let plain = run_pipeline(cfg.clone());
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let traced = run_pipeline_with(cfg, Box::new(JsonlRecorder::to_writer(Box::new(buf))));
    assert_eq!(plain.frames_completed, traced.frames_completed);
    assert_eq!(plain.deadline_misses, traced.deadline_misses);
    assert_eq!(plain.lifetime, traced.lifetime);
    assert_eq!(
        plain.counters.iter().collect::<Vec<_>>(),
        traced.counters.iter().collect::<Vec<_>>()
    );
}
