//! Golden-output regression tests for the typed-quantities migration.
//!
//! The units refactor (`dles-units`) must be observationally invisible:
//! every serialized trace line and report byte must be identical before
//! and after wrapping the `f64` hot paths in newtypes. These tests pin
//! the seeded EXP-2C trace and the 16-trial Monte Carlo report against
//! goldens captured from the pre-migration tree (`tests/goldens/`).
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! cargo test -p dles-tests --test golden_outputs -- --ignored regen
//! ```
//!
//! then inspect the diff before committing — an unexpected diff here
//! means simulation arithmetic changed, not just types.

use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use dles_core::experiment::Experiment;
use dles_core::faults::FaultProfile;
use dles_core::montecarlo::{render_montecarlo, run_monte_carlo, MonteCarloConfig};
use dles_core::pipeline::run_pipeline_with;
use dles_core::rotation::RotationConfig;
use dles_sim::{JsonlRecorder, SimTime};

/// A `Write` target the test can read back after the recorder is dropped.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join(name)
}

/// 230 s of seeded EXP-2C with rotation every 10 frames — the same window
/// `trace_observability.rs` uses, so every record kind appears.
fn exp2c_trace_bytes() -> Vec<u8> {
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let out = buf.clone();
    let mut cfg = Experiment::Exp2C.config();
    cfg.jitter_seed = Some(0x5EED);
    cfg.rotation = Some(RotationConfig::every(10));
    cfg.horizon = SimTime::from_secs(230);
    let _ = run_pipeline_with(cfg, Box::new(JsonlRecorder::to_writer(Box::new(out))));
    let bytes = buf.0.lock().unwrap().clone();
    bytes
}

/// 16-trial Monte Carlo study over a lossy link, master seed 42, bounded
/// to a 3600 s horizon (the CI smoke setting) so the test stays fast.
fn mc16_report_text() -> String {
    let mut base = Experiment::Exp2B.config();
    base.horizon = SimTime::from_secs(3600);
    let report = run_monte_carlo(&MonteCarloConfig {
        base,
        trials: 16,
        master_seed: 42,
        profile: FaultProfile::lossy_link(),
        threads: 0,
    });
    render_montecarlo(&report)
}

#[test]
fn exp2c_trace_matches_golden() {
    let golden = std::fs::read(golden_path("exp2c_trace_230s.jsonl"))
        .expect("golden missing — run the ignored `regen` test once");
    let actual = exp2c_trace_bytes();
    assert!(
        actual == golden,
        "seeded EXP-2C trace diverged from tests/goldens/exp2c_trace_230s.jsonl \
         ({} vs {} bytes) — simulation output changed, not just types",
        actual.len(),
        golden.len()
    );
}

#[test]
fn mc16_report_matches_golden() {
    let golden = std::fs::read_to_string(golden_path("mc16_report_3600s.txt"))
        .expect("golden missing — run the ignored `regen` test once");
    let actual = mc16_report_text();
    assert_eq!(
        actual, golden,
        "16-trial Monte Carlo report diverged from tests/goldens/mc16_report_3600s.txt"
    );
}

/// The committed EXP-2C golden must conform to the statically extracted
/// trace schema: same flow as `dles-lint --check-goldens`, driven through
/// the library so a schema/golden mismatch fails `cargo test` even when
/// the lint binary is never invoked.
#[test]
fn committed_goldens_conform_to_the_trace_schema() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ lives one level below the workspace root")
        .to_path_buf();
    let mut files = Vec::new();
    for top in dles_lint::DEFAULT_ROOTS {
        dles_lint::collect_rs_files(&root.join(top), &mut files).unwrap();
    }
    files.sort();
    let mut outcome = dles_lint::scan_files(&root, &files);
    dles_lint::analyze_workspace(&root, &mut outcome, true);
    let schema = outcome
        .schema
        .as_ref()
        .expect("full workspace scan always builds a schema");
    assert!(
        schema.kinds.contains_key("transaction"),
        "schema extraction missed the workspace emit sites entirely"
    );
    let (findings, io_errors) = dles_lint::schema::check_goldens(schema, &root, "tests/goldens");
    assert_eq!(io_errors, 0, "tests/goldens/ must be readable");
    assert!(
        findings.is_empty(),
        "committed goldens no longer conform to the extracted trace schema:\n{}",
        findings
            .iter()
            .map(|f| format!("{}:{} [{}] {}", f.path, f.line, f.rule.as_str(), f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Rewrites both goldens in place. Ignored by default: regeneration is an
/// explicit, reviewed act, never a side effect of `cargo test`.
#[test]
#[ignore = "rewrites tests/goldens/ — run explicitly and review the diff"]
fn regen_goldens() {
    std::fs::write(golden_path("exp2c_trace_230s.jsonl"), exp2c_trace_bytes()).unwrap();
    std::fs::write(golden_path("mc16_report_3600s.txt"), mc16_report_text()).unwrap();
}
