//! Integration tests of the discrete-event pipeline against the analytic
//! battery model: the two independent paths to a lifetime prediction must
//! agree, and the pipeline's scheduling must respect the paper's timing.

use dles_battery::packs::itsy_pack_b;
use dles_battery::{simulate_lifetime, LoadProfile, LoadStep};
use dles_core::experiment::Experiment;
use dles_core::node::BatterySpec;
use dles_core::pipeline::run_pipeline;
use dles_core::policy::DvsPolicy;
use dles_core::rotation::RotationConfig;
use dles_power::{CurrentModel, DvsTable, Mode};
use dles_sim::SimTime;
use dles_tests::assert_close_percent;

/// The DES lifetime of the baseline must match the analytic discharge of
/// the equivalent load profile (independent implementations).
#[test]
fn des_agrees_with_analytic_baseline() {
    let des = run_pipeline(Experiment::Exp1.config());

    let table = DvsTable::sa1100();
    let model = CurrentModel::itsy();
    let comm = model.current_ma(Mode::Communication, table.highest()).get();
    let comp = model.current_ma(Mode::Computation, table.highest()).get();
    let idle = model.current_ma(Mode::Idle, table.highest()).get();
    // RECV 1.109 s, PROC 1.1 s, SEND 0.085 s, idle remainder of 2.3 s.
    let recv = 0.075 + 10_342.0 * 8.0 / 80_000.0;
    let send = 0.075 + 102.0 * 8.0 / 80_000.0;
    let idle_t = 2.3 - recv - send - 1.1;
    let profile = LoadProfile::repeating(vec![
        LoadStep::from_secs(recv, comm),
        LoadStep::from_secs(1.1, comp),
        LoadStep::from_secs(send, comm),
        LoadStep::from_secs(idle_t, idle),
    ]);
    let mut batt = itsy_pack_b().fresh();
    let analytic = simulate_lifetime(&mut batt, &profile);

    assert_close_percent(
        des.life_hours(),
        analytic.lifetime.as_hours_f64(),
        1.0,
        "DES vs analytic baseline lifetime",
    );
}

/// The DES's mean node current must match the profile arithmetic.
#[test]
fn des_mean_current_matches_profile_arithmetic() {
    let r = run_pipeline(Experiment::Exp1.config());
    // (1.109·110 + 1.1·130 + 0.085·110 + idle·65) / 2.3
    let table = DvsTable::sa1100();
    let model = CurrentModel::itsy();
    let comm = model.current_ma(Mode::Communication, table.highest()).get();
    let comp = model.current_ma(Mode::Computation, table.highest()).get();
    let idle = model.current_ma(Mode::Idle, table.highest()).get();
    let recv = 0.075 + 10_342.0 * 8.0 / 80_000.0;
    let send = 0.075 + 102.0 * 8.0 / 80_000.0;
    let idle_t = 2.3 - recv - send - 1.1;
    let expect = (recv * comm + 1.1 * comp + send * comm + idle_t * idle) / 2.3;
    assert_close_percent(
        r.nodes[0].mean_current_ma.get(),
        expect,
        1.0,
        "baseline mean current",
    );
}

/// Scheme-1 steady state: both nodes meet D with the Fig. 8 levels, and
/// the host receives one result per D after pipeline fill.
#[test]
fn two_node_throughput_is_one_result_per_d() {
    let mut cfg = Experiment::Exp2.config();
    cfg.horizon = SimTime::from_secs(2300); // 1000 frame slots
    let r = run_pipeline(cfg);
    // ~999 results in 1000 slots (one slot of pipeline fill).
    assert!(
        (997..=1000).contains(&r.frames_completed),
        "frames {}",
        r.frames_completed
    );
    assert_eq!(r.deadline_misses, 0);
}

/// Rotation at an extreme period (every frame) still meets deadlines —
/// the §5.5 doubling absorbs each transition.
#[test]
fn rotation_every_frame_preserves_throughput() {
    let mut cfg = Experiment::Exp2C.config();
    cfg.rotation = Some(RotationConfig::every(1));
    cfg.horizon = SimTime::from_secs(2300);
    let r = run_pipeline(cfg);
    assert!(r.frames_completed >= 990, "frames {}", r.frames_completed);
    assert_eq!(
        r.deadline_misses, 0,
        "per-frame rotation should still meet D"
    );
}

/// Three-node pipelines work end to end, including rotation.
#[test]
fn three_node_pipeline_with_rotation() {
    let sys = dles_core::workload::SystemConfig::paper();
    let best = dles_core::partition::best_partition(&sys, 3).expect("3-node feasible");
    let mut cfg = Experiment::Exp2C.config();
    cfg.shares = best.shares.clone();
    cfg.levels = best.levels.iter().map(|l| l.unwrap()).collect();
    cfg.rotation = Some(RotationConfig::every(50));
    cfg.policy = DvsPolicy::DvsDuringIo;
    cfg.horizon = SimTime::from_secs(3 * 2300);
    let r = run_pipeline(cfg);
    assert_eq!(r.n_nodes, 3);
    let slots = 3 * 1000;
    assert!(
        r.frames_completed as i64 >= slots - 10,
        "frames {} of {} slots",
        r.frames_completed,
        slots
    );
    assert!(
        r.deadline_misses <= r.frames_completed / 100,
        "{} misses",
        r.deadline_misses
    );
}

/// An ideal battery erases the benefit ordering the paper observed for
/// recovery effects: with no rate-capacity fade the pulsed 1A profile
/// gains exactly its current-ratio, nothing more.
#[test]
fn ideal_battery_changes_the_story() {
    let mut base = Experiment::Exp1.config();
    base.battery = BatterySpec::Ideal {
        capacity_mah: itsy_pack_b().kibam.capacity_mah,
    };
    let mut dvs = Experiment::Exp1A.config();
    dvs.battery = base.battery;
    let t1 = run_pipeline(base).life_hours();
    let t1a = run_pipeline(dvs).life_hours();
    // Ideal battery: lifetime ratio = inverse mean-current ratio ≈ 1.44.
    let ratio = t1a / t1;
    assert_close_percent(ratio, 1.44, 3.0, "ideal-battery 1A/1 ratio");
}

/// Deterministic reproducibility of a full experiment run.
#[test]
fn full_runs_are_deterministic() {
    let a = run_pipeline(Experiment::Exp2C.config());
    let b = run_pipeline(Experiment::Exp2C.config());
    assert_eq!(a.frames_completed, b.frames_completed);
    assert_eq!(a.lifetime, b.lifetime);
    assert_eq!(a.deadline_misses, b.deadline_misses);
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(x.death_time, y.death_time);
        assert!((x.delivered_mah - y.delivered_mah).abs().get() < 1e-12);
    }
}
