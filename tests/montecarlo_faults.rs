//! Integration tests for the fault-injection layer and the Monte Carlo
//! robustness harness: thread-count-independent reproducibility, the
//! recovery protocol actually earning its cost on a lossy link, and
//! corrupted PPP frames driving retries rather than garbage delivery.

use dles_core::experiment::Experiment;
use dles_core::faults::{FaultPlan, FaultProfile};
use dles_core::montecarlo::{render_montecarlo, run_monte_carlo, MonteCarloConfig};
use dles_core::pipeline::run_pipeline;
use dles_core::PipelineConfig;
use dles_sim::{MemoryRecorder, SimTime};

/// Experiment 2B (two nodes + §5.4 recovery) capped to a short horizon so
/// a trial measures fault handling, not a full battery discharge.
fn short_2b() -> PipelineConfig {
    let mut cfg = Experiment::Exp2B.config();
    cfg.horizon = SimTime::from_secs(7200);
    cfg
}

#[test]
fn montecarlo_identical_across_thread_counts() {
    let mc = |threads: usize| MonteCarloConfig {
        base: short_2b(),
        trials: 16,
        master_seed: 2024,
        profile: FaultProfile::lossy_link(),
        threads,
    };
    let serial = run_monte_carlo(&mc(1));
    let parallel = run_monte_carlo(&mc(8));
    // 3 does not divide 16 trials: the uneven work split must not reorder
    // anything either.
    let uneven = run_monte_carlo(&mc(3));
    assert_eq!(serial.trials, parallel.trials, "per-trial outcomes differ");
    assert_eq!(serial.lifetime_h, parallel.lifetime_h);
    assert_eq!(serial.frames, parallel.frames);
    assert_eq!(serial.misses, parallel.misses);
    assert_eq!(serial.counters, parallel.counters);
    let reference = render_montecarlo(&serial);
    assert_eq!(
        reference,
        render_montecarlo(&parallel),
        "rendered reports must be byte-identical across thread counts"
    );
    assert_eq!(
        reference,
        render_montecarlo(&uneven),
        "rendered reports must be byte-identical for uneven trial splits"
    );
    assert!(serial.lifetime_h.mean > 0.0);
    assert_eq!(serial.trials.len(), 16);
}

#[test]
fn recovery_beats_no_recovery_on_lossy_link() {
    let with = run_monte_carlo(&MonteCarloConfig {
        base: short_2b(),
        trials: 16,
        master_seed: 7,
        profile: FaultProfile::lossy_link(),
        threads: 0,
    });
    let mut base = short_2b();
    base.recovery = None;
    base.label = format!("{} (no recovery)", base.label);
    let without = run_monte_carlo(&MonteCarloConfig {
        base,
        trials: 16,
        master_seed: 7,
        profile: FaultProfile::lossy_link(),
        threads: 0,
    });
    assert!(
        with.frames.mean > without.frames.mean,
        "recovery {} frames vs bare {} frames",
        with.frames.mean,
        without.frames.mean
    );
    assert!(with.counters.get("retransmissions") > 0);
    assert_eq!(without.counters.get("retransmissions"), 0);
}

#[test]
fn corrupted_ppp_frames_drive_retries_not_garbage() {
    let mut cfg = short_2b();
    cfg.horizon = SimTime::from_secs(1800);
    cfg.jitter_seed = Some(1);
    // Bit errors only, hot enough that multi-KB transfers get hit often.
    cfg.faults = Some(FaultPlan::new(
        FaultProfile {
            bit_error_rate: 1e-5,
            ..FaultProfile::none()
        },
        99,
    ));
    let r = run_pipeline(cfg.clone());
    assert!(
        r.counters.get("fault_bit_errors") > 0,
        "no corruption drawn"
    );
    assert!(
        r.counters.get("retransmissions") > 0,
        "losses never retried"
    );
    assert!(r.frames_completed > 0, "pipeline starved");
    assert!(
        r.frames_completed <= r.counters.get("frames_emitted"),
        "more frames delivered than emitted: duplicates leaked through"
    );
    // The structured trace labels every injected fault.
    cfg.horizon = SimTime::from_secs(600);
    let mut engine = dles_core::build_engine_with(cfg, Box::new(MemoryRecorder::new()));
    engine.run_until(SimTime::from_secs(600));
    let records = engine.recorder_mut().take_records();
    assert!(
        records
            .iter()
            .any(|rec| rec.kind == "fault_injected" && rec.str_field("fault").is_some()),
        "no fault_injected record emitted"
    );
}

#[test]
fn brownouts_interrupt_but_do_not_kill() {
    let mut cfg = short_2b();
    cfg.jitter_seed = Some(3);
    cfg.faults = Some(FaultPlan::new(
        FaultProfile {
            brownout_mean_interval: SimTime::from_secs(120),
            brownout_duration: SimTime::from_secs(3),
            ..FaultProfile::none()
        },
        5,
    ));
    let r = run_pipeline(cfg);
    assert!(r.counters.get("fault_brownouts") > 0, "no brownout fired");
    assert!(
        r.frames_completed > 100,
        "pipeline should keep delivering between brownouts: {}",
        r.frames_completed
    );
    assert_eq!(
        r.counters.get("node_deaths"),
        0,
        "brownouts are transient, not battery deaths"
    );
}
