//! Consistency between the real ATR implementation and the Fig. 6 profile
//! the lifetime simulator consumes: relative block costs, payload
//! directions, and the partition algebra both sides share.

use dles_atr::pipeline::AtrPipeline;
use dles_atr::scene::SceneBuilder;
use dles_atr::{AtrProfile, Block, BlockRange};

/// The real implementation's per-block work ranks exactly like the
/// paper's measured latencies: CD > IFFT > FFT > TD.
#[test]
fn real_block_costs_rank_like_fig6() {
    let pipeline = AtrPipeline::standard();
    let profile = AtrProfile::paper();
    // Aggregate over several frames so per-scene variation washes out.
    let mut flops = [0u64; Block::COUNT];
    for seed in 0..10 {
        let scene = SceneBuilder::new(128, 80).seed(seed).targets(1).build();
        let report = pipeline.run(&scene.image);
        for b in Block::ALL {
            flops[b.index()] += report.flops(b);
        }
    }
    // Same rank order as the profile's latencies.
    let mut by_flops: Vec<Block> = Block::ALL.to_vec();
    by_flops.sort_by_key(|b| flops[b.index()]);
    let mut by_profile: Vec<Block> = Block::ALL.to_vec();
    by_profile.sort_by(|a, b| {
        profile
            .block(*a)
            .peak_secs
            .total_cmp(&profile.block(*b).peak_secs)
    });
    assert_eq!(
        by_flops, by_profile,
        "work rank {by_flops:?} vs latency rank {by_profile:?}"
    );
}

/// Payload direction: every block shrinks or grows the data exactly as
/// the profile's recv/send accounting assumes, for every partition.
#[test]
fn partition_payload_conservation() {
    let profile = AtrProfile::paper();
    for n in 1..=4 {
        for ranges in dles_atr::blocks::partitions(n) {
            // Adjacent stages agree on the handoff size.
            for w in ranges.windows(2) {
                assert_eq!(
                    profile.send_bytes(w[0]),
                    profile.recv_bytes(w[1]),
                    "handoff mismatch at {:?}",
                    w
                );
            }
            // Chain ends are the frame input and final result.
            assert_eq!(profile.recv_bytes(ranges[0]), profile.input_bytes);
            assert_eq!(
                profile.send_bytes(*ranges.last().unwrap()),
                profile.block(Block::ComputeDistance).output_bytes
            );
        }
    }
}

/// The profile's whole-pipeline latency at peak equals §4.3's 1.1 s and
/// the serial model reproduces the baseline's 1.1/0.1 s I/O split.
#[test]
fn baseline_frame_budget_reconstructs() {
    let profile = AtrProfile::paper();
    let serial = dles_net::SerialConfig::paper();
    let full = BlockRange::full();
    let recv = serial.transfer_secs(profile.recv_bytes(full));
    let proc = profile.peak_secs(full);
    let send = serial.transfer_secs(profile.send_bytes(full));
    let total = recv + proc + send;
    assert!((recv - 1.1).abs() < 0.05, "recv {recv}");
    assert!((proc - 1.1).abs() < 1e-9, "proc {proc}");
    assert!((send - 0.1).abs() < 0.02, "send {send}");
    // §5.1: "the total time to process one frame is D = 2.3 seconds".
    assert!((total - 2.3).abs() < 0.05, "total {total}");
}

/// A real distributed run of the implementation: stage 1 (detection) on
/// one "node", stages 2–4 on another, exchanging the intermediate ROI —
/// produces the same detections as the monolithic pipeline.
#[test]
fn split_execution_matches_monolithic() {
    let pipeline = AtrPipeline::standard();
    for seed in [5u64, 7, 11] {
        let scene = SceneBuilder::new(128, 80).seed(seed).targets(1).build();
        // Monolithic.
        let mono = pipeline.run(&scene.image);
        // "Node1": detection only.
        let (rois, _) = pipeline.run_detection(&scene.image);
        // "Node2": matched filter + distance per ROI (re-using the public
        // block functions as the second node's program).
        use dles_atr::distance::{compute_distance, DEFAULT_SCALES};
        use dles_atr::filter::{fft_block, ifft_block, TemplateSpectra};
        use dles_atr::template::Template;
        let spectra = TemplateSpectra::build(&Template::bank());
        let mut split_targets = Vec::new();
        for roi in &rois {
            let patch = roi.extract(&scene.image);
            let (filtered, _) = fft_block(&patch, &spectra);
            let (matched, _) = ifft_block(&filtered);
            let (est, _) = compute_distance(&patch, matched.class, &DEFAULT_SCALES);
            split_targets.push((matched.class, est.distance_m));
        }
        assert_eq!(split_targets.len(), mono.targets.len(), "seed {seed}");
        for (split, mono_t) in split_targets.iter().zip(&mono.targets) {
            assert_eq!(split.0, mono_t.class, "seed {seed}");
            assert!((split.1 - mono_t.distance_m).abs() < 1e-9, "seed {seed}");
        }
    }
}
