//! Shared helpers for the cross-crate integration tests.
#![forbid(unsafe_code)]

/// Assert `actual` is within `tol_percent` of `expected` (relative).
pub fn assert_close_percent(actual: f64, expected: f64, tol_percent: f64, what: &str) {
    let rel = 100.0 * (actual - expected).abs() / expected.abs();
    assert!(
        rel <= tol_percent,
        "{what}: {actual} vs expected {expected} ({rel:.1}% off, tolerance {tol_percent}%)"
    );
}
