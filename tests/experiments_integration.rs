//! End-to-end reproduction checks: run every §6 experiment to battery
//! exhaustion and verify the *shape* of the paper's results — who wins,
//! by roughly what factor, and in which order.
//!
//! Absolute numbers are expected to track the calibrated battery anchors
//! (exp 1, 2, 2C within a few percent); the known deviations (1A, 2B) are
//! asserted with wider bands and documented in EXPERIMENTS.md.

use dles_core::experiment::{run_experiment, Experiment};
use dles_core::metrics::ExperimentResult;
use dles_tests::assert_close_percent;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Run all experiments once, in parallel, and memoize for every test.
fn results() -> &'static BTreeMap<&'static str, ExperimentResult> {
    static RESULTS: OnceLock<BTreeMap<&'static str, ExperimentResult>> = OnceLock::new();
    RESULTS.get_or_init(|| {
        let mut map = BTreeMap::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = Experiment::ALL
                .iter()
                .map(|&e| s.spawn(move || (e.label(), run_experiment(&e.config()))))
                .collect();
            for h in handles {
                let (label, r) = h.join().expect("experiment panicked");
                map.insert(label, r);
            }
        });
        map
    })
}

fn rnorm(label: &str) -> f64 {
    let r = &results()[label];
    let baseline = &results()["1"];
    100.0 * r.normalized_ratio(baseline)
}

#[test]
fn calibrated_anchors_match_paper_lifetimes() {
    // The experiments the battery packs were calibrated against must land
    // close to the measured lifetimes.
    assert_close_percent(results()["0A"].life_hours(), 3.4, 8.0, "T(0A)");
    assert_close_percent(results()["0B"].life_hours(), 12.9, 8.0, "T(0B)");
    assert_close_percent(results()["1"].life_hours(), 6.13, 8.0, "T(1)");
    assert_close_percent(results()["2"].life_hours(), 14.1, 8.0, "T(2)");
    assert_close_percent(results()["2C"].life_hours(), 17.82, 8.0, "T(2C)");
}

#[test]
fn uncalibrated_experiments_land_in_band() {
    // 2A was not an anchor; it must still land near the paper's 14.44 h.
    assert_close_percent(results()["2A"].life_hours(), 14.44, 10.0, "T(2A)");
    // 2B and 1A carry the documented deviations; bound them loosely so a
    // regression that blows them up further still fails.
    let t2b = results()["2B"].life_hours();
    assert!((14.0..19.0).contains(&t2b), "T(2B) = {t2b} h");
    let t1a = results()["1A"].life_hours();
    assert!((7.0..10.0).contains(&t1a), "T(1A) = {t1a} h");
}

#[test]
fn fig10_ordering_matches_paper() {
    // Paper: 100 (1) < 115 (2) < 118 (2A) < 128 (2B) < 145 (2C),
    // with 1A at 124. Our reproduction preserves the ordering of the
    // distributed series and rotation's overall win.
    let r2 = rnorm("2");
    let r2a = rnorm("2A");
    let r2b = rnorm("2B");
    let r2c = rnorm("2C");
    assert!(r2 > 105.0, "partitioning must beat the baseline: {r2}");
    assert!(r2a > r2, "DVS during I/O must add on top of partitioning");
    assert!(r2b > r2a, "recovery must beat plain distributed DVS");
    assert!(r2c > r2b, "rotation must be the best technique");
    assert!(rnorm("1A") > 100.0, "DVS during I/O must beat the baseline");
}

#[test]
fn rotation_improvement_magnitude() {
    // The headline: ~45% normalized improvement (we reproduce ~47%).
    let r2c = rnorm("2C");
    assert!(
        (135.0..160.0).contains(&r2c),
        "R_norm(2C) = {r2c}%, paper says 145%"
    );
}

#[test]
fn partitioning_improvement_is_modest() {
    // §6.4's surprise: the battery life "more than doubled" in absolute
    // terms but only ~15% normalized.
    let abs_ratio = results()["2"].life_hours() / results()["1"].life_hours();
    assert!(abs_ratio > 2.0, "absolute ratio {abs_ratio}");
    let r2 = rnorm("2");
    assert!((108.0..130.0).contains(&r2), "R_norm(2) = {r2}%");
}

#[test]
fn node2_fails_first_in_static_partitioning() {
    // §6.4: "Node2 always fails first because the workload on the two
    // nodes is not balanced very well."
    for label in ["2", "2A"] {
        let r = &results()[label];
        let (first, _) = r.first_death().expect("a node died");
        assert_eq!(first, 1, "exp {label}: Node2 must die first");
        assert!(
            r.nodes[0].death_time.is_none(),
            "exp {label}: Node1 must still be alive at the stall"
        );
    }
}

#[test]
fn rotation_balances_battery_discharge() {
    // §6.7: rotation evens out the load; both batteries drain together.
    let r = &results()["2C"];
    let d0 = r.nodes[0].delivered_mah.get();
    let d1 = r.nodes[1].delivered_mah.get();
    assert!(
        (d0 - d1).abs() / d0.max(d1) < 0.1,
        "delivered {d0} vs {d1} mAh"
    );
    // And strands far less capacity than static partitioning.
    let stranded_2 = results()["2"].total_stranded_mah().get();
    let stranded_2c = r.total_stranded_mah().get();
    assert!(
        stranded_2c < 0.6 * stranded_2,
        "2C strands {stranded_2c} vs 2's {stranded_2}"
    );
}

#[test]
fn recovery_keeps_the_survivor_working() {
    // §6.6: after Node2 fails, Node1 picks up several thousand frames.
    let r = &results()["2B"];
    let first_death = r.first_death().expect("both die").1.as_secs_f64();
    let frames_at_first = (first_death / 2.3) as u64;
    assert!(
        r.frames_completed > frames_at_first + 2_000,
        "survivor only added {} frames",
        r.frames_completed - frames_at_first.min(r.frames_completed)
    );
    assert!(r.nodes.iter().all(|n| n.death_time.is_some()));
}

#[test]
fn frames_track_lifetime_over_d() {
    // §4.5: T(N) = F(N) × D (pipeline fill ignored at thousands of frames).
    for label in ["1", "1A", "2", "2A", "2C"] {
        let r = &results()[label];
        let f_times_d = r.frames_completed as f64 * 2.3 / 3600.0;
        assert_close_percent(f_times_d, r.life_hours(), 2.0, &format!("F×D exp {label}"));
    }
}

#[test]
fn frame_latency_metrics_are_consistent() {
    // Baseline: end-to-end latency ≈ recv + proc + send = 2.294 s, well
    // inside D, and stable (p95 ≈ mean under deterministic startup).
    let base = &results()["1"];
    assert!(
        (base.mean_frame_latency_s.get() - 2.294).abs() < 0.02,
        "baseline latency {}",
        base.mean_frame_latency_s.get()
    );
    assert!(
        (base.p95_frame_latency_s - base.mean_frame_latency_s)
            .abs()
            .get()
            < 0.1,
        "latency jitter without randomness: mean {} p95 {}",
        base.mean_frame_latency_s.get(),
        base.p95_frame_latency_s.get()
    );
    // Two-node pipelines: latency ≈ within (D, 2D].
    for label in ["2", "2A", "2C"] {
        let r = &results()[label];
        assert!(
            r.mean_frame_latency_s.get() > 2.3 && r.mean_frame_latency_s.get() < 4.6,
            "exp {label} latency {}",
            r.mean_frame_latency_s.get()
        );
    }
    // Recovery's acks are offset by its faster DVS levels (73.7/118 vs
    // 59/103.2), so its latency still fits the two-stage budget.
    let r2b = results()["2B"].mean_frame_latency_s.get();
    assert!((2.3..4.6).contains(&r2b), "exp 2B latency {r2b}");
}

#[test]
fn no_deadline_misses_in_feasible_configs() {
    for label in ["1", "1A", "2", "2A", "2C"] {
        let r = &results()[label];
        assert_eq!(
            r.deadline_misses, 0,
            "exp {label} should meet every deadline"
        );
    }
}

#[test]
fn energy_split_matches_narrative() {
    // §6.2 baseline: the node spends about half its time in I/O, and
    // communication energy is comparable to computation energy.
    let base = &results()["1"];
    let comm = base.nodes[0]
        .energy
        .energy_j(dles_power::Mode::Communication)
        .get();
    let comp = base.nodes[0]
        .energy
        .energy_j(dles_power::Mode::Computation)
        .get();
    assert!(comm > 0.5 * comp, "comm {comm} J vs comp {comp} J");
    // 1A slashes communication energy by ~60%+ (§6.3's 110 → 40 mA).
    let dvs = &results()["1A"];
    let comm_dvs = dvs.nodes[0]
        .energy
        .energy_j(dles_power::Mode::Communication)
        .get();
    // Per-hour comparison (lifetimes differ).
    let per_h = comm / base.life_hours();
    let per_h_dvs = comm_dvs / dvs.life_hours();
    assert!(
        per_h_dvs < 0.45 * per_h,
        "comm J/h {per_h_dvs} vs baseline {per_h}"
    );
}
