//! Property tests for `dles-units`, seeded-loop style (the workspace is
//! offline, so no proptest/quickcheck — a splitmix64 generator drives a
//! fixed number of cases per property, fully deterministic).
//!
//! The crate's contract has two halves and each gets a property:
//!
//! 1. **Bit-transparency** — every operator forwards to exactly one `f64`
//!    operation, so typed arithmetic must be *bit-identical* (`to_bits`)
//!    to the raw expression it replaced, including NaN/∞ cases.
//! 2. **Named conversions round-trip** — `to_*` pairs invert each other
//!    up to one rounding step per direction.

use dles_units::{
    Amps, Hertz, Hours, Joules, MegaCycles, MilliAmpHours, MilliAmpSeconds, MilliAmps, MilliJoules,
    MilliWatts, Seconds, Volts, Watts,
};

/// splitmix64 — the same finalizer `dles-sim`'s RNG uses.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A value spanning the magnitudes the simulator actually produces
    /// (µA-scale leakage up to multi-MJ energies), either sign.
    fn value(&mut self) -> f64 {
        let mag = 10f64.powf(self.unit() * 12.0 - 6.0);
        if self.next_u64() & 1 == 0 {
            mag
        } else {
            -mag
        }
    }

    /// Occasionally a special value: the bit-transparency property must
    /// hold for NaN and infinities too, not just finite inputs.
    fn value_or_special(&mut self) -> f64 {
        match self.next_u64() % 16 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            _ => self.value(),
        }
    }
}

const CASES: usize = 2_000;

/// Bit-identical equality: NaN payloads and signed zeros included.
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

#[test]
fn same_type_operators_are_bit_transparent() {
    let mut rng = Rng(0xD1E5_0001);
    for case in 0..CASES {
        let (x, y, k) = (
            rng.value_or_special(),
            rng.value_or_special(),
            rng.value_or_special(),
        );
        let (a, b) = (Joules::new(x), Joules::new(y));
        assert!(bits_eq((a + b).get(), x + y), "case {case}: add {x} {y}");
        assert!(bits_eq((a - b).get(), x - y), "case {case}: sub {x} {y}");
        assert!(bits_eq((a * k).get(), x * k), "case {case}: mul {x} {k}");
        assert!(bits_eq((k * a).get(), k * x), "case {case}: rmul {k} {x}");
        assert!(bits_eq((a / k).get(), x / k), "case {case}: div {x} {k}");
        assert!(bits_eq(a / b, x / y), "case {case}: ratio {x} {y}");
        assert!(bits_eq((-a).get(), -x), "case {case}: neg {x}");
        assert!(bits_eq(a.min(b).get(), x.min(y)), "case {case}: min");
        assert!(bits_eq(a.max(b).get(), x.max(y)), "case {case}: max");
        assert!(bits_eq(a.abs().get(), x.abs()), "case {case}: abs");
        let mut acc = a;
        acc += b;
        assert!(bits_eq(acc.get(), x + y), "case {case}: add_assign");
        acc -= b;
        assert!(bits_eq(acc.get(), x + y - y), "case {case}: sub_assign");
    }
}

#[test]
fn dimensional_products_and_quotients_are_bit_transparent() {
    let mut rng = Rng(0xD1E5_0002);
    for case in 0..CASES {
        let (i, t, v, h, f) = (
            rng.value(),
            rng.value(),
            rng.value(),
            rng.value(),
            rng.value(),
        );
        let ma = MilliAmps::new(i);
        let s = Seconds::new(t);
        let volts = Volts::new(v);
        let hours = Hours::new(h);
        let hz = Hertz::from_mhz(f);

        assert!(bits_eq((ma * s).get(), i * t), "case {case}: mA·s");
        assert!(bits_eq((ma * hours).get(), i * h), "case {case}: mA·h");
        assert!(bits_eq((ma * volts).get(), i * v), "case {case}: mA·V");
        assert!(bits_eq((hz * s).get(), f * t), "case {case}: MHz·s");
        assert!(
            bits_eq((Watts::new(v) * s).get(), v * t),
            "case {case}: W·s"
        );
        // Both operand orders of a dim_mul! are the same f64 product.
        assert!(bits_eq((ma * s).get(), (s * ma).get()), "case {case}: comm");

        let cap = MilliAmpHours::new(i);
        assert!(bits_eq((cap / ma).get(), i / i), "case {case}: mAh/mA");
        assert!(bits_eq((cap / hours).get(), i / h), "case {case}: mAh/h");
        let work = MegaCycles::new(t);
        assert!(bits_eq((work / hz).get(), t / f), "case {case}: Mc/MHz");
        assert!(
            bits_eq((Joules::new(t) / s).get(), t / t),
            "case {case}: J/s"
        );
        assert!(
            bits_eq((MilliWatts::new(v) / volts).get(), v / v),
            "case {case}: mW/V"
        );
    }
}

#[test]
fn named_conversions_match_the_historical_expressions() {
    let mut rng = Rng(0xD1E5_0003);
    for case in 0..CASES {
        let x = rng.value();
        assert!(
            bits_eq(Seconds::new(x).to_hours().get(), x / 3600.0),
            "case {case}: s→h"
        );
        assert!(
            bits_eq(Hours::new(x).to_seconds().get(), x * 3600.0),
            "case {case}: h→s"
        );
        assert!(
            bits_eq(
                MilliAmpSeconds::new(x).to_milli_amp_hours().get(),
                x / 3600.0
            ),
            "case {case}: mAs→mAh"
        );
        assert!(
            bits_eq(MilliAmps::new(x).to_amps().get(), x / 1000.0),
            "case {case}: mA→A"
        );
        assert!(
            bits_eq(Watts::new(x).to_milli_watts().get(), x * 1000.0),
            "case {case}: W→mW"
        );
        assert!(
            bits_eq(Joules::new(x).to_milli_joules().get(), x * 1000.0),
            "case {case}: J→mJ"
        );
        assert!(bits_eq(Volts::new(x).squared(), x * x), "case {case}: V²");
    }
}

#[test]
fn conversion_round_trips_are_within_one_ulp_per_leg() {
    let mut rng = Rng(0xD1E5_0004);
    for case in 0..CASES {
        let x = rng.value();
        let trips = [
            Seconds::new(x).to_hours().to_seconds().get(),
            Hours::new(x).to_seconds().to_hours().get(),
            MilliAmps::new(x).to_amps().to_milli_amps().get(),
            Amps::new(x).to_milli_amps().to_amps().get(),
            MilliAmpSeconds::new(x)
                .to_milli_amp_hours()
                .to_milli_amp_seconds()
                .get(),
            Watts::new(x).to_milli_watts().to_watts().get(),
            MilliWatts::new(x).to_watts().to_milli_watts().get(),
            Joules::new(x).to_milli_joules().to_joules().get(),
            MilliJoules::new(x).to_joules().to_milli_joules().get(),
        ];
        for (leg, y) in trips.into_iter().enumerate() {
            let rel = ((y - x) / x).abs();
            assert!(
                rel <= 4.0 * f64::EPSILON,
                "case {case} leg {leg}: {x} round-tripped to {y} (rel {rel:e})"
            );
        }
    }
}

#[test]
fn charge_integration_identity_holds_across_magnitudes() {
    // The battery integrators' core identity: integrating i(t) over
    // seconds and converting once equals integrating over hours.
    let mut rng = Rng(0xD1E5_0005);
    for case in 0..CASES {
        let i = rng.value().abs();
        let t = rng.value().abs();
        let via_seconds = (MilliAmps::new(i) * Seconds::new(t)).to_milli_amp_hours();
        let via_hours = MilliAmps::new(i) * Seconds::new(t).to_hours();
        let rel = ((via_seconds.get() - via_hours.get()) / via_hours.get()).abs();
        assert!(
            rel <= 4.0 * f64::EPSILON,
            "case {case}: i={i} t={t}: {} vs {}",
            via_seconds.get(),
            via_hours.get()
        );
    }
}

#[test]
fn sum_folds_in_iteration_order() {
    let mut rng = Rng(0xD1E5_0006);
    for case in 0..200 {
        let xs: Vec<f64> = (0..50).map(|_| rng.value()).collect();
        let typed: Seconds = xs.iter().map(|&x| Seconds::new(x)).sum();
        let raw: f64 = xs.iter().sum();
        assert!(bits_eq(typed.get(), raw), "case {case}");
    }
}
