#![forbid(unsafe_code)]
//! `dles-units` — zero-cost typed physical quantities.
//!
//! The reproduction's arithmetic is unit-dense: the Fig. 7 current model
//! mixes mA, MHz and V²; the battery models integrate mA over hours into
//! mAh; the energy accounts integrate W over seconds into J. A silent
//! mA·s-vs-mAh or ms-vs-s slip produces plausible-looking but wrong
//! lifetimes, so each quantity gets a `#[repr(transparent)]` newtype over
//! `f64` and only the dimensionally valid operator impls exist:
//!
//! ```
//! use dles_units::{MilliAmps, Seconds, Volts};
//! let i = MilliAmps::new(46.5);
//! let t = Seconds::new(120.0);
//! let charge = i * t;                       // MilliAmpSeconds
//! let mah = charge.to_milli_amp_hours();    // explicit /3600 conversion
//! let p = i * Volts::new(4.0);              // MilliWatts
//! let e = p * t;                            // MilliJoules
//! assert_eq!(mah.get(), 46.5 * 120.0 / 3600.0);
//! assert_eq!(e.get(), 46.5 * 4.0 * 120.0);
//! ```
//!
//! Design constraints, in order of priority:
//!
//! 1. **Bit-transparency.** Every impl forwards to exactly one `f64`
//!    operation, so a migrated call site performs the same operations in
//!    the same order as the bare-`f64` expression it replaced and every
//!    serialized trace/report byte is unchanged. `min`/`max` forward to
//!    `f64::min`/`f64::max` (IEEE NaN semantics) for the same reason;
//!    sorting goes through [`Seconds::total_cmp`] etc., which is total.
//! 2. **No conversion without a name.** Scale changes (`/ 3600.0`,
//!    `/ 1000.0`) only happen inside `to_*` methods, never implicitly in
//!    an operator, so the lint rules (D007/D008 in `LINTS.md`) can demand
//!    a visible conversion call wherever scales meet.
//! 3. **Zero cost.** `#[repr(transparent)]`, `Copy`, `const fn`
//!    constructors; the optimizer sees plain `f64`s.

use core::cmp::Ordering;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Define one quantity newtype with its same-dimension algebra:
/// `Add`/`Sub` (+ assign forms), scalar `Mul`/`Div` by `f64` (+ assign
/// forms and the commuted `f64 * Q`), unitless ratio `Q / Q -> f64`,
/// `Neg`, `Sum`, and total-order helpers.
macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
        #[repr(transparent)]
        pub struct $name(f64);

        impl $name {
            pub const ZERO: Self = Self(0.0);

            /// Wrap a raw value already expressed in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The raw value in this unit.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Total order over the raw values (NaN-safe; use for sorts).
            #[inline]
            pub fn total_cmp(&self, other: &Self) -> Ordering {
                self.0.total_cmp(&other.0)
            }

            /// IEEE `f64::min` semantics (a NaN operand is ignored).
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// IEEE `f64::max` semantics (a NaN operand is ignored).
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// Unitless ratio of two like quantities.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            #[inline]
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

/// `$lhs * $rhs -> $out` (both operand orders; IEEE multiplication is
/// commutative, so the result is bit-identical either way).
macro_rules! dim_mul {
    ($lhs:ident * $rhs:ident = $out:ident) => {
        impl Mul<$rhs> for $lhs {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $rhs) -> $out {
                $out(self.0 * rhs.0)
            }
        }

        impl Mul<$lhs> for $rhs {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $lhs) -> $out {
                $out(self.0 * rhs.0)
            }
        }
    };
}

/// `$lhs / $rhs -> $out`.
macro_rules! dim_div {
    ($lhs:ident / $rhs:ident = $out:ident) => {
        impl Div<$rhs> for $lhs {
            type Output = $out;
            #[inline]
            fn div(self, rhs: $rhs) -> $out {
                $out(self.0 / rhs.0)
            }
        }
    };
}

quantity!(
    /// Duration in seconds.
    Seconds
);
quantity!(
    /// Duration in hours (the battery models' native integration unit).
    Hours
);
quantity!(
    /// CPU clock frequency, **carried in MHz** — the SA-1100 operating
    /// points, megacycle budgets and the Fig. 7 current model all work in
    /// MHz, so that is the stored scale.
    Hertz
);
quantity!(
    /// Processing work in megacycles (MHz · s).
    MegaCycles
);
quantity!(
    /// Electric potential in volts.
    Volts
);
quantity!(
    /// Current in milliamps.
    MilliAmps
);
quantity!(
    /// Current in amps.
    Amps
);
quantity!(
    /// Charge in milliamp-seconds — the raw `I · t` integrator output.
    /// Convert to [`MilliAmpHours`] explicitly via
    /// [`MilliAmpSeconds::to_milli_amp_hours`].
    MilliAmpSeconds
);
quantity!(
    /// Charge in milliamp-hours (battery capacity unit).
    MilliAmpHours
);
quantity!(
    /// Power in watts.
    Watts
);
quantity!(
    /// Power in milliwatts.
    MilliWatts
);
quantity!(
    /// Energy in joules.
    Joules
);
quantity!(
    /// Energy in millijoules.
    MilliJoules
);
quantity!(
    /// Battery state of charge as a fraction of nominally extractable
    /// capacity, in `[0, 1]`. Dimensionless, but typed: adaptive
    /// scheduling policies compare SoC estimates against thresholds, and
    /// a silent percent-vs-fraction slip would flip every rotation
    /// decision (D007 recognizes the `_soc` suffix).
    StateOfCharge
);

// Dimensional algebra. Every line is one physical identity; nothing else
// type-checks.
dim_mul!(MilliAmps * Seconds = MilliAmpSeconds);
dim_mul!(MilliAmps * Hours = MilliAmpHours);
dim_mul!(MilliAmps * Volts = MilliWatts);
dim_mul!(Amps * Volts = Watts);
dim_mul!(Watts * Seconds = Joules);
dim_mul!(MilliWatts * Seconds = MilliJoules);
dim_mul!(Hertz * Seconds = MegaCycles);
// SoC is a fraction of a pack's nominal capacity: scaling capacity by it
// yields the charge still in the pack (`stranded_mah` at death).
dim_mul!(StateOfCharge * MilliAmpHours = MilliAmpHours);

dim_div!(MilliAmpHours / MilliAmps = Hours);
dim_div!(MilliAmpHours / Hours = MilliAmps);
dim_div!(MilliAmpSeconds / Seconds = MilliAmps);
dim_div!(MilliAmpSeconds / MilliAmps = Seconds);
dim_div!(MegaCycles / Hertz = Seconds);
dim_div!(MegaCycles / Seconds = Hertz);
dim_div!(Joules / Seconds = Watts);
dim_div!(Joules / Watts = Seconds);
dim_div!(MilliWatts / Volts = MilliAmps);
dim_div!(Watts / Volts = Amps);

// Named scale conversions. These are the only places a scale factor
// appears; each forwards to a single f64 operation so migrated call
// sites stay bit-identical with the `/ 3600.0`-style code they replace.
impl Seconds {
    pub const PER_HOUR: f64 = 3600.0;

    #[inline]
    pub fn to_hours(self) -> Hours {
        Hours(self.0 / Self::PER_HOUR)
    }
}

impl Hours {
    #[inline]
    pub fn to_seconds(self) -> Seconds {
        Seconds(self.0 * Seconds::PER_HOUR)
    }
}

impl Hertz {
    /// `const` constructor from a MHz value (the stored scale).
    #[inline]
    pub const fn from_mhz(mhz: f64) -> Self {
        Self(mhz)
    }

    /// The frequency in MHz.
    #[inline]
    pub const fn mhz(self) -> f64 {
        self.0
    }
}

impl Volts {
    /// `V²` — the switching-activity factor of the Fig. 7 current model
    /// (`I = I_base + k · f · V²`). Unitless by convention: the model
    /// constant `k` absorbs the dimensions.
    #[inline]
    pub fn squared(self) -> f64 {
        self.0 * self.0
    }
}

impl MilliAmps {
    /// Lossless `/ 1000` rescale.
    #[inline]
    pub fn to_amps(self) -> Amps {
        Amps(self.0 / 1000.0)
    }
}

impl Amps {
    #[inline]
    pub fn to_milli_amps(self) -> MilliAmps {
        MilliAmps(self.0 * 1000.0)
    }
}

impl MilliAmpSeconds {
    /// `/ 3600` rescale — the explicit mA·s → mAh step the battery
    /// integrators must name.
    #[inline]
    pub fn to_milli_amp_hours(self) -> MilliAmpHours {
        MilliAmpHours(self.0 / Seconds::PER_HOUR)
    }
}

impl MilliAmpHours {
    #[inline]
    pub fn to_milli_amp_seconds(self) -> MilliAmpSeconds {
        MilliAmpSeconds(self.0 * Seconds::PER_HOUR)
    }
}

impl MilliWatts {
    #[inline]
    pub fn to_watts(self) -> Watts {
        Watts(self.0 / 1000.0)
    }
}

impl Watts {
    #[inline]
    pub fn to_milli_watts(self) -> MilliWatts {
        MilliWatts(self.0 * 1000.0)
    }
}

impl MilliJoules {
    #[inline]
    pub fn to_joules(self) -> Joules {
        Joules(self.0 / 1000.0)
    }
}

impl Joules {
    #[inline]
    pub fn to_milli_joules(self) -> MilliJoules {
        MilliJoules(self.0 * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_layout() {
        assert_eq!(
            core::mem::size_of::<MilliAmps>(),
            core::mem::size_of::<f64>()
        );
        assert_eq!(
            core::mem::align_of::<Joules>(),
            core::mem::align_of::<f64>()
        );
    }

    #[test]
    fn const_constructors_work_in_const_context() {
        const PEAK: Hertz = Hertz::from_mhz(206.4);
        const VCC: Volts = Volts::new(4.0);
        assert_eq!(PEAK.mhz(), 206.4);
        assert_eq!(VCC.get(), 4.0);
    }

    #[test]
    fn same_type_arithmetic() {
        let a = Joules::new(1.5);
        let b = Joules::new(2.25);
        assert_eq!((a + b).get(), 3.75);
        assert_eq!((b - a).get(), 0.75);
        assert_eq!((a * 2.0).get(), 3.0);
        assert_eq!((2.0 * a).get(), 3.0);
        assert_eq!((b / 2.0).get(), 1.125);
        assert_eq!(b / a, 1.5);
        assert_eq!((-a).get(), -1.5);
        let mut acc = Joules::ZERO;
        acc += a;
        acc -= b;
        assert_eq!(acc.get(), 1.5 - 2.25);
    }

    #[test]
    fn dimensional_products_match_raw_f64_expressions() {
        let i = MilliAmps::new(46.5);
        let t = Seconds::new(120.0);
        let v = Volts::new(4.0);
        assert_eq!((i * t).get(), 46.5 * 120.0);
        assert_eq!((t * i).get(), 120.0 * 46.5);
        assert_eq!((i * v).get(), 46.5 * 4.0);
        assert_eq!((i.to_amps() * v).get(), 46.5 / 1000.0 * 4.0);
        assert_eq!(
            (i.to_amps() * v * t).get(),
            46.5 / 1000.0 * 4.0 * 120.0,
            "W·s accumulation must match the historical op order"
        );
    }

    #[test]
    fn charge_conversions_are_the_historical_expressions() {
        let i = MilliAmps::new(130.0);
        let t = Seconds::new(777.5);
        assert_eq!(
            (i * t).to_milli_amp_hours().get(),
            130.0 * 777.5 / 3600.0,
            "mA·s → mAh must be a trailing /3600, not a reordered product"
        );
        assert_eq!((i * Hours::new(2.5)).get(), 130.0 * 2.5);
    }

    #[test]
    fn quotients_recover_their_factors() {
        let cap = MilliAmpHours::new(992.7);
        let i = MilliAmps::new(55.0);
        assert_eq!((cap / i).get(), 992.7 / 55.0);
        assert_eq!((cap / Hours::new(4.0)).get(), 992.7 / 4.0);
        let work = Hertz::from_mhz(206.4) * Seconds::new(1.1);
        assert_eq!((work / Hertz::from_mhz(59.0)).get(), 206.4 * 1.1 / 59.0);
    }

    #[test]
    fn min_max_keep_ieee_nan_semantics() {
        let nan = Seconds::new(f64::NAN);
        let one = Seconds::new(1.0);
        // f64::max ignores a NaN operand; total_cmp ranks NaN above +inf.
        assert_eq!(nan.max(one).get(), 1.0);
        assert_eq!(one.max(nan).get(), 1.0);
        assert_eq!(nan.total_cmp(&one), Ordering::Greater);
        assert!(!nan.is_finite());
        assert!(one.is_finite());
    }

    #[test]
    fn total_cmp_sorts_deterministically() {
        let mut xs = [
            Hours::new(2.0),
            Hours::new(f64::NAN),
            Hours::new(-1.0),
            Hours::new(0.5),
        ];
        xs.sort_by(Hours::total_cmp);
        let raw: Vec<f64> = xs.iter().map(|h| h.get()).collect();
        assert_eq!(raw[0], -1.0);
        assert_eq!(raw[1], 0.5);
        assert_eq!(raw[2], 2.0);
        assert!(raw[3].is_nan());
    }

    #[test]
    fn soc_scales_capacity_like_the_raw_expression() {
        let soc = StateOfCharge::new(0.37);
        let cap = MilliAmpHours::new(992.7);
        assert_eq!((soc * cap).get(), 0.37 * 992.7);
        assert_eq!((cap * soc).get(), 992.7 * 0.37);
        let skew = StateOfCharge::new(0.41) - StateOfCharge::new(0.37);
        assert_eq!(skew.get(), 0.41 - 0.37);
        assert!(StateOfCharge::new(0.5) > StateOfCharge::new(0.25));
    }

    #[test]
    fn sum_matches_sequential_accumulation() {
        let xs = [0.1, 0.2, 0.3, 0.4];
        let typed: Joules = xs.iter().map(|&x| Joules::new(x)).sum();
        let raw: f64 = xs.iter().sum();
        assert_eq!(typed.get(), raw, "Sum must fold in iteration order");
    }
}
