//! A vendored, dependency-free stand-in for the `criterion` benchmark
//! harness, API-compatible with the subset the `dles-bench` benches use.
//!
//! The build environment has no access to crates.io, so the real criterion
//! cannot be fetched; this crate keeps `cargo bench` working by providing
//! the same macros and types over a simple warmup + timed-sample loop
//! (wall-clock median and mean, printed per benchmark). Results are
//! indicative, not statistically rigorous — swap the real criterion back
//! in when a registry is available.
#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly: a few warmup calls, then `sample_size` timed
    /// samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3.min(self.sample_size) {
            black_box(f());
        }
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Summary of one benchmark's timed samples, kept by the harness so
/// callers (e.g. baseline writers) can retrieve what was measured.
#[derive(Debug, Clone)]
pub struct BenchStats {
    pub label: String,
    pub median: Duration,
    pub mean: Duration,
    pub samples: usize,
}

fn report(label: &str, samples: &mut [Duration]) -> Option<BenchStats> {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return None;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{label:<40} median {:>12?}  mean {:>12?}  ({} samples)",
        median,
        mean,
        samples.len()
    );
    Some(BenchStats {
        label: label.to_owned(),
        median,
        mean,
        samples: samples.len(),
    })
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's `sample_size`: how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.criterion
            .record(report(&format!("{}/{}", self.name, id), &mut b.samples));
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.criterion
            .record(report(&format!("{}/{}", self.name, id), &mut b.samples));
    }

    pub fn finish(self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchStats>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.record(report(name, &mut b.samples));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            criterion: self,
        }
    }

    fn record(&mut self, stats: Option<BenchStats>) {
        if let Some(stats) = stats {
            self.results.push(stats);
        }
    }

    /// Stats of every benchmark run so far, in execution order.
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }
}

/// Bundle benchmark functions under one group name (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the listed groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
        let labels: Vec<&str> = c.results().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["noop", "g/inner", "g/param/3"]);
        assert!(c.results().iter().all(|s| s.samples > 0));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fft", 64).to_string(), "fft/64");
        assert_eq!(BenchmarkId::from_parameter("2C").to_string(), "2C");
    }
}
