//! The discrete-event model of the distributed system (§3, Figs. 2–3, 9).
//!
//! A host computer (mains-powered, never dies) emits one frame every `D`
//! seconds to the node at the head of the pipeline and collects one result
//! every `D` from the tail. Each node runs its serialized
//! RECV → PROC → SEND triple, drawing battery current according to its
//! power state; serial lines are reserved through the hub's
//! [`LinkSchedule`]; node deaths are scheduled *proactively* from the
//! battery's time-to-exhaustion under the present draw, so exhaustion is
//! located exactly.
//!
//! The same world implements all four techniques: DVS during I/O is a
//! [`DvsPolicy`]; partitioning is the share/level assignment; power-failure
//! recovery adds acknowledgment transactions, timeouts and share
//! migration; node rotation periodically shifts every node's role by one
//! with the §5.5 doubling trick that preserves throughput.

use crate::faults::{FaultPlan, FaultState, LinkFault};
use crate::metrics::ExperimentResult;
use crate::node::{BatterySpec, SimNode};
use crate::policy::{DvsPolicy, SchedulingPolicy};
use crate::recovery::RecoveryConfig;
use crate::rotation::RotationConfig;
use crate::workload::{NodeShare, SystemConfig};
use dles_net::{Endpoint, LinkSchedule, Transaction};
use dles_power::{CurrentModel, FreqLevel, Mode};
use dles_sim::{Ctx, Engine, Recorder, RunOutcome, SimRng, SimTime, TraceRecord, World};

/// Tolerance added to the per-frame deadline before counting a miss
/// (absorbs sub-millisecond rounding in transfer times).
const DEADLINE_TOLERANCE: SimTime = SimTime(50_000); // 50 ms

/// Complete configuration of one pipeline experiment.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Experiment label for reports.
    pub label: String,
    /// System constants (D, profile, serial, DVS table).
    pub sys: SystemConfig,
    /// Share of the algorithm per pipeline stage (stage = role index).
    pub shares: Vec<NodeShare>,
    /// Computation DVS level per stage.
    pub levels: Vec<FreqLevel>,
    /// The DVS policy applied on every node.
    pub policy: DvsPolicy,
    /// The battery-state-aware scheduling policy layered on top.
    /// [`SchedulingPolicy::Static`] reproduces the paper's fixed behaviour
    /// byte-for-byte; the adaptive variants observe per-node SoC estimates
    /// and decide online when the next §5.5 rotation wave launches.
    pub scheduling: SchedulingPolicy,
    /// Battery model per node (every node gets a fresh one).
    pub battery: BatterySpec,
    /// The CPU current model.
    pub current_model: CurrentModel,
    /// Node rotation (§5.5), if enabled.
    pub rotation: Option<RotationConfig>,
    /// Power-failure recovery (§5.4), if enabled.
    pub recovery: Option<RecoveryConfig>,
    /// `false` for the no-I/O experiments 0A/0B: nodes loop PROC locally.
    pub io_enabled: bool,
    /// Seed for startup-latency jitter; `None` = deterministic nominal.
    pub jitter_seed: Option<u64>,
    /// Seeded fault injection (link faults, brownouts, battery variance);
    /// `None` = the ideal environment.
    pub faults: Option<FaultPlan>,
    /// Explicit per-node battery capacity scale factors (length = node
    /// count), multiplied with any fault-profile variance. `None` = 1.0.
    pub battery_scales: Option<Vec<f64>>,
    /// Safety horizon; the batteries always die long before this.
    pub horizon: SimTime,
}

impl PipelineConfig {
    pub fn n_nodes(&self) -> usize {
        self.shares.len()
    }

    fn validate(&self) {
        assert!(!self.shares.is_empty(), "pipeline needs at least one stage");
        assert_eq!(
            self.shares.len(),
            self.levels.len(),
            "one DVS level per stage required"
        );
        if self.rotation.is_some() {
            assert!(
                self.shares.len() >= 2,
                "rotation requires at least two nodes"
            );
            assert!(
                self.recovery.is_none(),
                "rotation and recovery are alternative techniques (§5.5)"
            );
        }
        if !self.scheduling.is_static() {
            assert!(
                self.rotation.is_some(),
                "adaptive scheduling policies decide *when* to rotate and \
                 need a RotationConfig for the wave mechanics"
            );
        }
        if let Some(scales) = &self.battery_scales {
            assert_eq!(
                scales.len(),
                self.shares.len(),
                "one battery scale per node required"
            );
            assert!(
                scales.iter().all(|&s| s > 0.0),
                "battery scales must be positive"
            );
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransferKind {
    Data,
    Ack,
}

/// Trace-component tag for a node (1-based, matching the paper's figures).
fn component_of(node: usize) -> String {
    format!("node{}", node + 1)
}

/// Trace label for either endpoint kind.
fn endpoint_name(ep: Endpoint) -> String {
    match ep {
        Endpoint::Host => "host".to_string(),
        Endpoint::Node(i) => component_of(i),
    }
}

/// The single constructor for `fault_injected` trace records. Link faults
/// and brownouts describe themselves with disjoint field sets, so each
/// caller chains its own `.with` fields onto this shared base — one emit
/// site, every fault field optional in the extracted schema.
fn fault_record(time: SimTime, component: impl Into<String>) -> TraceRecord {
    TraceRecord::new(time, component, "fault_injected")
}

/// Whether an injected fault destroys the transfer's payload in flight.
/// Delays only stretch the wire time; drops and corruptions (detected by
/// the PPP FCS at the receiver) suppress delivery.
fn transfer_lost(t: &Transfer) -> bool {
    matches!(
        t.fault,
        Some(LinkFault::Dropped) | Some(LinkFault::Corrupted { .. })
    )
}

/// Size of the per-receiver duplicate-detection window (frames).
const DEDUP_WINDOW: usize = 32;

/// Record a delivered frame in a bounded sliding window.
fn remember(window: &mut Vec<u64>, frame: u64) {
    if window.len() == DEDUP_WINDOW {
        window.remove(0);
    }
    window.push(frame);
}

#[derive(Debug, Clone)]
struct Transfer {
    from: Endpoint,
    to: Endpoint,
    bytes: u64,
    kind: TransferKind,
    frame: u64,
    /// For data to a node: the share it should run on arrival.
    next_share: Option<usize>,
    /// Share-map epoch at planning time; stale transfers are dropped.
    epoch: u64,
    /// For acks: start this PROC on the acking node once the ack is out.
    then_proc: Option<(usize, u64, usize)>,
    /// For reliable data sends (recovery): the sender's outstanding-send
    /// sequence number this transfer carries.
    seq: Option<u64>,
    /// For acks: the data sequence number being acknowledged.
    ack_of: Option<u64>,
    /// Injected link fault, decided at planning time from the fault plan.
    fault: Option<LinkFault>,
}

/// Events of the pipeline world.
#[derive(Debug)]
pub enum Ev {
    HostEmit,
    XferStart(usize),
    XferEnd(usize),
    ProcEnd {
        node: usize,
        frame: u64,
        share: usize,
    },
    /// Start the second PROC of a rotation-doubled frame.
    DoubleProc {
        node: usize,
        frame: u64,
        share: usize,
    },
    /// The no-I/O local computation loop (experiments 0A/0B).
    LocalLoop {
        node: usize,
    },
    NodeDeath(usize),
    AckTimeout {
        node: usize,
        seq: u64,
    },
    RecvTimeout {
        node: usize,
        seq: u64,
    },
    /// Fault injection: the node goes offline for a bounded interval.
    BrownoutStart(usize),
    /// Fault injection: the node comes back online.
    BrownoutEnd(usize),
}

/// A reliable data send awaiting its ack (recovery §5.4).
#[derive(Debug, Clone)]
struct OutstandingSend {
    seq: u64,
    to: Endpoint,
    bytes: u64,
    frame: u64,
    next_share: Option<usize>,
    epoch: u64,
    retries: u32,
}

/// The simulated distributed system.
pub struct PipelineWorld {
    cfg: PipelineConfig,
    nodes: Vec<SimNode>,
    /// stage/share index → node index.
    node_of_share: Vec<usize>,
    /// node index → its current stage (None once its share migrated away).
    share_of_node: Vec<Option<usize>>,
    links: LinkSchedule,
    rng: Option<SimRng>,
    transfers: Vec<Transfer>,
    next_frame: u64,
    frames_completed: u64,
    deadline_misses: u64,
    /// Rotation wave (§5.5): for each node, the share it held when the
    /// rotation triggered; at its next `ProcEnd` of that share it
    /// continues with the next share locally instead of sending.
    double_from_share: Vec<Option<usize>>,
    /// Doublings of the current rotation wave not yet resolved (one per
    /// tag set). A new wave may not launch while this is nonzero:
    /// overwriting an unconsumed tag loses the wave and can double the
    /// wrong share.
    wave_outstanding: u64,
    /// Frame index of the last rotation launched (adaptive policies gate
    /// their next decision on the gap since this).
    last_rotation_frame: u64,
    /// Current period of [`SchedulingPolicy::AdaptivePeriod`], adapted at
    /// each wave from the observed SoC skew.
    adaptive_period: u64,
    /// Per-node pending-death event, rescheduled on every transition.
    death_events: Vec<Option<dles_sim::EventId>>,
    /// Monotone counters invalidating stale recv timeouts.
    recv_seq: Vec<u64>,
    /// Per-node monotone sequence for reliable data sends.
    send_seq: Vec<u64>,
    /// Per-node sends awaiting their ack, keyed by `seq`; failure
    /// attribution reads the target from the timed-out entry itself.
    outstanding: Vec<Vec<OutstandingSend>>,
    /// Per-node sliding window of recently delivered frames, to drop
    /// duplicate deliveries caused by retransmission after a lost ack.
    recent_frames: Vec<Vec<u64>>,
    /// Same dedup window for deliveries at the host sink.
    recent_host_frames: Vec<u64>,
    /// (first frame emitted at this depth, pipeline depth) checkpoints;
    /// deadline accounting looks up the depth a frame was emitted under.
    depth_history: Vec<(u64, usize)>,
    /// Seeded fault-injection state (None = ideal environment).
    faults: Option<FaultState>,
    /// Per-node policy override (a recovery survivor saddled with a
    /// deadline-infeasible merged share runs flat out, see `migrate`).
    policy_override: Vec<Option<DvsPolicy>>,
    /// Share-map epoch; bumped by migration.
    epoch: u64,
    /// Count of migrations performed (recovery).
    migrations: u64,
    /// Count of rotations performed.
    rotations: u64,
    /// End-to-end frame latency distribution (emission → delivery), s.
    latency: dles_sim::Histogram,
    stopped_at: Option<SimTime>,
    /// Monotonic event counters, reported with the experiment result.
    counters: dles_sim::CounterSet,
}

impl PipelineWorld {
    fn new(cfg: PipelineConfig) -> Self {
        cfg.validate();
        let n = cfg.n_nodes();
        let variance_scales = cfg
            .faults
            .as_ref()
            .map(|plan| FaultState::battery_scales(plan, n));
        let nodes: Vec<SimNode> = (0..n)
            .map(|i| {
                let idle_level = cfg.scheduling.dvs_policy(cfg.policy).level_for(
                    Mode::Idle,
                    cfg.levels[i],
                    &cfg.sys.dvs,
                );
                let mut scale = cfg.battery_scales.as_ref().map_or(1.0, |s| s[i]);
                if let Some(vs) = &variance_scales {
                    scale *= vs[i];
                }
                let spec = if scale == 1.0 {
                    cfg.battery
                } else {
                    cfg.battery.scaled(scale)
                };
                SimNode::new(&spec, cfg.current_model.clone(), idle_level)
            })
            .collect();
        let rng = cfg.jitter_seed.map(SimRng::seed_from_u64);
        let faults = cfg.faults.as_ref().map(|plan| FaultState::new(plan, n));
        PipelineWorld {
            nodes,
            node_of_share: (0..n).collect(),
            share_of_node: (0..n).map(Some).collect(),
            links: LinkSchedule::new(n),
            rng,
            transfers: Vec::new(),
            next_frame: 0,
            frames_completed: 0,
            deadline_misses: 0,
            double_from_share: vec![None; n],
            wave_outstanding: 0,
            last_rotation_frame: 0,
            adaptive_period: cfg.rotation.map(|r| r.period_frames).unwrap_or(0),
            death_events: vec![None; n],
            recv_seq: vec![0; n],
            send_seq: vec![0; n],
            outstanding: vec![Vec::new(); n],
            recent_frames: vec![Vec::new(); n],
            recent_host_frames: Vec::new(),
            depth_history: vec![(0, n)],
            faults,
            policy_override: vec![None; n],
            epoch: 0,
            migrations: 0,
            rotations: 0,
            latency: dles_sim::Histogram::new(0.0, 60.0, 600),
            stopped_at: None,
            counters: dles_sim::CounterSet::new(),
            cfg,
        }
    }

    /// The node currently holding `share`. Transfers already in flight
    /// keep the target they were planned with; the §5.5 rotation wave
    /// (per-node doubling) guarantees post-rotation lookups through the
    /// *new* map are the correct recipients for every frame.
    fn target_for(&self, share: usize) -> usize {
        self.node_of_share[share]
    }

    /// The base (computation) level of a node's current role; nodes whose
    /// share migrated away idle at the lowest level.
    fn base_level(&self, node: usize) -> FreqLevel {
        match self.share_of_node[node] {
            Some(s) => self.cfg.levels[s],
            None => self.cfg.sys.dvs.lowest(),
        }
    }

    /// The DVS policy in force on a node: the scheduling policy's rule
    /// over the configured one, unless overridden by migration.
    fn policy_for(&self, node: usize) -> DvsPolicy {
        self.policy_override[node]
            .unwrap_or_else(|| self.cfg.scheduling.dvs_policy(self.cfg.policy))
    }

    /// Max–min spread of the alive nodes' SoC estimates — the imbalance
    /// signal the adaptive policies act on. Zero with fewer than two
    /// nodes alive.
    fn soc_skew(&self) -> dles_units::StateOfCharge {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for n in self.nodes.iter().filter(|n| n.alive) {
            let soc = n.soc_estimate().get();
            lo = lo.min(soc);
            hi = hi.max(soc);
        }
        dles_units::StateOfCharge::new(if hi > lo { hi - lo } else { 0.0 })
    }

    /// Whether the scheduling policy wants a rotation wave at `frame`.
    /// Pure function of event history (frame counters and settled battery
    /// state), so the decision is deterministic at any thread count.
    fn rotation_due(&self, frame: u64) -> bool {
        if self.cfg.rotation.is_none() {
            return false;
        }
        match self.cfg.scheduling {
            SchedulingPolicy::Static => self.cfg.rotation.is_some_and(|rot| rot.triggers_on(frame)),
            SchedulingPolicy::RotateOnSocSkew {
                threshold_soc,
                min_gap_frames,
            } => {
                frame > 0
                    && frame - self.last_rotation_frame >= min_gap_frames.max(1)
                    && self.soc_skew() >= threshold_soc
            }
            SchedulingPolicy::AdaptivePeriod { .. } => {
                self.adaptive_period > 0
                    && frame > 0
                    && frame - self.last_rotation_frame >= self.adaptive_period
            }
        }
    }

    /// One doubling of the current rotation wave resolved (executed, lost
    /// to a brownout, or passed by). Saturating: tests may inject bare
    /// `DoubleProc` events with no wave open.
    fn wave_resolve_one(&mut self) {
        self.wave_outstanding = self.wave_outstanding.saturating_sub(1);
    }

    /// Whether a node is browned out (transiently offline) right now.
    fn is_offline(&self, now: SimTime, node: usize) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.is_offline(node, now))
    }

    /// The pipeline depth in force when `frame` was emitted, for deadline
    /// accounting: a frame emitted into an n-stage pipeline is due n frame
    /// periods later even if a migration shrinks the pipeline mid-flight.
    fn depth_at_emission(&self, frame: u64) -> u64 {
        self.depth_history
            .iter()
            .rev()
            .find(|(first, _)| *first <= frame)
            .map(|(_, d)| *d as u64)
            .unwrap_or(self.cfg.shares.len() as u64)
    }

    /// Transition a node and reschedule its death event.
    fn set_node_state(&mut self, ctx: &mut Ctx<Ev>, node: usize, mode: Mode) {
        if !self.nodes[node].alive {
            return;
        }
        let base = self.base_level(node);
        let policy = self.policy_for(node);
        let level = policy.level_for(mode, base, &self.cfg.sys.dvs);
        self.counters.incr("state_transitions");
        let component = component_of(node);
        if ctx.tracing() {
            ctx.emit(
                TraceRecord::new(ctx.now(), component.as_str(), "state_transition")
                    .with("mode", mode.name())
                    .with("freq_mhz", level.freq_mhz.mhz()),
            );
        }
        let ttd = self.nodes[node].transition_recorded(
            ctx.now(),
            mode,
            level,
            ctx.recorder(),
            &component,
        );
        if let Some(ev) = self.death_events[node].take() {
            ctx.cancel(ev);
        }
        if let Some(ttd) = ttd {
            self.death_events[node] = Some(ctx.schedule_in(ttd, Ev::NodeDeath(node)));
        }
    }

    /// Plan a transfer: find the earliest slot where its serial lines and
    /// both endpoints are free, reserve, and schedule its start/end.
    fn plan_transfer(&mut self, ctx: &mut Ctx<Ev>, mut t: Transfer) {
        let route = dles_net::Route::between(t.from, t.to);
        let mut earliest = ctx.now();
        for ep in [t.from, t.to] {
            if let Endpoint::Node(i) = ep {
                earliest = earliest.max(self.nodes[i].busy_until);
            }
        }
        let start = self.links.earliest_start(&route, earliest);
        let mut duration = self
            .cfg
            .sys
            .serial
            .transfer_time(t.bytes, self.rng.as_mut());
        if let Some(fs) = self.faults.as_mut() {
            if fs.profile.has_link_faults() {
                t.fault = fs.draw_transfer_fault(t.bytes, t.frame);
                match t.fault {
                    Some(LinkFault::Dropped) => self.counters.incr("fault_drops"),
                    Some(LinkFault::Corrupted { .. }) => self.counters.incr("fault_bit_errors"),
                    Some(LinkFault::Delayed(extra)) => {
                        self.counters.incr("fault_delays");
                        duration += extra;
                    }
                    None => {}
                }
                if let Some(fault) = t.fault {
                    if ctx.tracing() {
                        let mut rec = fault_record(ctx.now(), "link")
                            .with("from", endpoint_name(t.from))
                            .with("to", endpoint_name(t.to))
                            .with("frame", t.frame)
                            .with("bytes", t.bytes);
                        rec = match fault {
                            LinkFault::Dropped => rec.with("fault", "drop"),
                            LinkFault::Corrupted { flipped_bits } => rec
                                .with("fault", "bit_error")
                                .with("flipped_bits", flipped_bits as u64),
                            LinkFault::Delayed(extra) => rec
                                .with("fault", "delay")
                                .with("delay_us", extra.as_micros()),
                        };
                        ctx.emit(rec);
                    }
                }
            }
        }
        let end = self.links.reserve(&route, start, duration);
        for ep in [t.from, t.to] {
            if let Endpoint::Node(i) = ep {
                self.nodes[i].busy_until = self.nodes[i].busy_until.max(end);
            }
        }
        t.epoch = self.epoch;
        self.counters.incr(match t.kind {
            TransferKind::Data => "transfers_data",
            TransferKind::Ack => "transfers_ack",
        });
        let id = self.transfers.len();
        self.transfers.push(t);
        ctx.schedule_at(start, Ev::XferStart(id));
        ctx.schedule_at(end, Ev::XferEnd(id));
    }

    /// The dles-net transaction equivalent of a planned transfer (for
    /// structured trace emission).
    fn transaction_of(t: &Transfer) -> Transaction {
        match t.kind {
            TransferKind::Data => Transaction::payload(t.from, t.to, t.bytes),
            TransferKind::Ack => Transaction::ack(t.from, t.to),
        }
    }

    /// Begin PROC of `share` for `frame` on `node`.
    fn start_proc(&mut self, ctx: &mut Ctx<Ev>, node: usize, frame: u64, share: usize) {
        if !self.nodes[node].alive {
            return;
        }
        let level = self.cfg.levels[share];
        let dur = self.cfg.shares[share].proc_time(&self.cfg.sys.dvs, level);
        self.counters.incr("state_transitions");
        let component = component_of(node);
        if ctx.tracing() {
            ctx.emit(
                TraceRecord::new(ctx.now(), component.as_str(), "state_transition")
                    .with("mode", Mode::Computation.name())
                    .with("freq_mhz", level.freq_mhz.mhz())
                    .with("share", share)
                    .with("frame", frame),
            );
        }
        // PROC always runs at the share's level regardless of policy.
        let ttd = self.nodes[node].transition_recorded(
            ctx.now(),
            Mode::Computation,
            level,
            ctx.recorder(),
            &component,
        );
        if let Some(ev) = self.death_events[node].take() {
            ctx.cancel(ev);
        }
        if let Some(ttd) = ttd {
            self.death_events[node] = Some(ctx.schedule_in(ttd, Ev::NodeDeath(node)));
        }
        self.nodes[node].busy_until = ctx.now() + dur;
        ctx.schedule_in(dur, Ev::ProcEnd { node, frame, share });
    }

    /// Send `frame`'s data onward after completing `share` on `node`.
    /// With recovery enabled the send is reliable: it gets a sequence
    /// number and an outstanding-send entry that the ack clears and the
    /// ack timeout retries (or migrates) against.
    fn send_onward(&mut self, ctx: &mut Ctx<Ev>, node: usize, frame: u64, share: usize) {
        let bytes = self.cfg.shares[share].send_bytes;
        let (to, next_share) = if share + 1 == self.cfg.shares.len() {
            (Endpoint::Host, None)
        } else {
            (Endpoint::Node(self.target_for(share + 1)), Some(share + 1))
        };
        let seq = if self.cfg.recovery.is_some() {
            let s = self.send_seq[node];
            self.send_seq[node] += 1;
            self.outstanding[node].push(OutstandingSend {
                seq: s,
                to,
                bytes,
                frame,
                next_share,
                epoch: self.epoch,
                retries: 0,
            });
            Some(s)
        } else {
            None
        };
        self.plan_transfer(
            ctx,
            Transfer {
                from: Endpoint::Node(node),
                to,
                bytes,
                kind: TransferKind::Data,
                frame,
                next_share,
                epoch: 0,
                then_proc: None,
                seq,
                ack_of: None,
                fault: None,
            },
        );
    }

    /// The host acknowledges a delivered result back to its sender.
    fn host_ack(&mut self, ctx: &mut Ctx<Ev>, sender: Endpoint, frame: u64, ack_of: Option<u64>) {
        let Endpoint::Node(sender) = sender else {
            return;
        };
        if !self.nodes[sender].alive {
            return;
        }
        self.plan_transfer(
            ctx,
            Transfer {
                from: Endpoint::Host,
                to: Endpoint::Node(sender),
                bytes: 0,
                kind: TransferKind::Ack,
                frame,
                next_share: None,
                epoch: 0,
                then_proc: None,
                seq: None,
                ack_of,
                fault: None,
            },
        );
    }

    /// Rotate roles by one: the tail node moves to the head (§5.5).
    fn rotate_roles(&mut self) {
        let old = self.node_of_share.clone();
        let n = old.len();
        let mut new = vec![0; n];
        for s in 0..n {
            // The node that held share s now holds share s+1; the tail
            // holder becomes the head.
            new[(s + 1) % n] = old[s];
        }
        self.node_of_share = new;
        for (s, &node) in self.node_of_share.iter().enumerate() {
            self.share_of_node[node] = Some(s);
        }
        self.rotations += 1;
        self.counters.incr("rotations");
    }

    /// Adaptive-policy bookkeeping for a wave just launched at `frame`:
    /// update the `AdaptivePeriod` feedback loop from the observed skew
    /// and emit the `policy_decision` record. No-op under `Static`, so
    /// the paper-exact traces stay byte-identical.
    fn on_policy_rotation(&mut self, ctx: &mut Ctx<Ev>, frame: u64) {
        if self.cfg.scheduling.is_static() {
            return;
        }
        let skew = self.soc_skew();
        let mut action = "rotate";
        if let SchedulingPolicy::AdaptivePeriod {
            target_skew_soc,
            min_period_frames,
            max_period_frames,
        } = self.cfg.scheduling
        {
            if skew > target_skew_soc {
                self.adaptive_period = (self.adaptive_period / 2).max(min_period_frames.max(1));
                action = "rotate_shrink";
            } else if skew.get() < target_skew_soc.get() / 2.0 {
                self.adaptive_period = (self.adaptive_period * 2).min(max_period_frames);
                action = "rotate_stretch";
            }
        }
        self.counters.incr("policy_decisions");
        if ctx.tracing() {
            let mut rec = TraceRecord::new(ctx.now(), "pipeline", "policy_decision")
                .with("policy", self.cfg.scheduling.name())
                .with("frame", frame)
                .with("skew_soc", skew.get())
                .with("action", action);
            if matches!(self.cfg.scheduling, SchedulingPolicy::AdaptivePeriod { .. }) {
                rec = rec.with("next_period_frames", self.adaptive_period);
            }
            ctx.emit(rec);
        }
    }

    /// A survivor absorbs an adjacent dead stage's share (§5.4).
    fn migrate(&mut self, ctx: &mut Ctx<Ev>, survivor: usize, dead: usize) {
        let Some(s_surv) = self.share_of_node[survivor] else {
            return;
        };
        let Some(s_dead) = self.share_of_node[dead] else {
            return; // already migrated away
        };
        assert!(!self.nodes[dead].alive, "migrating from a living node");
        // Merge the two adjacent ranges.
        let (lo, hi) = (s_surv.min(s_dead), s_surv.max(s_dead));
        assert_eq!(hi - lo, 1, "only adjacent shares can merge");
        let merged_range = self.cfg.shares[lo]
            .range
            .merge_with_next(self.cfg.shares[hi].range);
        let merged = NodeShare::from_profile(&self.cfg.sys.profile, merged_range);
        // Choose the slowest feasible level for the merged share, assuming
        // the same ack overhead persists; fall back to the peak clock.
        let ack_overhead = SimTime::from_millis(150);
        let feasible = merged.min_feasible_level(&self.cfg.sys, ack_overhead);
        let level = feasible.unwrap_or_else(|| self.cfg.sys.dvs.highest());
        if feasible.is_none() {
            // The merged share cannot meet D even at the peak clock: the
            // survivor runs flat out (no DVS during I/O) to minimize how
            // late every frame is.
            self.policy_override[survivor] = Some(DvsPolicy::FixedLevel);
        }
        // Rebuild share-indexed tables without the dead stage.
        let mut shares = Vec::with_capacity(self.cfg.shares.len() - 1);
        let mut levels = Vec::with_capacity(self.cfg.levels.len() - 1);
        let mut node_of_share = Vec::with_capacity(self.node_of_share.len() - 1);
        for s in 0..self.cfg.shares.len() {
            if s == s_dead {
                continue;
            }
            if s == s_surv {
                shares.push(merged);
                levels.push(level);
            } else {
                shares.push(self.cfg.shares[s]);
                levels.push(self.cfg.levels[s]);
            }
            node_of_share.push(self.node_of_share[s]);
        }
        self.cfg.shares = shares;
        self.cfg.levels = levels;
        self.node_of_share = node_of_share;
        for entry in self.share_of_node.iter_mut() {
            *entry = None;
        }
        for (s, &node) in self.node_of_share.iter().enumerate() {
            self.share_of_node[node] = Some(s);
        }
        // In-flight data against the old share map is lost.
        self.epoch += 1;
        self.migrations += 1;
        self.counters.incr("migrations");
        if ctx.tracing() {
            ctx.emit(
                TraceRecord::new(ctx.now(), component_of(survivor), "migration")
                    .with("dead", component_of(dead))
                    .with("merged_freq_mhz", level.freq_mhz.mhz())
                    .with("feasible", feasible.is_some()),
            );
        }
        // The survivor's pending sends targeted the old share map; any
        // still-armed ack timeout finds its entry gone (or stale-epoch)
        // and stands down.
        self.outstanding[survivor].clear();
        // Deadline accounting: frames emitted from here on traverse the
        // shrunken pipeline.
        self.depth_history
            .push((self.next_frame, self.cfg.shares.len()));
        let delay = self
            .cfg
            .recovery
            .map(|r| r.migration_delay)
            .unwrap_or(SimTime::ZERO);
        let t = self.nodes[survivor].busy_until.max(ctx.now()) + delay;
        self.nodes[survivor].busy_until = t;
        self.set_node_state(ctx, survivor, Mode::Idle);
    }

    fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Collect the experiment result; `now` is the end of observation.
    fn result(&mut self, now: SimTime) -> ExperimentResult {
        for node in &mut self.nodes {
            node.finish(now);
        }
        let lifetime = self.stopped_at.unwrap_or(now);
        ExperimentResult {
            label: self.cfg.label.clone(),
            n_nodes: self.nodes.len(),
            lifetime,
            frames_completed: self.frames_completed,
            deadline_misses: self.deadline_misses,
            mean_frame_latency_s: dles_units::Seconds::new(self.latency.mean()),
            p95_frame_latency_s: dles_units::Seconds::new(self.latency.quantile(0.95)),
            nodes: self.nodes.iter().map(SimNode::outcome).collect(),
            counters: self.counters.clone(),
        }
    }

    /// Number of migrations performed (recovery experiments).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Number of rotations performed.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// The monotonic event counters accumulated so far.
    pub fn counters(&self) -> &dles_sim::CounterSet {
        &self.counters
    }
}

impl World for PipelineWorld {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Ctx<Ev>, ev: Ev) {
        match ev {
            Ev::HostEmit => self.on_host_emit(ctx),
            Ev::XferStart(id) => self.on_xfer_start(ctx, id),
            Ev::XferEnd(id) => self.on_xfer_end(ctx, id),
            Ev::ProcEnd { node, frame, share } => self.on_proc_end(ctx, node, frame, share),
            Ev::DoubleProc { node, frame, share } => {
                // The reconfig window ends here either way: the wave's
                // doubling is resolved even when the node can't run it,
                // else the next rotation would be deferred forever.
                self.wave_resolve_one();
                if !self.nodes[node].alive {
                    // Death stops a rotation pipeline; nothing to do.
                } else if self.is_offline(ctx.now(), node) {
                    // Brownout hit during reconfig: the doubled frame's
                    // work is lost, but the node already holds its *new*
                    // role in the share map and rejoins there when the
                    // brownout lifts.
                    self.counters.incr("frames_lost_brownout");
                } else {
                    self.start_proc(ctx, node, frame, share);
                }
            }
            Ev::LocalLoop { node } => self.on_local_loop(ctx, node),
            Ev::NodeDeath(node) => self.on_node_death(ctx, node),
            Ev::AckTimeout { node, seq } => self.on_ack_timeout(ctx, node, seq),
            Ev::RecvTimeout { node, seq } => self.on_recv_timeout(ctx, node, seq),
            Ev::BrownoutStart(node) => self.on_brownout_start(ctx, node),
            Ev::BrownoutEnd(node) => self.on_brownout_end(ctx, node),
        }
    }
}

impl PipelineWorld {
    fn on_host_emit(&mut self, ctx: &mut Ctx<Ev>) {
        let frame = self.next_frame;
        self.next_frame += 1;
        self.counters.incr("frames_emitted");
        // Keep emitting one frame per D (the external source's rate).
        ctx.schedule_in(self.cfg.sys.frame_delay, Ev::HostEmit);

        // Rotation trigger (§5.5): every node except the old tail will
        // double — continue its current frame into the next share locally,
        // eliminating one SEND/RECV pair — and all roles shift by one. The
        // tagged frame still routes to the *old* head, which doubles it.
        // Whether a wave is due at this frame is the scheduling policy's
        // call (fixed period for `Static`, SoC-driven otherwise).
        let mut head = self.node_of_share[0];
        if self.rotation_due(frame) {
            if self.wave_outstanding > 0 {
                // The previous wave has unresolved doublings: launching
                // another now would overwrite unconsumed tags, losing the
                // wave and doubling the wrong share. Wait for the next
                // emission.
                self.counters.incr("rotations_deferred");
            } else {
                let n = self.node_of_share.len();
                for s in 0..n - 1 {
                    let node = self.node_of_share[s];
                    if self.nodes[node].alive {
                        self.double_from_share[node] = Some(s);
                        self.wave_outstanding += 1;
                    }
                }
                head = self.node_of_share[0];
                self.rotate_roles();
                self.last_rotation_frame = frame;
                self.on_policy_rotation(ctx, frame);
                if ctx.tracing() {
                    ctx.emit(
                        TraceRecord::new(ctx.now(), "pipeline", "rotation")
                            .with("frame", frame)
                            .with("rotations", self.rotations),
                    );
                }
            }
        }

        if !self.nodes[head].alive {
            return; // frame lost; recovery timeouts handle failover
        }
        self.plan_transfer(
            ctx,
            Transfer {
                from: Endpoint::Host,
                to: Endpoint::Node(head),
                bytes: self.cfg.shares[0].recv_bytes,
                kind: TransferKind::Data,
                frame,
                next_share: Some(0),
                epoch: 0,
                then_proc: None,
                seq: None,
                ack_of: None,
                fault: None,
            },
        );
    }

    fn on_xfer_start(&mut self, ctx: &mut Ctx<Ev>, id: usize) {
        let (from, to, frame) = {
            let t = &self.transfers[id];
            (t.from, t.to, t.frame)
        };
        if ctx.tracing() {
            ctx.emit(Self::transaction_of(&self.transfers[id]).trace_record(
                ctx.now(),
                "start",
                frame,
            ));
        }
        for ep in [from, to] {
            if let Endpoint::Node(i) = ep {
                self.set_node_state(ctx, i, Mode::Communication);
                // Direction marker for the Fig. 2/3/9 timeline renderer.
                if ctx.tracing() {
                    let kind = self.transfers[id].kind;
                    ctx.emit(
                        TraceRecord::new(ctx.now(), component_of(i), "io")
                            .with("dir", if ep == from { "send" } else { "recv" })
                            .with(
                                "payload",
                                match kind {
                                    TransferKind::Data => "data",
                                    TransferKind::Ack => "ack",
                                },
                            )
                            .with("frame", frame),
                    );
                }
            }
        }
    }

    fn on_xfer_end(&mut self, ctx: &mut Ctx<Ev>, id: usize) {
        let t = self.transfers[id].clone();
        if ctx.tracing() {
            ctx.emit(Self::transaction_of(&t).trace_record(ctx.now(), "delivered", t.frame));
        }
        // Sender side returns to idle (or awaits its ack).
        if let Endpoint::Node(s) = t.from {
            if self.nodes[s].alive {
                self.set_node_state(ctx, s, Mode::Idle);
                if let Some((node, frame, share)) = t.then_proc {
                    // This was an ack the receiver owed; now it can PROC.
                    debug_assert_eq!(node, s);
                    if self.is_offline(ctx.now(), node) {
                        self.counters.incr("frames_lost_brownout");
                    } else if t.epoch == self.epoch {
                        self.start_proc(ctx, node, frame, share);
                    }
                }
                if let Some(rec) = self.cfg.recovery {
                    if let Some(seq) = t.seq {
                        // Reliable send: watch for its ack by sequence
                        // number, so concurrent sends to different
                        // endpoints are attributed independently.
                        ctx.schedule_in(rec.ack_wait, Ev::AckTimeout { node: s, seq });
                    }
                }
            }
        }
        // Receiver side.
        match t.to {
            Endpoint::Host => {
                if t.kind == TransferKind::Data {
                    if transfer_lost(&t) {
                        // Dropped in flight or rejected by the PPP FCS;
                        // the sender's ack timeout drives the retry.
                        self.counters.incr("transfers_lost");
                        return;
                    }
                    if self.cfg.recovery.is_some() && self.recent_host_frames.contains(&t.frame) {
                        // Duplicate delivery (a retransmission whose
                        // original — or its ack — was lost): re-ack so the
                        // sender stands down, but don't double-count.
                        self.counters.incr("duplicate_frames_dropped");
                        self.host_ack(ctx, t.from, t.frame, t.seq);
                        return;
                    }
                    if self.cfg.recovery.is_some() {
                        remember(&mut self.recent_host_frames, t.frame);
                    }
                    self.frames_completed += 1;
                    self.counters.incr("frames_completed");
                    let depth = self.depth_at_emission(t.frame);
                    let emitted =
                        SimTime::from_micros(t.frame * self.cfg.sys.frame_delay.as_micros());
                    let latency_s = (ctx.now() - emitted).as_secs_f64();
                    self.latency.record(latency_s);
                    let deadline = SimTime::from_micros(
                        (t.frame + depth) * self.cfg.sys.frame_delay.as_micros(),
                    ) + DEADLINE_TOLERANCE;
                    let missed = ctx.now() > deadline;
                    if missed {
                        self.deadline_misses += 1;
                        self.counters.incr("deadline_misses");
                    }
                    if ctx.tracing() {
                        ctx.emit(
                            TraceRecord::new(ctx.now(), "host", "frame_complete")
                                .with("frame", t.frame)
                                .with("latency_s", latency_s)
                                .with("deadline_missed", missed),
                        );
                    }
                    if self.cfg.recovery.is_some() {
                        self.host_ack(ctx, t.from, t.frame, t.seq);
                    }
                }
            }
            Endpoint::Node(r) => {
                if !self.nodes[r].alive {
                    return; // data lost; the sender's ack timeout will fire
                }
                if self.is_offline(ctx.now(), r) {
                    // The receiver is browned out: nothing is heard.
                    self.counters.incr("transfers_lost_offline");
                    return;
                }
                if transfer_lost(&t) {
                    // Dropped in flight or rejected by the PPP FCS; the
                    // sender's ack timeout drives the retry.
                    self.counters.incr("transfers_lost");
                    self.set_node_state(ctx, r, Mode::Idle);
                    return;
                }
                match t.kind {
                    TransferKind::Ack => {
                        // Ack received: clear the matching outstanding send
                        // so its timeout finds nothing to retry.
                        if let Some(seq) = t.ack_of {
                            self.outstanding[r].retain(|o| o.seq != seq);
                        }
                        self.set_node_state(ctx, r, Mode::Idle);
                    }
                    TransferKind::Data => {
                        if t.epoch != self.epoch {
                            // Routed under a pre-migration share map; drop.
                            self.set_node_state(ctx, r, Mode::Idle);
                            return;
                        }
                        let share = t.next_share.expect("data to a node carries a share"); // lint: allow(D005) — protocol invariant: every Data transfer is planned with Some(next_share)
                        if self.cfg.recovery.is_some() && self.recent_frames[r].contains(&t.frame) {
                            // Duplicate delivery after a lost ack: re-ack
                            // (without re-processing) so the sender stops.
                            self.counters.incr("duplicate_frames_dropped");
                            self.plan_transfer(
                                ctx,
                                Transfer {
                                    from: Endpoint::Node(r),
                                    to: t.from,
                                    bytes: 0,
                                    kind: TransferKind::Ack,
                                    frame: t.frame,
                                    next_share: None,
                                    epoch: 0,
                                    then_proc: None,
                                    seq: None,
                                    ack_of: t.seq,
                                    fault: None,
                                },
                            );
                            return;
                        }
                        self.recv_seq[r] += 1;
                        if let Some(rec) = self.cfg.recovery {
                            remember(&mut self.recent_frames[r], t.frame);
                            // Re-arm the upstream-silence watchdog.
                            let seq = self.recv_seq[r];
                            ctx.schedule_in(rec.recv_timeout, Ev::RecvTimeout { node: r, seq });
                            // Acknowledge, then process.
                            self.plan_transfer(
                                ctx,
                                Transfer {
                                    from: Endpoint::Node(r),
                                    to: t.from,
                                    bytes: 0,
                                    kind: TransferKind::Ack,
                                    frame: t.frame,
                                    next_share: None,
                                    epoch: 0,
                                    then_proc: Some((r, t.frame, share)),
                                    seq: None,
                                    ack_of: t.seq,
                                    fault: None,
                                },
                            );
                        } else {
                            self.start_proc(ctx, r, t.frame, share);
                        }
                    }
                }
            }
        }
    }

    fn on_proc_end(&mut self, ctx: &mut Ctx<Ev>, node: usize, frame: u64, share: usize) {
        if !self.nodes[node].alive {
            return;
        }
        if self.is_offline(ctx.now(), node) {
            // Brownout hit mid-PROC: the frame's work is lost. A pending
            // doubling tag is forfeited with it — leaving it would let a
            // later frame of a recycled share index spuriously match.
            self.counters.incr("frames_lost_brownout");
            if self.double_from_share[node].take().is_some() {
                self.wave_resolve_one();
            }
            return;
        }
        // §5.5 rotation wave: a node that held `share` when the rotation
        // triggered continues its current frame into `share + 1` locally
        // (its data is already in memory), pausing only to reload code.
        if let Some(from) = self.double_from_share[node].take() {
            if from == share {
                let delay = self
                    .cfg
                    .rotation
                    .map(|r| r.reconfig_delay)
                    .unwrap_or(SimTime::ZERO);
                self.set_node_state(ctx, node, Mode::Idle);
                self.nodes[node].busy_until = ctx.now() + delay;
                // The wave's doubling resolves when the DoubleProc fires,
                // so the reconfig window itself holds the wave open.
                ctx.schedule_in(
                    delay,
                    Ev::DoubleProc {
                        node,
                        frame,
                        share: share + 1,
                    },
                );
                return;
            }
            // The wave passed this node by (it is already doing new-role
            // work); the taken flag stays cleared and its doubling is
            // resolved as skipped.
            self.wave_resolve_one();
        }
        self.set_node_state(ctx, node, Mode::Idle);
        // Under recovery, a migration may have renumbered the share table
        // while this frame was mid-PROC, making the event's `share` index
        // stale. The node's computed range is still the one it holds, so
        // forward under its *current* index — or drop the frame if the node
        // no longer holds any share (it migrated away). Under rotation the
        // event index stays authoritative: the §5.5 wave reassigns nodes to
        // different shares mid-PROC without renumbering them.
        let cur = if self.cfg.recovery.is_some() {
            let Some(cur) = self.share_of_node[node] else {
                self.counters.incr("frames_lost_migration");
                return;
            };
            cur
        } else {
            share
        };
        self.send_onward(ctx, node, frame, cur);
    }

    fn on_local_loop(&mut self, ctx: &mut Ctx<Ev>, node: usize) {
        if !self.nodes[node].alive {
            return;
        }
        if self.is_offline(ctx.now(), node) {
            // Resume the loop when the brownout lifts.
            let resume = self.faults.as_ref().map(|f| f.offline_until[node]);
            if let Some(at) = resume {
                ctx.schedule_at(at, Ev::LocalLoop { node });
            }
            return;
        }
        // One full local iteration finished (except the very first call,
        // which starts the loop at t = 0).
        if ctx.now() > SimTime::ZERO {
            self.frames_completed += 1;
            self.counters.incr("frames_completed");
        }
        let share = self.share_of_node[node].expect("local node keeps its share"); // lint: allow(D005) — invariant: ProcEnd only fires on nodes the share map still assigns work to
        let level = self.cfg.levels[share];
        let dur = self.cfg.shares[share].proc_time(&self.cfg.sys.dvs, level);
        self.counters.incr("state_transitions");
        let component = component_of(node);
        if ctx.tracing() {
            ctx.emit(
                TraceRecord::new(ctx.now(), component.as_str(), "state_transition")
                    .with("mode", Mode::Computation.name())
                    .with("freq_mhz", level.freq_mhz.mhz())
                    .with("share", share),
            );
        }
        let ttd = self.nodes[node].transition_recorded(
            ctx.now(),
            Mode::Computation,
            level,
            ctx.recorder(),
            &component,
        );
        if let Some(ev) = self.death_events[node].take() {
            ctx.cancel(ev);
        }
        if let Some(ttd) = ttd {
            self.death_events[node] = Some(ctx.schedule_in(ttd, Ev::NodeDeath(node)));
        }
        ctx.schedule_in(dur, Ev::LocalLoop { node });
    }

    fn on_node_death(&mut self, ctx: &mut Ctx<Ev>, node: usize) {
        if !self.nodes[node].alive {
            return;
        }
        self.counters.incr("node_deaths");
        let component = component_of(node);
        self.nodes[node].die_recorded(ctx.now(), ctx.recorder(), &component);
        if ctx.tracing() {
            ctx.emit(
                TraceRecord::new(ctx.now(), component.as_str(), "node_death")
                    .with(
                        "delivered_mah",
                        self.nodes[node].battery.delivered_mah().get(),
                    )
                    .with("stranded_mah", self.nodes[node].stranded_mah().get()),
            );
        }
        self.death_events[node] = None;
        // A dead node can never run its pending doubling.
        if self.double_from_share[node].take().is_some() {
            self.wave_resolve_one();
        }
        if self.cfg.recovery.is_none() {
            // Without recovery the pipeline stalls at the first failure
            // (§6.4): the system's battery life ends here.
            self.stopped_at = Some(ctx.now());
            ctx.request_stop();
        } else if self.alive_count() == 0 {
            self.stopped_at = Some(ctx.now());
            ctx.request_stop();
        }
        // With recovery and survivors, detection happens through the ack /
        // receive timeouts.
    }

    fn on_ack_timeout(&mut self, ctx: &mut Ctx<Ev>, node: usize, seq: u64) {
        if !self.nodes[node].alive {
            return; // we ourselves died
        }
        // Resolve the timed-out send by its sequence number: each
        // outstanding entry carries its own target, so a newer send to a
        // different endpoint can't steal the attribution.
        let Some(pos) = self.outstanding[node].iter().position(|o| o.seq == seq) else {
            return; // the ack arrived
        };
        let entry = self.outstanding[node][pos].clone();
        if entry.epoch != self.epoch {
            // Planned against a pre-migration share map; obsolete.
            self.outstanding[node].remove(pos);
            return;
        }
        self.counters.incr("ack_timeouts");
        if ctx.tracing() {
            ctx.emit(
                Transaction::ack(entry.to, Endpoint::Node(node))
                    .trace_record(ctx.now(), "timeout", entry.frame)
                    .with("waiter", component_of(node)),
            );
        }
        if self.is_offline(ctx.now(), node) {
            // A browned-out sender can't retransmit; give the frame up.
            self.outstanding[node].remove(pos);
            self.counters.incr("sends_abandoned");
            return;
        }
        match entry.to {
            Endpoint::Node(target) if !self.nodes[target].alive => {
                self.outstanding[node].remove(pos);
                self.migrate(ctx, node, target);
            }
            _ => {
                // The target is alive (or is the host): the loss was
                // transient — retransmit, up to the retry budget.
                let max_retries = self.cfg.recovery.map(|r| r.max_retries).unwrap_or(0);
                if entry.retries < max_retries {
                    self.outstanding[node][pos].retries += 1;
                    self.counters.incr("retransmissions");
                    self.plan_transfer(
                        ctx,
                        Transfer {
                            from: Endpoint::Node(node),
                            to: entry.to,
                            bytes: entry.bytes,
                            kind: TransferKind::Data,
                            frame: entry.frame,
                            next_share: entry.next_share,
                            epoch: 0,
                            then_proc: None,
                            seq: Some(entry.seq),
                            ack_of: None,
                            fault: None,
                        },
                    );
                } else {
                    self.outstanding[node].remove(pos);
                    self.counters.incr("sends_abandoned");
                }
            }
        }
    }

    fn on_brownout_start(&mut self, ctx: &mut Ctx<Ev>, node: usize) {
        let Some(duration) = self.faults.as_ref().map(|f| f.profile.brownout_duration) else {
            return;
        };
        if self.nodes[node].alive {
            self.counters.incr("fault_brownouts");
            let until = ctx.now() + duration;
            if let Some(fs) = self.faults.as_mut() {
                fs.offline_until[node] = until;
            }
            if ctx.tracing() {
                ctx.emit(
                    fault_record(ctx.now(), component_of(node))
                        .with("fault", "brownout")
                        .with("duration_us", duration.as_micros()),
                );
            }
            self.set_node_state(ctx, node, Mode::Idle);
        }
        ctx.schedule_in(duration, Ev::BrownoutEnd(node));
    }

    fn on_brownout_end(&mut self, ctx: &mut Ctx<Ev>, node: usize) {
        let Some(next) = self.faults.as_mut().map(|f| f.next_brownout_interval()) else {
            return;
        };
        if self.nodes[node].alive {
            self.set_node_state(ctx, node, Mode::Idle);
        }
        ctx.schedule_in(next, Ev::BrownoutStart(node));
    }

    fn on_recv_timeout(&mut self, ctx: &mut Ctx<Ev>, node: usize, seq: u64) {
        if seq != self.recv_seq[node] || !self.nodes[node].alive {
            return;
        }
        self.counters.incr("recv_timeouts");
        let Some(share) = self.share_of_node[node] else {
            return;
        };
        if share == 0 {
            return; // upstream is the host, which never dies
        }
        let upstream = self.node_of_share[share - 1];
        if ctx.tracing() {
            ctx.emit(
                Transaction::payload(Endpoint::Node(upstream), Endpoint::Node(node), 0)
                    .trace_record(ctx.now(), "timeout", 0)
                    .with("upstream_alive", self.nodes[upstream].alive),
            );
        }
        if !self.nodes[upstream].alive {
            self.migrate(ctx, node, upstream);
        } else if let Some(rec) = self.cfg.recovery {
            // Upstream is alive but slow; keep watching.
            let seq = self.recv_seq[node];
            ctx.schedule_in(rec.recv_timeout, Ev::RecvTimeout { node, seq });
        }
    }
}

/// Build the engine for a configuration: nodes idle, initial death events
/// armed, and either the host emission loop or the local loops scheduled.
pub fn build_engine(cfg: PipelineConfig) -> Engine<PipelineWorld> {
    build_engine_with(cfg, Box::new(dles_sim::NullRecorder))
}

/// [`build_engine`] with an explicit trace recorder (JSONL file, memory
/// buffer for the timeline renderer, …).
pub fn build_engine_with(
    cfg: PipelineConfig,
    recorder: Box<dyn Recorder>,
) -> Engine<PipelineWorld> {
    let io = cfg.io_enabled;
    let n = cfg.n_nodes();
    let world = PipelineWorld::new(cfg);
    let mut engine = Engine::with_recorder(world, recorder);
    // Arm initial death events for the idle draw.
    for i in 0..n {
        let ttd = {
            let w = engine.world();
            w.nodes[i]
                .battery
                .time_to_exhaustion(w.nodes[i].power.current_ma())
        };
        if let Some(ttd) = ttd {
            let id = engine.schedule_at(ttd, Ev::NodeDeath(i));
            engine.world_mut().death_events[i] = Some(id);
        }
    }
    // Arm the first brownout per node when the fault plan injects them.
    let brownouts = engine
        .world()
        .faults
        .as_ref()
        .is_some_and(|f| f.profile.has_brownouts());
    if brownouts {
        for i in 0..n {
            let Some(at) = engine
                .world_mut()
                .faults
                .as_mut()
                .map(|f| f.next_brownout_interval())
            else {
                break;
            };
            engine.schedule_at(at, Ev::BrownoutStart(i));
        }
    }
    if io {
        engine.schedule_at(SimTime::ZERO, Ev::HostEmit);
    } else {
        for i in 0..n {
            engine.schedule_at(SimTime::ZERO, Ev::LocalLoop { node: i });
        }
    }
    engine
}

/// Run a pipeline configuration to completion and report the result.
pub fn run_pipeline(cfg: PipelineConfig) -> ExperimentResult {
    run_pipeline_with(cfg, Box::new(dles_sim::NullRecorder))
}

/// [`run_pipeline`] with an explicit trace recorder. The recorder receives
/// every structured event of the run (power segments, transactions, state
/// transitions, rotations, failures); a [`dles_sim::JsonlRecorder`] is
/// flushed when the engine is dropped at the end of this call.
pub fn run_pipeline_with(cfg: PipelineConfig, recorder: Box<dyn Recorder>) -> ExperimentResult {
    let horizon = cfg.horizon;
    let mut engine = build_engine_with(cfg, recorder);
    let outcome = engine.run_until(horizon);
    debug_assert_ne!(
        outcome,
        RunOutcome::QueueEmpty,
        "pipeline drained unexpectedly"
    );
    let now = engine.now();
    engine.world_mut().result(now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::NodeShare;
    use dles_atr::BlockRange;
    use dles_battery::packs::itsy_pack_b;

    fn base_config(label: &str) -> PipelineConfig {
        let sys = SystemConfig::paper();
        let share = NodeShare::from_profile(&sys.profile, BlockRange::full());
        let level = sys.dvs.highest();
        PipelineConfig {
            label: label.into(),
            shares: vec![share],
            levels: vec![level],
            policy: DvsPolicy::FixedLevel,
            scheduling: SchedulingPolicy::Static,
            battery: BatterySpec::Kibam(itsy_pack_b().kibam),
            current_model: CurrentModel::itsy(),
            rotation: None,
            recovery: None,
            io_enabled: true,
            jitter_seed: None,
            faults: None,
            battery_scales: None,
            horizon: SimTime::from_secs(3600 * 200),
            sys,
        }
    }

    fn two_node_config(label: &str) -> PipelineConfig {
        let mut cfg = base_config(label);
        let s1 = NodeShare::from_profile(&cfg.sys.profile, BlockRange::new(0, 1));
        let s2 = NodeShare::from_profile(&cfg.sys.profile, BlockRange::new(1, 4));
        cfg.shares = vec![s1, s2];
        cfg.levels = vec![
            cfg.sys
                .dvs
                .by_freq(dles_units::Hertz::from_mhz(59.0))
                .unwrap(),
            cfg.sys
                .dvs
                .by_freq(dles_units::Hertz::from_mhz(103.2))
                .unwrap(),
        ];
        cfg
    }

    #[test]
    fn baseline_runs_to_exhaustion_with_correct_throughput() {
        let r = run_pipeline(base_config("1"));
        assert_eq!(r.n_nodes, 1);
        assert!(r.frames_completed > 1000);
        assert_eq!(r.deadline_misses, 0, "baseline fits D exactly");
        // One result per D: F ≈ T / D.
        let expect_frames = r.lifetime.as_secs_f64() / 2.3;
        let rel = (r.frames_completed as f64 - expect_frames).abs() / expect_frames;
        assert!(
            rel < 0.01,
            "F {} vs T/D {}",
            r.frames_completed,
            expect_frames
        );
        assert!(r.nodes[0].death_time.is_some());
    }

    #[test]
    fn dvs_during_io_extends_baseline_life() {
        let plain = run_pipeline(base_config("1"));
        let mut cfg = base_config("1A");
        cfg.policy = DvsPolicy::DvsDuringIo;
        let dvs = run_pipeline(cfg);
        assert!(
            dvs.lifetime.as_hours_f64() > plain.lifetime.as_hours_f64() * 1.1,
            "1A {} h vs 1 {} h",
            dvs.lifetime.as_hours_f64(),
            plain.lifetime.as_hours_f64()
        );
        assert_eq!(
            dvs.deadline_misses, 0,
            "comm latency is frequency-independent"
        );
    }

    #[test]
    fn two_node_pipeline_node2_dies_first() {
        let r = run_pipeline(two_node_config("2"));
        assert_eq!(r.n_nodes, 2);
        let (first, _) = r.first_death().expect("someone died");
        assert_eq!(first, 1, "§6.4: Node2 always fails first");
        assert_eq!(r.deadline_misses, 0);
        // Node1 still has substantial charge left when the pipeline stalls.
        assert!(
            r.nodes[0].stranded_mah > 0.3 * itsy_pack_b().kibam.capacity_mah,
            "Node1 stranded only {} mAh",
            r.nodes[0].stranded_mah.get()
        );
    }

    #[test]
    fn two_node_lifetime_beats_baseline_absolute_but_not_2x_normalized() {
        let one = run_pipeline(base_config("1"));
        let two = run_pipeline(two_node_config("2"));
        let t1 = one.lifetime.as_hours_f64();
        let t2 = two.lifetime.as_hours_f64();
        assert!(t2 > 2.0 * t1, "absolute life should more than double");
        // But normalized improvement is modest (§6.4: only 15%).
        let rnorm = two.normalized_ratio(&one);
        assert!(rnorm > 1.02 && rnorm < 1.35, "R_norm {rnorm}");
    }

    #[test]
    fn rotation_balances_discharge() {
        let mut cfg = two_node_config("2C");
        cfg.policy = DvsPolicy::DvsDuringIo;
        cfg.rotation = Some(RotationConfig::paper());
        let r = run_pipeline(cfg);
        // Both nodes die close together: balanced load.
        let deaths: Vec<f64> = r
            .nodes
            .iter()
            .map(|n| n.death_time.map(|t| t.as_hours_f64()).unwrap_or(f64::MAX))
            .collect();
        let first = deaths.iter().cloned().fold(f64::MAX, f64::min);
        // The second node may outlive the stall; compare delivered charge.
        let d0 = r.nodes[0].delivered_mah.get();
        let d1 = r.nodes[1].delivered_mah.get();
        let imbalance = (d0 - d1).abs() / d0.max(d1);
        assert!(imbalance < 0.15, "delivered {d0} vs {d1}");
        assert!(first > 0.0);
        assert!(
            r.deadline_misses <= r.frames_completed / 200,
            "rotation should not wreck throughput: {} misses / {} frames",
            r.deadline_misses,
            r.frames_completed
        );
    }

    #[test]
    fn rotation_beats_plain_partitioning() {
        let plain = run_pipeline(two_node_config("2"));
        let mut cfg = two_node_config("2C");
        cfg.policy = DvsPolicy::DvsDuringIo;
        cfg.rotation = Some(RotationConfig::paper());
        let rot = run_pipeline(cfg);
        assert!(
            rot.lifetime.as_hours_f64() > plain.lifetime.as_hours_f64() * 1.1,
            "2C {} h vs 2 {} h",
            rot.lifetime.as_hours_f64(),
            plain.lifetime.as_hours_f64()
        );
    }

    #[test]
    fn recovery_survivor_continues_after_first_death() {
        let mut cfg = two_node_config("2B");
        cfg.policy = DvsPolicy::DvsDuringIo;
        cfg.levels = vec![
            cfg.sys
                .dvs
                .by_freq(dles_units::Hertz::from_mhz(73.7))
                .unwrap(),
            cfg.sys
                .dvs
                .by_freq(dles_units::Hertz::from_mhz(118.0))
                .unwrap(),
        ];
        cfg.recovery = Some(RecoveryConfig::paper());
        let r = run_pipeline(cfg);
        // Both nodes eventually die; lifetime is the second death.
        assert!(r.nodes.iter().all(|n| n.death_time.is_some()));
        let deaths: Vec<SimTime> = r.nodes.iter().map(|n| n.death_time.unwrap()).collect();
        let last = deaths.iter().max().unwrap();
        let first = deaths.iter().min().unwrap();
        assert!(last > first, "survivor must outlive the first failure");
        assert_eq!(r.lifetime, *last);
        // Frames continue to complete after the first death.
        let frames_by_first = first.as_secs_f64() / 2.3;
        assert!(
            (r.frames_completed as f64) > frames_by_first + 100.0,
            "survivor picked up {} vs {}",
            r.frames_completed,
            frames_by_first
        );
    }

    #[test]
    fn no_io_local_loop_counts_frames() {
        let mut cfg = base_config("0A");
        cfg.io_enabled = false;
        let r = run_pipeline(cfg);
        assert!(r.frames_completed > 1000);
        // F ≈ T / 1.1 s (back-to-back full-speed iterations).
        let expect = r.lifetime.as_secs_f64() / 1.1;
        let rel = (r.frames_completed as f64 - expect).abs() / expect;
        assert!(rel < 0.01, "F {} vs {}", r.frames_completed, expect);
    }

    #[test]
    fn jitter_changes_results_but_stays_feasible() {
        let mut cfg = base_config("1-jitter");
        cfg.jitter_seed = Some(42);
        let r = run_pipeline(cfg);
        assert!(r.frames_completed > 1000);
        // With 50–100 ms startup jitter the 2.294 s frame occasionally
        // exceeds D = 2.3 s; misses must stay a small minority.
        assert!(
            (r.deadline_misses as f64) < 0.6 * r.frames_completed as f64,
            "{} misses / {}",
            r.deadline_misses,
            r.frames_completed
        );
        // Deterministic for the same seed.
        let mut cfg2 = base_config("1-jitter");
        cfg2.jitter_seed = Some(42);
        let r2 = run_pipeline(cfg2);
        assert_eq!(r.frames_completed, r2.frames_completed);
        assert_eq!(r.lifetime, r2.lifetime);
    }

    #[test]
    fn counters_agree_with_result_metrics() {
        let r = run_pipeline(two_node_config("2"));
        assert_eq!(r.counters.get("frames_completed"), r.frames_completed);
        assert_eq!(r.counters.get("deadline_misses"), r.deadline_misses);
        assert_eq!(r.counters.get("node_deaths"), 1, "Node2 dies, run stops");
        // Every completed frame needed 3 data transfers (host→1→2→host).
        assert!(r.counters.get("transfers_data") >= 3 * r.frames_completed);
        assert!(r.counters.get("frames_emitted") >= r.frames_completed);
        assert!(r.counters.get("state_transitions") > 0);
    }

    #[test]
    fn traced_run_emits_structured_records() {
        use dles_sim::MemoryRecorder;
        let mut cfg = two_node_config("2");
        cfg.horizon = SimTime::from_secs(12); // ~5 frames
        let mut engine = build_engine_with(cfg, Box::new(MemoryRecorder::new()));
        engine.run_until(SimTime::from_secs(12));
        let records = engine.recorder_mut().take_records();
        let kinds: Vec<&str> = records.iter().map(|r| r.kind).collect();
        for expect in [
            "transaction",
            "io",
            "state_transition",
            "power_segment",
            "frame_complete",
        ] {
            assert!(kinds.contains(&expect), "missing kind {expect}");
        }
        // Records arrive in nondecreasing time order.
        assert!(records.windows(2).all(|w| w[0].time <= w[1].time));
        // Power segments on node1 account for the elapsed time.
        let node1_us: u64 = records
            .iter()
            .filter(|r| r.kind == "power_segment" && r.component == "node1")
            .filter_map(|r| r.u64_field("duration_us"))
            .sum();
        assert!(node1_us > 10_000_000, "node1 covered {node1_us} µs");
    }

    #[test]
    #[should_panic(expected = "alternative techniques")]
    fn rotation_plus_recovery_rejected() {
        let mut cfg = two_node_config("bad");
        cfg.rotation = Some(RotationConfig::paper());
        cfg.recovery = Some(RecoveryConfig::paper());
        run_pipeline(cfg);
    }

    /// Regression (pre-fix-failing): a rotation due while the previous
    /// wave still has unresolved doublings must *defer*, not launch. The
    /// pre-fix code launched unconditionally, overwriting the in-flight
    /// wave's unconsumed tags — the wave was lost and a later frame of a
    /// recycled share index could spuriously double. This only manifests
    /// when the rotation boundary moves to arbitrary frames (adaptive
    /// policies, or periods shorter than a wave), never on the fixed
    /// 100-frame grid.
    #[test]
    fn rotation_defers_while_a_wave_is_still_reconfiguring() {
        let mut cfg = two_node_config("overlap");
        cfg.policy = DvsPolicy::DvsDuringIo;
        cfg.rotation = Some(RotationConfig::every(1));
        let mut engine = build_engine(cfg);
        {
            // A wave is mid-reconfig: its tag is consumed (DoubleProc
            // pending) but the doubling has not resolved yet.
            let w = engine.world_mut();
            w.wave_outstanding = 1;
        }
        // Frame 1 at t = D triggers a period-1 rotation.
        engine.run_until(SimTime::from_secs(3));
        let w = engine.world();
        assert_eq!(
            w.rotations(),
            0,
            "a new wave must not launch over an unresolved one"
        );
        assert!(
            w.counters().get("rotations_deferred") >= 1,
            "the deferral must be accounted"
        );
        assert_eq!(
            w.double_from_share,
            vec![None, None],
            "no doubling tags may be planted while deferring"
        );
    }

    /// Companion: with an *irregular* (SoC-driven) rotation schedule the
    /// frame accounting stays sound — every completed frame is delivered
    /// exactly once and waves keep resolving (no deferral deadlock).
    #[test]
    fn irregular_rotation_schedule_keeps_frame_accounting_sound() {
        use dles_sim::MemoryRecorder;
        let mut cfg = two_node_config("2C-skew");
        cfg.policy = DvsPolicy::DvsDuringIo;
        cfg.rotation = Some(RotationConfig::paper());
        // The adaptive-period feedback loop shrinks the period step by
        // step (100 → 50 → 25 → …), so the early rotation gaps genuinely
        // vary and the boundary leaves the fixed grid.
        cfg.scheduling = SchedulingPolicy::by_name("adaptive").unwrap();
        cfg.horizon = SimTime::from_secs(900);
        let mut engine = build_engine_with(cfg, Box::new(MemoryRecorder::new()));
        engine.run_until(SimTime::from_secs(900));
        let records = engine.recorder_mut().take_records();
        let mut completed: Vec<u64> = records
            .iter()
            .filter(|r| r.kind == "frame_complete")
            .map(|r| r.u64_field("frame").unwrap())
            .collect();
        let total = completed.len();
        assert!(total > 100, "only {total} frames in 900 s");
        completed.sort_unstable();
        completed.dedup();
        assert_eq!(
            completed.len(),
            total,
            "duplicate frame completions under irregular rotation"
        );
        let w = engine.world();
        assert!(w.rotations() > 5, "only {} rotations", w.rotations());
        assert_eq!(w.wave_outstanding, 0, "all waves must have resolved");
        // The schedule really is irregular: rotation frames are not a
        // single fixed stride apart.
        let rot_frames: Vec<u64> = records
            .iter()
            .filter(|r| r.kind == "rotation")
            .map(|r| r.u64_field("frame").unwrap())
            .collect();
        let gaps: Vec<u64> = rot_frames.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.windows(2).any(|g| g[0] != g[1]),
            "gaps {gaps:?} look like a fixed period"
        );
        // And the boundary really left the configured 100-frame grid.
        assert!(
            rot_frames.iter().any(|f| f % 100 != 0),
            "rotation frames {rot_frames:?} stayed on the fixed grid"
        );
    }

    /// Regression (pre-fix-failing): a brownout that lands *inside* the
    /// `reconfig_delay` window silently swallowed the doubled frame — the
    /// DoubleProc was skipped with no accounting and (with wave tracking)
    /// the wave would never resolve, deferring every later rotation. The
    /// node must rejoin in its *new* role and the loss must be counted.
    #[test]
    fn brownout_during_reconfig_rejoins_in_the_new_role() {
        use crate::faults::FaultProfile;
        let mut cfg = two_node_config("reconfig-brownout");
        cfg.policy = DvsPolicy::DvsDuringIo;
        cfg.rotation = Some(RotationConfig::paper());
        cfg.faults = Some(FaultPlan::new(FaultProfile::brownout(), 1));
        cfg.horizon = SimTime::from_secs(1200);
        let mut engine = build_engine(cfg);
        {
            // Reproduce the post-rotation state: roles already shifted
            // (node0 → share 1, node1 → share 0), node0 mid-reconfig with
            // its doubling pending, when a brownout knocks it offline.
            let w = engine.world_mut();
            w.node_of_share = vec![1, 0];
            w.share_of_node = vec![Some(1), Some(0)];
            w.wave_outstanding = 1;
            w.faults.as_mut().unwrap().offline_until[0] = SimTime::from_millis(100);
        }
        engine.schedule_at(
            SimTime::from_millis(60),
            Ev::DoubleProc {
                node: 0,
                frame: 0,
                share: 1,
            },
        );
        engine.run_until(SimTime::from_millis(200));
        {
            let w = engine.world();
            assert_eq!(
                w.counters().get("frames_lost_brownout"),
                1,
                "the doubled frame lost to the brownout must be counted"
            );
            assert_eq!(w.wave_outstanding, 0, "the wave must resolve anyway");
            assert_eq!(
                w.share_of_node[0],
                Some(1),
                "the node keeps its new role through the brownout"
            );
        }
        // And the system keeps operating: the rejoined node serves its
        // new share and later (fixed-period) rotations still launch.
        engine.run_until(SimTime::from_secs(1200));
        let w = engine.world();
        assert!(
            w.rotations() >= 2,
            "later rotations deadlocked: {}",
            w.rotations()
        );
        assert!(
            w.counters().get("frames_completed") > 100,
            "pipeline stalled after the reconfig brownout"
        );
    }

    /// Regression: with two sends in flight to *different* endpoints, the
    /// ack timeout of the earlier send must be attributed to that send's
    /// own target. The pre-fix code kept only `last_send_target[node]`, so
    /// the newer send (here: to the host) overwrote the dead node and the
    /// failover migration never happened.
    #[test]
    fn ack_timeout_attributes_to_the_per_seq_target() {
        let sys = SystemConfig::paper();
        let part = crate::partition::best_partition(&sys, 3).expect("3-way partition");
        let mut cfg = base_config("attribution");
        cfg.levels = part
            .levels
            .iter()
            .map(|l| l.unwrap_or(sys.dvs.highest()))
            .collect();
        cfg.shares = part.shares;
        cfg.recovery = Some(RecoveryConfig::paper());
        cfg.sys = sys;
        let mut engine = build_engine(cfg);
        {
            let w = engine.world_mut();
            // Node 3 is gone (never drew down its battery: direct kill).
            w.nodes[2].alive = false;
            w.nodes[2].death_time = Some(SimTime::ZERO);
            // Node 2 has seq 0 outstanding to dead node 3 and a *newer*
            // seq 1 outstanding to the host.
            w.outstanding[1].push(OutstandingSend {
                seq: 0,
                to: Endpoint::Node(2),
                bytes: 100,
                frame: 0,
                next_share: Some(2),
                epoch: 0,
                retries: 0,
            });
            w.outstanding[1].push(OutstandingSend {
                seq: 1,
                to: Endpoint::Host,
                bytes: 100,
                frame: 1,
                next_share: None,
                epoch: 0,
                retries: 0,
            });
            w.send_seq[1] = 2;
        }
        engine.schedule_at(SimTime::from_millis(1), Ev::AckTimeout { node: 1, seq: 0 });
        engine.run_until(SimTime::from_millis(2));
        let w = engine.world();
        assert_eq!(w.migrations(), 1, "seq 0's dead target must migrate");
        assert_eq!(w.share_of_node[2], None, "dead node's share absorbed");
    }

    /// Regression companion: a timed-out send to a *live* endpoint is a
    /// transient loss — it must retransmit, never migrate.
    #[test]
    fn ack_timeout_to_live_target_retransmits() {
        let mut cfg = two_node_config("retry");
        cfg.recovery = Some(RecoveryConfig::paper());
        let mut engine = build_engine(cfg);
        {
            let w = engine.world_mut();
            w.outstanding[0].push(OutstandingSend {
                seq: 0,
                to: Endpoint::Node(1),
                bytes: 100,
                frame: 0,
                next_share: Some(1),
                epoch: 0,
                retries: 0,
            });
            w.send_seq[0] = 1;
        }
        engine.schedule_at(SimTime::from_millis(1), Ev::AckTimeout { node: 0, seq: 0 });
        engine.run_until(SimTime::from_millis(2));
        let w = engine.world();
        assert_eq!(w.counters().get("retransmissions"), 1);
        assert_eq!(w.migrations(), 0, "live target must not trigger failover");
        assert_eq!(w.outstanding[0][0].retries, 1);
    }

    /// Regression: a frame emitted into an n-deep pipeline keeps its
    /// n-period deadline even if a migration shrinks the pipeline while it
    /// is in flight. The pre-fix code read `cfg.shares.len()` (the
    /// *current* depth) at completion time, so straddling frames were
    /// falsely counted as deadline misses.
    #[test]
    fn post_migration_deadlines_use_emission_depth() {
        use dles_sim::MemoryRecorder;
        // Three stages; killing the *middle* node leaves the frame that sits
        // in the tail's PROC at migration time to complete through the
        // normal tail -> host hop, i.e. with the full 3-stage latency
        // (~5.15 s). That lands between the shrunken 2-deep deadline
        // (2D + tol = 4.65 s) and the emission-depth deadline (3D + tol =
        // 6.95 s), so it discriminates the two accountings.
        let sys = SystemConfig::paper();
        let part = crate::partition::best_partition(&sys, 3).expect("3-way partition");
        let mut cfg = base_config("depth");
        // Slowest levels that stay feasible *with* the §5.4 ack overhead:
        // the bare minimum-feasible levels leave no budget for acks and the
        // pipeline collapses into a retransmission storm.
        cfg.levels = part
            .shares
            .iter()
            .map(|sh| {
                sh.min_feasible_level(&sys, SimTime::from_millis(150))
                    .unwrap_or_else(|| sys.dvs.highest())
            })
            .collect();
        cfg.shares = part.shares;
        cfg.policy = DvsPolicy::DvsDuringIo;
        cfg.recovery = Some(RecoveryConfig::paper());
        // A tiny battery on the middle node forces an early death + migration.
        cfg.battery_scales = Some(vec![1.0, 0.02, 1.0]);
        cfg.horizon = SimTime::from_secs(3600);
        cfg.sys = sys;
        let mut engine = build_engine_with(cfg, Box::new(MemoryRecorder::new()));
        engine.run_until(SimTime::from_secs(3600));
        let records = engine.recorder_mut().take_records();
        let t_mig = records
            .iter()
            .find(|r| r.kind == "migration")
            .map(|r| r.time)
            .expect("the tail dies early enough to migrate");
        let d = 2_300_000u64;
        let tol = DEADLINE_TOLERANCE.as_micros();
        let mut checked = 0;
        for r in records.iter().filter(|r| r.kind == "frame_complete") {
            if r.time <= t_mig {
                continue;
            }
            let frame = r.u64_field("frame").unwrap();
            if SimTime::from_micros(frame * d) >= t_mig {
                continue; // emitted post-migration: 2-deep deadline applies
            }
            let done = r.time.as_micros();
            let due_shrunk = (frame + 2) * d + tol;
            let due_emitted = (frame + 3) * d + tol;
            if done > due_shrunk && done <= due_emitted {
                // Late for the shrunken pipeline, on time for the 3-deep
                // pipeline it was emitted into.
                assert_eq!(
                    r.bool_field("deadline_missed"),
                    Some(false),
                    "frame {frame} straddling the migration counted missed"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no in-flight frame straddled the migration");
    }
}
