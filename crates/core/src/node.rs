//! The simulated Itsy node: CPU power state + battery + instrumentation.
//!
//! A node is "a full-fledged computer system with a voltage-scalable
//! processor, I/O devices, and memory" (§3). For the lifetime experiments
//! its observable state is the (mode, DVS level) power waveform it draws
//! from its dedicated battery.

use dles_battery::kibam::KibamParams;
use dles_battery::rakhmatov::RvParams;
use dles_battery::{Battery, IdealBattery, KibamBattery, PeukertBattery, RakhmatovBattery};
use dles_power::{
    CurrentModel, DvsTable, EnergyAccount, FreqLevel, LoadSegment, Mode, PowerMonitor, PowerState,
};
use dles_sim::{NullRecorder, Recorder, SimTime};
use dles_units::{MilliAmpHours, MilliAmps};

use crate::metrics::NodeOutcome;
use crate::policy::DvsPolicy;

/// Which battery model powers a node — KiBaM for reproduction, ideal and
/// Peukert for the "what would a naive battery model predict" ablations.
#[derive(Debug, Clone, Copy)]
pub enum BatterySpec {
    Kibam(KibamParams),
    Rakhmatov(RvParams),
    Ideal {
        capacity_mah: MilliAmpHours,
    },
    Peukert {
        capacity_mah: MilliAmpHours,
        reference_ma: MilliAmps,
        exponent: f64,
    },
}

impl BatterySpec {
    pub fn build(&self) -> Box<dyn Battery> {
        match *self {
            BatterySpec::Kibam(p) => Box::new(KibamBattery::from_params(p)),
            BatterySpec::Rakhmatov(p) => Box::new(RakhmatovBattery::from_params(p)),
            BatterySpec::Ideal { capacity_mah } => Box::new(IdealBattery::new(capacity_mah.get())),
            BatterySpec::Peukert {
                capacity_mah,
                reference_ma,
                exponent,
            } => Box::new(PeukertBattery::new(
                capacity_mah.get(),
                reference_ma.get(),
                exponent,
            )),
        }
    }

    /// Nominal capacity of the pack this spec describes.
    pub fn capacity_mah(&self) -> MilliAmpHours {
        match *self {
            BatterySpec::Kibam(p) => p.capacity_mah,
            BatterySpec::Rakhmatov(p) => p.alpha_mah,
            BatterySpec::Ideal { capacity_mah } => capacity_mah,
            BatterySpec::Peukert { capacity_mah, .. } => capacity_mah,
        }
    }

    /// The same chemistry with its capacity scaled by `factor` — per-node
    /// manufacturing variance or a reduced initial state of charge (the
    /// fault-injection layer models both as a smaller pack).
    pub fn scaled(&self, factor: f64) -> BatterySpec {
        assert!(factor > 0.0, "battery scale must be positive");
        match *self {
            BatterySpec::Kibam(p) => BatterySpec::Kibam(p.scaled(factor)),
            BatterySpec::Rakhmatov(p) => BatterySpec::Rakhmatov(p.scaled(factor)),
            BatterySpec::Ideal { capacity_mah } => BatterySpec::Ideal {
                capacity_mah: capacity_mah * factor,
            },
            BatterySpec::Peukert {
                capacity_mah,
                reference_ma,
                exponent,
            } => BatterySpec::Peukert {
                capacity_mah: capacity_mah * factor,
                reference_ma,
                exponent,
            },
        }
    }
}

/// One simulated node.
pub struct SimNode {
    /// The node's battery (dies with it).
    pub battery: Box<dyn Battery>,
    /// CPU power state machine.
    pub power: PowerState,
    /// Discharge instrumentation (Itsy's power monitor).
    pub monitor: PowerMonitor,
    /// Energy attribution by mode.
    pub energy: EnergyAccount,
    /// Whether the battery still has charge.
    pub alive: bool,
    /// When the node's current activity completes (scheduling hint).
    pub busy_until: SimTime,
    /// Time of battery exhaustion, once dead.
    pub death_time: Option<SimTime>,
}

impl SimNode {
    /// A fresh node idling at `idle_level`.
    pub fn new(spec: &BatterySpec, model: CurrentModel, idle_level: FreqLevel) -> Self {
        SimNode {
            battery: spec.build(),
            power: PowerState::new(model, Mode::Idle, idle_level),
            monitor: PowerMonitor::new(),
            energy: EnergyAccount::new(),
            alive: true,
            busy_until: SimTime::ZERO,
            death_time: None,
        }
    }

    /// Transition to `(mode, level)` at `now`. Settles the completed power
    /// segment against the battery and instrumentation, then returns how
    /// long the battery can sustain the *new* draw — the caller schedules
    /// the node's death event accordingly. Must not be called on a dead
    /// node.
    pub fn transition(&mut self, now: SimTime, mode: Mode, level: FreqLevel) -> Option<SimTime> {
        self.transition_recorded(now, mode, level, &mut NullRecorder, "")
    }

    /// [`SimNode::transition`] that additionally emits the settled power
    /// segment (mode, DVS level, current, energy) as a `power_segment`
    /// trace record under `component`.
    pub fn transition_recorded(
        &mut self,
        now: SimTime,
        mode: Mode,
        level: FreqLevel,
        recorder: &mut dyn Recorder,
        component: &str,
    ) -> Option<SimTime> {
        assert!(self.alive, "transition on a dead node");
        let prev_mode = self.power.mode();
        let prev_level = self.power.level();
        let (dur, current) = self.power.transition(now, mode, level);
        if dur > SimTime::ZERO {
            let outcome = self.battery.discharge(dur, current);
            debug_assert!(
                !outcome.is_exhausted(),
                "battery died before its scheduled death event"
            );
            self.monitor.record(now, dur, current);
            self.energy.add(prev_mode, dur, current);
            self.emit_segment(
                Self::settled_segment(now, dur, current),
                prev_mode,
                prev_level,
                recorder,
                component,
            );
        }
        self.battery.time_to_exhaustion(self.power.current_ma())
    }

    fn emit_segment(
        &self,
        seg: LoadSegment,
        mode: Mode,
        level: FreqLevel,
        recorder: &mut dyn Recorder,
        component: &str,
    ) {
        if recorder.enabled() {
            recorder.record(seg.trace_record(component, mode.name(), level.freq_mhz));
        }
    }

    /// The just-settled constant-draw interval ending at `end`.
    fn settled_segment(end: SimTime, dur: SimTime, current: MilliAmps) -> LoadSegment {
        LoadSegment {
            start: end.saturating_sub(dur),
            duration: dur,
            current_ma: current,
        }
    }

    /// Convenience: transition with the level chosen by `policy` for
    /// `mode` given the node's current computation level `base`.
    pub fn transition_policy(
        &mut self,
        now: SimTime,
        mode: Mode,
        base: FreqLevel,
        policy: DvsPolicy,
        table: &DvsTable,
    ) -> Option<SimTime> {
        let level = policy.level_for(mode, base, table);
        self.transition(now, mode, level)
    }

    /// The battery is exhausted at exactly `now`: settle the final segment
    /// and mark the node dead.
    pub fn die(&mut self, now: SimTime) {
        self.die_recorded(now, &mut NullRecorder, "")
    }

    /// [`SimNode::die`] that also emits the final `power_segment` record.
    pub fn die_recorded(&mut self, now: SimTime, recorder: &mut dyn Recorder, component: &str) {
        assert!(self.alive, "node died twice");
        let prev_mode = self.power.mode();
        let prev_level = self.power.level();
        let (dur, current) = self.power.finish(now);
        if dur > SimTime::ZERO {
            // The final partial segment; the battery reports exhaustion at
            // (or extremely near) its end by construction.
            let _ = self.battery.discharge(dur, current);
            self.monitor.record(now, dur, current);
            self.energy.add(prev_mode, dur, current);
            self.emit_segment(
                Self::settled_segment(now, dur, current),
                prev_mode,
                prev_level,
                recorder,
                component,
            );
        }
        // `now` came from time_to_exhaustion rounded to the microsecond, so
        // the battery may sit a hair short of exhaustion; nudge it over.
        let mut guard = 0;
        while !self.battery.is_exhausted() && guard < 10 {
            let _ = self
                .battery
                .discharge(SimTime::from_millis(1), current.max(MilliAmps::new(1.0)));
            guard += 1;
        }
        debug_assert!(
            self.battery.is_exhausted(),
            "death event fired far from actual exhaustion"
        );
        self.alive = false;
        self.death_time = Some(now);
    }

    /// Close instrumentation at the end of an experiment for a node that
    /// survived.
    pub fn finish(&mut self, now: SimTime) {
        self.finish_recorded(now, &mut NullRecorder, "")
    }

    /// [`SimNode::finish`] that also emits the closing `power_segment`.
    pub fn finish_recorded(&mut self, now: SimTime, recorder: &mut dyn Recorder, component: &str) {
        if self.alive {
            let prev_mode = self.power.mode();
            let prev_level = self.power.level();
            let (dur, current) = self.power.finish(now);
            if dur > SimTime::ZERO {
                let _ = self.battery.discharge(dur, current);
                self.monitor.record(now, dur, current);
                self.energy.add(prev_mode, dur, current);
                self.emit_segment(
                    Self::settled_segment(now, dur, current),
                    prev_mode,
                    prev_level,
                    recorder,
                    component,
                );
            }
        }
    }

    /// The node's estimated state of charge — what an adaptive scheduling
    /// policy observes. Settled as of the node's last power transition
    /// (the estimator is deterministic, not clairvoyant: mid-segment draw
    /// has not been integrated yet).
    pub fn soc_estimate(&self) -> dles_units::StateOfCharge {
        self.battery.soc_estimate()
    }

    /// Charge remaining in the battery (both wells / equivalent).
    pub fn stranded_mah(&self) -> MilliAmpHours {
        self.battery.state_of_charge() * self.battery.nominal_capacity_mah()
    }

    /// Snapshot the node's outcome for reporting.
    pub fn outcome(&self) -> NodeOutcome {
        NodeOutcome {
            death_time: self.death_time,
            delivered_mah: self.battery.delivered_mah(),
            stranded_mah: self.stranded_mah(),
            mean_current_ma: self.monitor.mean_current_ma(),
            energy: self.energy.clone(),
            dvs_transitions: self.power.transitions(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dles_battery::packs::itsy_pack_b;

    fn node() -> SimNode {
        let table = DvsTable::sa1100();
        SimNode::new(
            &BatterySpec::Kibam(itsy_pack_b().kibam),
            CurrentModel::itsy(),
            table.lowest(),
        )
    }

    #[test]
    fn transitions_settle_battery_and_monitor() {
        let table = DvsTable::sa1100();
        let mut n = node();
        let full = n.battery.state_of_charge();
        n.transition(SimTime::from_secs(10), Mode::Computation, table.highest());
        assert!(
            n.battery.state_of_charge() < full,
            "idle draw must discharge"
        );
        assert!(n.monitor.charge_mah().get() > 0.0);
        assert!(n.energy.energy_j(Mode::Idle).get() > 0.0);
        assert_eq!(n.energy.energy_j(Mode::Computation).get(), 0.0);
    }

    #[test]
    fn ttd_shrinks_with_higher_draw() {
        let table = DvsTable::sa1100();
        let mut a = node();
        let ttd_idle = a
            .transition(SimTime::from_secs(1), Mode::Idle, table.lowest())
            .unwrap();
        let mut b = node();
        let ttd_compute = b
            .transition(SimTime::from_secs(1), Mode::Computation, table.highest())
            .unwrap();
        assert!(ttd_compute < ttd_idle);
    }

    #[test]
    fn death_finalizes_state() {
        let table = DvsTable::sa1100();
        let mut n = node();
        let ttd = n
            .transition(SimTime::ZERO, Mode::Computation, table.highest())
            .unwrap();
        n.die(ttd);
        assert!(!n.alive);
        assert_eq!(n.death_time, Some(ttd));
        assert!(n.battery.is_exhausted());
        let o = n.outcome();
        assert!(o.delivered_mah.get() > 0.0);
        // KiBaM strands bound charge at a 130 mA death.
        assert!(o.stranded_mah.get() > 1.0);
    }

    #[test]
    fn policy_transition_picks_comm_level() {
        let table = DvsTable::sa1100();
        let mut n = node();
        n.transition_policy(
            SimTime::from_secs(1),
            Mode::Communication,
            table.highest(),
            DvsPolicy::DvsDuringIo,
            &table,
        );
        assert_eq!(n.power.level().freq_mhz.mhz(), 59.0);
        assert_eq!(n.power.mode(), Mode::Communication);
    }

    #[test]
    fn recorded_transitions_emit_power_segments() {
        use dles_sim::MemoryRecorder;
        let table = DvsTable::sa1100();
        let mut n = node();
        let mut rec = MemoryRecorder::new();
        n.transition_recorded(
            SimTime::from_secs(2),
            Mode::Computation,
            table.highest(),
            &mut rec,
            "node1",
        );
        n.finish_recorded(SimTime::from_secs(3), &mut rec, "node1");
        let records = rec.take_records();
        assert_eq!(records.len(), 2);
        // First segment: the 2 s of idle before the transition.
        assert_eq!(records[0].kind, "power_segment");
        assert_eq!(records[0].component, "node1");
        assert_eq!(records[0].str_field("mode"), Some("idle"));
        assert_eq!(records[0].u64_field("duration_us"), Some(2_000_000));
        // Second: the 1 s of computation closed by finish.
        assert_eq!(records[1].str_field("mode"), Some("computation"));
        assert_eq!(records[1].u64_field("duration_us"), Some(1_000_000));
    }

    #[test]
    fn battery_spec_builders() {
        assert!(
            BatterySpec::Ideal {
                capacity_mah: MilliAmpHours::new(5.0)
            }
            .build()
            .state_of_charge()
                == 1.0
        );
        let p = BatterySpec::Peukert {
            capacity_mah: MilliAmpHours::new(10.0),
            reference_ma: MilliAmps::new(5.0),
            exponent: 1.2,
        };
        assert_eq!(p.capacity_mah(), MilliAmpHours::new(10.0));
        assert!(p.build().time_to_exhaustion(MilliAmps::new(5.0)).is_some());
    }

    #[test]
    fn scaled_specs_shrink_capacity_only() {
        let spec = BatterySpec::Kibam(itsy_pack_b().kibam);
        let half = spec.scaled(0.5);
        assert!(
            (half.capacity_mah() - spec.capacity_mah() * 0.5)
                .abs()
                .get()
                < 1e-9
        );
        if let (BatterySpec::Kibam(a), BatterySpec::Kibam(b)) = (spec, half) {
            assert_eq!(a.c, b.c);
            assert_eq!(a.k, b.k);
        }
        let ideal = BatterySpec::Ideal {
            capacity_mah: MilliAmpHours::new(8.0),
        }
        .scaled(0.25);
        assert_eq!(ideal.capacity_mah(), MilliAmpHours::new(2.0));
    }
}
