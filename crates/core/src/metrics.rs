//! The paper's evaluation metrics (§4.5).
//!
//! * `T(N)` — absolute battery life of the N-node system;
//! * `F(N)` — frames completed before battery exhaustion;
//! * `T_norm(N) = T(N)/N` — normalized battery life ("the total lifetime
//!   of N batteries should be at least N times that of a single battery,
//!   or else they are less energy efficient");
//! * `R_norm(N) = T_norm(N)/T(1)` — normalized battery-life ratio against
//!   the baseline.

use dles_power::EnergyAccount;
use dles_sim::{CounterSet, SimTime};
use dles_units::{MilliAmpHours, MilliAmps, Seconds};

/// Per-node outcome of an experiment.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// When this node's battery died (`None` = still alive at the end).
    pub death_time: Option<SimTime>,
    /// Charge delivered by this node's battery.
    pub delivered_mah: MilliAmpHours,
    /// Charge stranded in the battery at the end (the paper's "loss of
    /// battery capacities").
    pub stranded_mah: MilliAmpHours,
    /// Time-weighted mean current.
    pub mean_current_ma: MilliAmps,
    /// Energy split by mode.
    pub energy: EnergyAccount,
    /// DVS transitions performed.
    pub dvs_transitions: u64,
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment label, e.g. `"2C"`.
    pub label: String,
    /// Number of nodes (and batteries), `N`.
    pub n_nodes: usize,
    /// `T(N)`: when the system stopped delivering results.
    pub lifetime: SimTime,
    /// `F(N)`: frames whose final results reached the destination.
    pub frames_completed: u64,
    /// Frames that missed the frame-delay constraint.
    pub deadline_misses: u64,
    /// Mean end-to-end frame latency (emission → result delivery).
    pub mean_frame_latency_s: Seconds,
    /// 95th-percentile end-to-end frame latency.
    pub p95_frame_latency_s: Seconds,
    /// Per-node details.
    pub nodes: Vec<NodeOutcome>,
    /// Monotonic event counters accumulated during the run (frames
    /// emitted/completed, transfers, timeouts, rotations, migrations, …).
    pub counters: CounterSet,
}

impl ExperimentResult {
    /// `T(N)` in hours.
    pub fn life_hours(&self) -> f64 {
        self.lifetime.as_hours_f64()
    }

    /// `T_norm(N) = T(N) / N` in hours.
    pub fn normalized_life_hours(&self) -> f64 {
        self.life_hours() / self.n_nodes as f64
    }

    /// `R_norm(N) = T_norm(N) / T(1)` against a baseline lifetime.
    pub fn normalized_ratio(&self, baseline: &ExperimentResult) -> f64 {
        self.normalized_life_hours() / baseline.life_hours()
    }

    /// Index and time of the first node death, if any node died.
    pub fn first_death(&self) -> Option<(usize, SimTime)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.death_time.map(|t| (i, t)))
            .min_by_key(|&(_, t)| t)
    }

    /// Total charge stranded across all batteries.
    pub fn total_stranded_mah(&self) -> MilliAmpHours {
        self.nodes.iter().map(|n| n.stranded_mah).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(label: &str, n: usize, hours: f64) -> ExperimentResult {
        ExperimentResult {
            label: label.into(),
            n_nodes: n,
            lifetime: SimTime::from_hours_f64(hours),
            frames_completed: 0,
            deadline_misses: 0,
            mean_frame_latency_s: Seconds::ZERO,
            p95_frame_latency_s: Seconds::ZERO,
            nodes: vec![],
            counters: CounterSet::new(),
        }
    }

    #[test]
    fn paper_metric_arithmetic() {
        // §6.4: T(2) = 14.1 h, T(1) = 6.13 h ⇒ T_norm = 7.05, R_norm = 115%.
        let baseline = result("1", 1, 6.13);
        let two = result("2", 2, 14.1);
        assert!((two.normalized_life_hours() - 7.05).abs() < 1e-9);
        assert!((two.normalized_ratio(&baseline) - 1.1501).abs() < 1e-3);
        assert!((baseline.normalized_ratio(&baseline) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn first_death_picks_earliest() {
        let mut r = result("x", 2, 10.0);
        r.nodes = vec![
            NodeOutcome {
                death_time: Some(SimTime::from_hours_f64(12.0)),
                delivered_mah: MilliAmpHours::ZERO,
                stranded_mah: MilliAmpHours::new(5.0),
                mean_current_ma: MilliAmps::ZERO,
                energy: EnergyAccount::new(),
                dvs_transitions: 0,
            },
            NodeOutcome {
                death_time: Some(SimTime::from_hours_f64(10.0)),
                delivered_mah: MilliAmpHours::ZERO,
                stranded_mah: MilliAmpHours::new(7.0),
                mean_current_ma: MilliAmps::ZERO,
                energy: EnergyAccount::new(),
                dvs_transitions: 0,
            },
        ];
        let (idx, t) = r.first_death().unwrap();
        assert_eq!(idx, 1);
        assert_eq!(t, SimTime::from_hours_f64(10.0));
        assert!((r.total_stranded_mah().get() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn no_deaths_is_none() {
        let r = result("y", 1, 5.0);
        assert!(r.first_death().is_none());
    }
}
