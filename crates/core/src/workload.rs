//! Per-node workload under the frame deadline.
//!
//! §3: each node performs RECV → PROC → SEND, fully serialized, and the
//! triple must complete within the frame delay `D`. §5.1 fixes
//! `D = 2.3 s` for all experiments: 1.1 s RECV + 1.1 s PROC + 0.1 s SEND
//! for the baseline single node.

use dles_atr::{AtrProfile, BlockRange};
use dles_net::SerialConfig;
use dles_power::{DvsTable, FreqLevel};
use dles_sim::SimTime;
use dles_units::{Hertz, Seconds};

/// The system-level constants shared by every experiment.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The frame delay (performance constraint), seconds.
    pub frame_delay: SimTime,
    /// The ATR performance profile (Fig. 6).
    pub profile: AtrProfile,
    /// Serial link timing (§4.3).
    pub serial: SerialConfig,
    /// The DVS operating-point table (Fig. 7 x-axis).
    pub dvs: DvsTable,
}

impl SystemConfig {
    /// The paper's configuration: D = 2.3 s, Fig. 6 profile, measured
    /// serial timing, SA-1100 DVS table.
    pub fn paper() -> Self {
        SystemConfig {
            frame_delay: SimTime::from_secs_f64(2.3),
            profile: AtrProfile::paper(),
            serial: SerialConfig::paper(),
            dvs: DvsTable::sa1100(),
        }
    }
}

/// One node's share of the algorithm, with derived per-frame timing.
#[derive(Debug, Clone, Copy)]
pub struct NodeShare {
    /// The contiguous blocks this node runs.
    pub range: BlockRange,
    /// Bytes received per frame.
    pub recv_bytes: u64,
    /// Bytes sent per frame.
    pub send_bytes: u64,
    /// Computation latency at the peak clock.
    pub proc_peak_secs: Seconds,
}

impl NodeShare {
    /// Derive a share from the profile.
    pub fn from_profile(profile: &AtrProfile, range: BlockRange) -> Self {
        NodeShare {
            range,
            recv_bytes: profile.recv_bytes(range),
            send_bytes: profile.send_bytes(range),
            proc_peak_secs: Seconds::new(profile.peak_secs(range)),
        }
    }

    /// Deterministic RECV latency under `serial`.
    pub fn recv_time(&self, serial: &SerialConfig) -> SimTime {
        serial.transfer_time(self.recv_bytes, None)
    }

    /// Deterministic SEND latency under `serial`.
    pub fn send_time(&self, serial: &SerialConfig) -> SimTime {
        serial.transfer_time(self.send_bytes, None)
    }

    /// PROC latency at DVS level `at` (linear scaling, §4.3).
    pub fn proc_time(&self, dvs: &DvsTable, at: FreqLevel) -> SimTime {
        dvs.scale_from_peak(SimTime::from_secs_f64(self.proc_peak_secs.get()), at)
    }

    /// Slack available for computation within the deadline, after I/O and
    /// `ack_overhead` (extra control transactions per frame) are paid.
    pub fn proc_slack(&self, sys: &SystemConfig, ack_overhead: SimTime) -> SimTime {
        sys.frame_delay
            .saturating_sub(self.recv_time(&sys.serial))
            .saturating_sub(self.send_time(&sys.serial))
            .saturating_sub(ack_overhead)
    }

    /// The minimum clock frequency that fits PROC into the slack;
    /// infinite when there is no slack at all.
    pub fn required_mhz(&self, sys: &SystemConfig, ack_overhead: SimTime) -> Hertz {
        let slack = self.proc_slack(sys, ack_overhead).as_secs_f64();
        if slack <= 0.0 {
            return Hertz::from_mhz(f64::INFINITY);
        }
        sys.dvs.highest().freq_mhz * self.proc_peak_secs.get() / slack
    }

    /// The slowest DVS level that meets the deadline, if any.
    pub fn min_feasible_level(
        &self,
        sys: &SystemConfig,
        ack_overhead: SimTime,
    ) -> Option<FreqLevel> {
        let required = self.required_mhz(sys, ack_overhead);
        if !required.is_finite() {
            return None;
        }
        sys.dvs.min_level_at_least(required)
    }

    /// Total communication payload per frame, bytes (Fig. 8 column).
    pub fn comm_payload_bytes(&self) -> u64 {
        self.recv_bytes + self.send_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemConfig {
        SystemConfig::paper()
    }

    #[test]
    fn baseline_share_reproduces_section_5_1() {
        let sys = sys();
        let share = NodeShare::from_profile(&sys.profile, BlockRange::full());
        // §5.1: 1.1 s to receive, 1.1 s PROC, 0.1 s to send, D = 2.3 s.
        assert!((share.recv_time(&sys.serial).as_secs_f64() - 1.1).abs() < 0.05);
        assert!((share.proc_peak_secs.get() - 1.1).abs() < 1e-9);
        assert!((share.send_time(&sys.serial).as_secs_f64() - 0.1).abs() < 0.02);
        // Exactly fits at the peak level.
        let level = share.min_feasible_level(&sys, SimTime::ZERO);
        assert_eq!(level.expect("feasible").freq_mhz.mhz(), 206.4);
    }

    #[test]
    fn scheme1_levels_match_fig8() {
        let sys = sys();
        let node1 = NodeShare::from_profile(&sys.profile, BlockRange::new(0, 1));
        let node2 = NodeShare::from_profile(&sys.profile, BlockRange::new(1, 4));
        // Fig. 8 row 1: 59 MHz and 103.2 MHz.
        assert_eq!(
            node1
                .min_feasible_level(&sys, SimTime::ZERO)
                .unwrap()
                .freq_mhz
                .mhz(),
            59.0
        );
        assert_eq!(
            node2
                .min_feasible_level(&sys, SimTime::ZERO)
                .unwrap()
                .freq_mhz
                .mhz(),
            103.2
        );
    }

    #[test]
    fn scheme3_node1_is_infeasible_at_about_380mhz() {
        let sys = sys();
        let node1 = NodeShare::from_profile(&sys.profile, BlockRange::new(0, 3));
        let required = node1.required_mhz(&sys, SimTime::ZERO).mhz();
        // Fig. 8: "> 206.4" — the paper's text says 380 MHz.
        assert!(required > 206.4);
        assert!((required - 380.0).abs() < 25.0, "required {required}");
        assert!(node1.min_feasible_level(&sys, SimTime::ZERO).is_none());
    }

    #[test]
    fn payloads_match_fig8() {
        let sys = sys();
        let kb = |b: u64| b as f64 / 1024.0;
        let n1 = NodeShare::from_profile(&sys.profile, BlockRange::new(0, 1));
        let n2 = NodeShare::from_profile(&sys.profile, BlockRange::new(1, 4));
        assert!((kb(n1.comm_payload_bytes()) - 10.7).abs() < 0.05);
        assert!((kb(n2.comm_payload_bytes()) - 0.7).abs() < 0.05);
    }

    #[test]
    fn ack_overhead_raises_required_frequency() {
        let sys = sys();
        let share = NodeShare::from_profile(&sys.profile, BlockRange::new(1, 4));
        let without = share.required_mhz(&sys, SimTime::ZERO);
        let with = share.required_mhz(&sys, SimTime::from_millis(300));
        assert!(with > without);
    }

    #[test]
    fn zero_slack_is_infeasible() {
        let sys = sys();
        let share = NodeShare::from_profile(&sys.profile, BlockRange::full());
        assert_eq!(
            share.required_mhz(&sys, SimTime::from_secs(3)).mhz(),
            f64::INFINITY
        );
        assert!(share
            .min_feasible_level(&sys, SimTime::from_secs(3))
            .is_none());
    }
}
