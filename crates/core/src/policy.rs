//! Scheduling policies: which operating point a node uses in each mode,
//! and — for the adaptive variants — when the ring rotates.
//!
//! §5.2: with the workload tightly constrained there is little room for
//! DVS on computation, but the long serial transactions can run at the
//! slowest level — "I/O can operate at a significantly low-power level at
//! the slowest frequency of 59 MHz" — without lengthening them, because
//! communication latency is frequency-independent (§6.3).
//!
//! The paper's rotation (§5.5/§6.7) uses a *fixed* period of 100 frames.
//! [`SchedulingPolicy`] generalizes that: adaptive variants observe the
//! per-node state-of-charge estimates
//! ([`crate::node::SimNode::soc_estimate`]) and decide online when the
//! next rotation wave should launch. The `Static` variant defers entirely
//! to the configured [`DvsPolicy`] and
//! [`crate::rotation::RotationConfig`], reproducing the paper's behaviour
//! byte-for-byte.

use dles_power::{DvsTable, FreqLevel, Mode};
use dles_units::StateOfCharge;

/// A node's DVS policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DvsPolicy {
    /// Run every mode at the node's base level (the baseline behaviour).
    FixedLevel,
    /// Drop to the table's lowest level during communication and idle
    /// periods; compute at the base level (§5.2, experiments 1A/2A/2C).
    DvsDuringIo,
}

impl DvsPolicy {
    /// The level used for `mode` given the node's base level.
    pub fn level_for(self, mode: Mode, base: FreqLevel, table: &DvsTable) -> FreqLevel {
        match (self, mode) {
            (DvsPolicy::FixedLevel, _) => base,
            (DvsPolicy::DvsDuringIo, Mode::Computation) => base,
            (DvsPolicy::DvsDuringIo, Mode::Communication | Mode::Idle) => table.lowest(),
        }
    }
}

/// A battery-state-aware scheduling policy layered over the fixed
/// [`DvsPolicy`] + [`crate::rotation::RotationConfig`] pair.
///
/// All decisions are pure functions of the simulated event history (the
/// SoC estimates are settled model state, never wall-clock or RNG), so a
/// policy cannot break the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulingPolicy {
    /// No adaptation: the configured `DvsPolicy` and rotation period apply
    /// verbatim. This is the paper's behaviour (1A/2A/2C, rotation-100)
    /// and must stay byte-identical to the pre-policy-engine engine.
    Static,
    /// Rotate as soon as the max–min spread of the alive nodes' SoC
    /// estimates exceeds `threshold_soc` (and at least `min_gap_frames`
    /// frames have elapsed since the last wave). Communication and idle
    /// run at the lowest DVS level, as in experiment 2C.
    RotateOnSocSkew {
        /// SoC spread that triggers a wave. The tail node drains ~3e-5
        /// SoC per frame faster than the head under EXP-2C currents, so
        /// 1e-4 rotates every few frames.
        threshold_soc: StateOfCharge,
        /// Refractory gap between waves, in frames (≥ 1).
        min_gap_frames: u64,
    },
    /// Keep a rotation period, but halve it while the observed SoC skew at
    /// rotation time exceeds `target_skew_soc` and double it while skew
    /// stays under half the target — a feedback loop converging on the
    /// cheapest period that still holds the ring balanced.
    AdaptivePeriod {
        /// Skew the controller steers toward at each wave.
        target_skew_soc: StateOfCharge,
        /// Floor for the adapted period, in frames.
        min_period_frames: u64,
        /// Ceiling for the adapted period, in frames.
        max_period_frames: u64,
    },
}

impl SchedulingPolicy {
    /// CLI spellings accepted by [`SchedulingPolicy::by_name`].
    pub const NAMES: [&'static str; 3] = ["static", "soc-skew", "adaptive"];

    /// Resolve a CLI name to a policy with its default parameters.
    pub fn by_name(name: &str) -> Option<SchedulingPolicy> {
        match name {
            "static" => Some(SchedulingPolicy::Static),
            "soc-skew" => Some(SchedulingPolicy::RotateOnSocSkew {
                threshold_soc: StateOfCharge::new(1e-4),
                min_gap_frames: 1,
            }),
            "adaptive" => Some(SchedulingPolicy::AdaptivePeriod {
                target_skew_soc: StateOfCharge::new(1e-4),
                min_period_frames: 8,
                max_period_frames: 2000,
            }),
            _ => None,
        }
    }

    /// The CLI spelling of this policy (its `by_name` inverse, ignoring
    /// parameter overrides).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulingPolicy::Static => "static",
            SchedulingPolicy::RotateOnSocSkew { .. } => "soc-skew",
            SchedulingPolicy::AdaptivePeriod { .. } => "adaptive",
        }
    }

    /// `true` for the paper-exact variant that must not perturb goldens.
    pub fn is_static(&self) -> bool {
        matches!(self, SchedulingPolicy::Static)
    }

    /// The per-mode DVS rule this policy applies. `Static` defers to the
    /// experiment's configured rule; the adaptive variants always drop
    /// communication/idle to the lowest level (there is no scenario in
    /// which holding I/O at a high level helps lifetime — §6.3).
    pub fn dvs_policy(&self, configured: DvsPolicy) -> DvsPolicy {
        match self {
            SchedulingPolicy::Static => configured,
            _ => DvsPolicy::DvsDuringIo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_level_never_switches() {
        let t = DvsTable::sa1100();
        let base = t.by_freq(dles_units::Hertz::from_mhz(103.2)).unwrap();
        for mode in Mode::ALL {
            assert_eq!(
                DvsPolicy::FixedLevel
                    .level_for(mode, base, &t)
                    .freq_mhz
                    .mhz(),
                103.2
            );
        }
    }

    #[test]
    fn dvs_during_io_drops_comm_and_idle_to_59() {
        let t = DvsTable::sa1100();
        let base = t.highest();
        let p = DvsPolicy::DvsDuringIo;
        assert_eq!(
            p.level_for(Mode::Computation, base, &t).freq_mhz.mhz(),
            206.4
        );
        assert_eq!(
            p.level_for(Mode::Communication, base, &t).freq_mhz.mhz(),
            59.0
        );
        assert_eq!(p.level_for(Mode::Idle, base, &t).freq_mhz.mhz(), 59.0);
    }

    #[test]
    fn by_name_round_trips_every_cli_spelling() {
        for name in SchedulingPolicy::NAMES {
            let p = SchedulingPolicy::by_name(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert_eq!(SchedulingPolicy::by_name("bogus"), None);
        assert!(SchedulingPolicy::by_name("static").unwrap().is_static());
        assert!(!SchedulingPolicy::by_name("soc-skew").unwrap().is_static());
    }

    #[test]
    fn static_defers_dvs_while_adaptive_forces_dvs_during_io() {
        let s = SchedulingPolicy::Static;
        assert_eq!(s.dvs_policy(DvsPolicy::FixedLevel), DvsPolicy::FixedLevel);
        assert_eq!(s.dvs_policy(DvsPolicy::DvsDuringIo), DvsPolicy::DvsDuringIo);
        for name in ["soc-skew", "adaptive"] {
            let p = SchedulingPolicy::by_name(name).unwrap();
            assert_eq!(p.dvs_policy(DvsPolicy::FixedLevel), DvsPolicy::DvsDuringIo);
        }
    }

    #[test]
    fn dvs_during_io_is_identity_at_the_lowest_base() {
        // Experiment 2A observation: Node1 already runs at 59 MHz, so the
        // policy cannot reduce anything further.
        let t = DvsTable::sa1100();
        let base = t.lowest();
        let p = DvsPolicy::DvsDuringIo;
        for mode in Mode::ALL {
            assert_eq!(p.level_for(mode, base, &t).freq_mhz.mhz(), 59.0);
        }
    }
}
