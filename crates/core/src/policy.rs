//! DVS policies: which operating point a node uses in each mode.
//!
//! §5.2: with the workload tightly constrained there is little room for
//! DVS on computation, but the long serial transactions can run at the
//! slowest level — "I/O can operate at a significantly low-power level at
//! the slowest frequency of 59 MHz" — without lengthening them, because
//! communication latency is frequency-independent (§6.3).

use dles_power::{DvsTable, FreqLevel, Mode};

/// A node's DVS policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DvsPolicy {
    /// Run every mode at the node's base level (the baseline behaviour).
    FixedLevel,
    /// Drop to the table's lowest level during communication and idle
    /// periods; compute at the base level (§5.2, experiments 1A/2A/2C).
    DvsDuringIo,
}

impl DvsPolicy {
    /// The level used for `mode` given the node's base level.
    pub fn level_for(self, mode: Mode, base: FreqLevel, table: &DvsTable) -> FreqLevel {
        match (self, mode) {
            (DvsPolicy::FixedLevel, _) => base,
            (DvsPolicy::DvsDuringIo, Mode::Computation) => base,
            (DvsPolicy::DvsDuringIo, Mode::Communication | Mode::Idle) => table.lowest(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_level_never_switches() {
        let t = DvsTable::sa1100();
        let base = t.by_freq(dles_units::Hertz::from_mhz(103.2)).unwrap();
        for mode in Mode::ALL {
            assert_eq!(
                DvsPolicy::FixedLevel
                    .level_for(mode, base, &t)
                    .freq_mhz
                    .mhz(),
                103.2
            );
        }
    }

    #[test]
    fn dvs_during_io_drops_comm_and_idle_to_59() {
        let t = DvsTable::sa1100();
        let base = t.highest();
        let p = DvsPolicy::DvsDuringIo;
        assert_eq!(
            p.level_for(Mode::Computation, base, &t).freq_mhz.mhz(),
            206.4
        );
        assert_eq!(
            p.level_for(Mode::Communication, base, &t).freq_mhz.mhz(),
            59.0
        );
        assert_eq!(p.level_for(Mode::Idle, base, &t).freq_mhz.mhz(), 59.0);
    }

    #[test]
    fn dvs_during_io_is_identity_at_the_lowest_base() {
        // Experiment 2A observation: Node1 already runs at 59 MHz, so the
        // policy cannot reduce anything further.
        let t = DvsTable::sa1100();
        let base = t.lowest();
        let p = DvsPolicy::DvsDuringIo;
        for mode in Mode::ALL {
            assert_eq!(p.level_for(mode, base, &t).freq_mhz.mhz(), 59.0);
        }
    }
}
