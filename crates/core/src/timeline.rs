//! Timing-vs-power timelines: the Figs. 2, 3 and 9 of the paper,
//! reconstructed from a traced simulation run.
//!
//! The renderer draws, per node, one character column per time quantum:
//!
//! ```text
//! R  receiving        (communication mode, inbound)
//! S  sending          (communication mode, outbound)
//! a  ack transaction  (recovery protocol control traffic)
//! P  computing        (PROC at the share's DVS level)
//! .  idle
//! ```
//!
//! so the baseline's frame (Fig. 2) renders as `RRR…PPP…S.` repeating
//! every `D`, the two-node pipeline (Fig. 3) shows the stages overlapping,
//! and the rotation transition (Fig. 9) shows the doubled PROC and the
//! eliminated SEND/RECV pair.

use crate::pipeline::{build_engine_with, PipelineConfig};
use dles_sim::{MemoryRecorder, SimTime, TraceRecord};

/// One contiguous activity interval on one node.
#[derive(Debug, Clone)]
pub struct Span {
    pub node: usize,
    pub start: SimTime,
    pub end: SimTime,
    /// Activity code: 'R', 'S', 'a', 'P' or '.'.
    pub code: char,
    /// Human-readable description of the event that opened the span.
    pub label: String,
}

/// A captured multi-node activity timeline.
#[derive(Debug, Clone)]
pub struct Timeline {
    pub n_nodes: usize,
    pub horizon: SimTime,
    pub spans: Vec<Span>,
}

/// Run `cfg` for `frames` frame slots with a memory recorder attached and
/// extract the per-node activity spans from the structured event stream.
pub fn capture_timeline(mut cfg: PipelineConfig, frames: u64) -> Timeline {
    assert!(frames > 0, "need at least one frame");
    let horizon = SimTime::from_micros(frames * cfg.sys.frame_delay.as_micros());
    cfg.horizon = horizon;
    let n_nodes = cfg.n_nodes();
    let mut engine = build_engine_with(cfg, Box::new(MemoryRecorder::new()));
    engine.run_until(horizon);
    let records = engine.recorder_mut().take_records();

    let mut spans = Vec::new();
    for node in 0..n_nodes {
        let component = format!("node{}", node + 1);
        // Records in time order; at the same instant the more specific
        // event wins (the `io` direction markers follow the generic
        // `state_transition` to communication mode).
        let mut current: Option<(SimTime, char, String)> = None;
        for rec in records.iter().filter(|r| r.component == component) {
            let Some((code, label)) = classify(rec) else {
                continue;
            };
            match current.take() {
                Some((start, prev_code, prev_label)) => {
                    if rec.time > start {
                        spans.push(Span {
                            node,
                            start,
                            end: rec.time,
                            code: prev_code,
                            label: prev_label,
                        });
                        current = Some((rec.time, code, label));
                    } else {
                        // Same instant: the more specific event wins.
                        let (c, l) = if specificity(code) >= specificity(prev_code) {
                            (code, label)
                        } else {
                            (prev_code, prev_label)
                        };
                        current = Some((start, c, l));
                    }
                }
                None => current = Some((rec.time, code, label)),
            }
        }
        if let Some((start, code, label)) = current {
            if horizon > start {
                spans.push(Span {
                    node,
                    start,
                    end: horizon,
                    code,
                    label,
                });
            }
        }
    }
    spans.sort_by_key(|s| (s.node, s.start));
    Timeline {
        n_nodes,
        horizon,
        spans,
    }
}

/// Map a structured record to an activity code and label; records that do
/// not open an activity span (power segments, deaths, …) return `None`.
fn classify(rec: &TraceRecord) -> Option<(char, String)> {
    match rec.kind {
        "state_transition" => {
            let mode = rec.str_field("mode").unwrap_or("");
            let freq = rec
                .field("freq_mhz")
                .map(|v| format!(" @{v} MHz"))
                .unwrap_or_default();
            let code = match mode {
                "computation" => 'P',
                // Refined by a following `io` marker at the same instant.
                "communication" => 'c',
                _ => '.',
            };
            Some((code, format!("{mode}{freq}")))
        }
        "io" => {
            let dir = rec.str_field("dir").unwrap_or("");
            let payload = rec.str_field("payload").unwrap_or("");
            let code = match (dir, payload) {
                (_, "ack") => 'a',
                ("send", _) => 'S',
                _ => 'R',
            };
            Some((code, format!("{dir} {payload}")))
        }
        _ => None,
    }
}

/// Direction markers beat generic mode transitions at the same instant.
fn specificity(code: char) -> u8 {
    match code {
        '.' => 0,
        'c' => 1,
        _ => 2,
    }
}

/// Render the timeline as one text row per node, `quantum` per character.
pub fn render_timeline(timeline: &Timeline, quantum: SimTime) -> String {
    assert!(quantum > SimTime::ZERO, "zero quantum");
    let cols = (timeline.horizon.as_micros() / quantum.as_micros()) as usize;
    let mut rows = vec![vec!['.'; cols]; timeline.n_nodes];
    for span in &timeline.spans {
        if span.code == '.' {
            continue;
        }
        let code = if span.code == 'c' { 'S' } else { span.code };
        let c0 = (span.start.as_micros() / quantum.as_micros()) as usize;
        let c1 = (span.end.as_micros().div_ceil(quantum.as_micros())) as usize;
        for cell in &mut rows[span.node][c0..c1.min(cols)] {
            *cell = code;
        }
    }
    let mut out = String::new();
    // Time ruler: a tick every frame delay would need cfg; mark every 10
    // columns instead.
    out.push_str("       ");
    for col in 0..cols {
        out.push(if col % 10 == 0 { '|' } else { ' ' });
    }
    out.push('\n');
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!("node{}  ", i + 1));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("       (R recv, S send, P compute, a ack, . idle)\n");
    out
}

/// Fraction of the horizon each node spent in each activity, for tests
/// and reports: returns per-node `(recv, send, proc, ack, idle)` seconds.
pub fn activity_breakdown(timeline: &Timeline) -> Vec<[f64; 5]> {
    let mut out = vec![[0.0; 5]; timeline.n_nodes];
    for span in &timeline.spans {
        let secs = (span.end - span.start).as_secs_f64();
        let slot = match span.code {
            'R' => 0,
            'S' | 'c' => 1,
            'P' => 2,
            'a' => 3,
            _ => 4,
        };
        out[span.node][slot] += secs;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;

    #[test]
    fn baseline_timeline_matches_fig2_shape() {
        // Fig. 2: RECV, PROC, SEND strictly serialized within each D.
        let tl = capture_timeline(Experiment::Exp1.config(), 4);
        assert_eq!(tl.n_nodes, 1);
        let breakdown = activity_breakdown(&tl);
        let [recv, send, proc, ack, _idle] = breakdown[0];
        // Over 4 frames: ~4×1.109 recv, ~4×1.1 proc, ~4×0.085 send.
        assert!((recv - 4.0 * 1.109).abs() < 0.4, "recv {recv}");
        assert!((proc - 4.0 * 1.1).abs() < 0.4, "proc {proc}");
        assert!(send > 0.2 && send < 0.6, "send {send}");
        assert_eq!(ack, 0.0);
    }

    #[test]
    fn two_node_timeline_matches_fig3_shape() {
        // Fig. 3: Node1 passes intermediate results to Node2; both stages
        // active every frame.
        let tl = capture_timeline(Experiment::Exp2.config(), 6);
        assert_eq!(tl.n_nodes, 2);
        let b = activity_breakdown(&tl);
        // Node1: heavy recv (the 10.1 KB frames), light proc.
        assert!(b[0][0] > 4.0, "node1 recv {}", b[0][0]);
        assert!(b[0][2] < b[1][2], "node1 proc must be lighter than node2");
        // Node2: dominated by PROC.
        assert!(b[1][2] > 6.0, "node2 proc {}", b[1][2]);
    }

    #[test]
    fn recovery_timeline_shows_acks() {
        let tl = capture_timeline(Experiment::Exp2B.config(), 6);
        let b = activity_breakdown(&tl);
        let total_ack: f64 = b.iter().map(|r| r[3]).sum();
        assert!(total_ack > 0.5, "ack time {total_ack}");
    }

    #[test]
    fn rotation_timeline_shows_the_doubling() {
        // Rotate every 2 frames; capture 6 frames: the doubling node runs
        // two PROC bursts back to back (Fig. 9's shape).
        let mut cfg = Experiment::Exp2C.config();
        cfg.rotation = Some(crate::rotation::RotationConfig::every(2));
        let tl = capture_timeline(cfg, 6);
        let b = activity_breakdown(&tl);
        // With rotation both nodes compute a comparable amount even over a
        // short window.
        let p0 = b[0][2];
        let p1 = b[1][2];
        assert!(p0 > 1.0 && p1 > 1.0, "proc {p0} / {p1}");
    }

    #[test]
    fn render_produces_one_row_per_node() {
        let tl = capture_timeline(Experiment::Exp2.config(), 3);
        let text = render_timeline(&tl, SimTime::from_millis(100));
        let rows: Vec<&str> = text.lines().collect();
        assert!(rows.iter().any(|r| r.starts_with("node1")));
        assert!(rows.iter().any(|r| r.starts_with("node2")));
        let node1_row = rows.iter().find(|r| r.starts_with("node1")).unwrap();
        assert!(node1_row.contains('R') && node1_row.contains('P'));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let _ = capture_timeline(Experiment::Exp1.config(), 0);
    }
}
