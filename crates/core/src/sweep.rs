//! Deterministic parallel sweep engine with a keyed simulation cache.
//!
//! Every headline result of the paper is a *sweep* — lifetime across the
//! six §6 configurations, the Fig. 8 partition schemes, Fig. 10 scaling
//! over 1..N nodes — and the sweeps overlap: the scaling study, the
//! lifetime-based partition ranking and the Fig. 8 comparison all
//! re-simulate byte-identical configurations. This module generalizes the
//! Monte Carlo scoped-thread work-pull (shared index, index-ordered
//! result slots; see [`dles_sim::par`]) to arbitrary config fan-outs and
//! adds a keyed result cache so a configuration is simulated **at most
//! once per engine**, within and across sweeps.
//!
//! Determinism contract:
//!
//! * [`SimKey`] is a canonical 128-bit hash of the *semantic* pipeline
//!   configuration — label excluded, seeds and horizon included — so two
//!   jobs that would produce identical simulations share a key.
//! * [`SweepEngine::run`] returns results in job order, byte-identical
//!   for any worker count and any cache state (a hit only skips work; the
//!   returned rows are indistinguishable from a cold run).
//! * The cache is a `BTreeMap` behind a mutex (D003: no hash-ordered
//!   iteration can leak into output), and the hit/miss counters are a
//!   pure function of the job list and prior cache contents — never of
//!   scheduling.

use crate::metrics::ExperimentResult;
use crate::pipeline::{run_pipeline, PipelineConfig};
use crate::workload::SystemConfig;
use dles_sim::{par_map_slice, CounterSet};
use dles_units::{Hertz, Hours};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Canonical identity of one simulation: a 128-bit FNV-1a hash of the
/// pipeline configuration's canonical field-by-field encoding with the
/// display label excluded (the label names a run, it does not change
/// physics), so the key covers system constants, shares, levels, DVS +
/// scheduling policy, battery, rotation/recovery, fault plan, jitter seed
/// and horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimKey {
    hi: u64,
    lo: u64,
}

/// The canonical semantic encoding behind [`SimKey`]. The exhaustive
/// destructuring is the point: adding a `PipelineConfig` field without
/// deciding whether it is physics refuses to compile here, instead of
/// silently minting colliding keys (the regression that motivated this —
/// a policy field invisible to the key let two different-policy jobs
/// share one cached `ExperimentResult`).
fn canonical_encoding(cfg: &PipelineConfig) -> String {
    let PipelineConfig {
        label: _,
        sys,
        shares,
        levels,
        policy,
        scheduling,
        battery,
        current_model,
        rotation,
        recovery,
        io_enabled,
        jitter_seed,
        faults,
        battery_scales,
        horizon,
    } = cfg;
    format!(
        "sys={sys:?};shares={shares:?};levels={levels:?};policy={policy:?};\
         scheduling={scheduling:?};battery={battery:?};current={current_model:?};\
         rotation={rotation:?};recovery={recovery:?};io={io_enabled:?};\
         jitter={jitter_seed:?};faults={faults:?};scales={battery_scales:?};\
         horizon={horizon:?}"
    )
}

impl SimKey {
    /// Key of a pipeline configuration.
    pub fn of(cfg: &PipelineConfig) -> SimKey {
        Self::of_bytes(canonical_encoding(cfg).as_bytes())
    }

    /// FNV-1a 128 over raw bytes (split into two u64 halves for `Ord`).
    fn of_bytes(bytes: &[u8]) -> SimKey {
        const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
        const PRIME: u128 = 0x0000000001000000000000000000013b;
        let mut h = OFFSET;
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(PRIME);
        }
        SimKey {
            hi: (h >> 64) as u64,
            lo: h as u64,
        }
    }
}

/// The sweep engine: a shared, thread-safe simulation cache plus the
/// deterministic fan-out runner. One engine per process (or per CLI
/// invocation) dedupes identical simulations across every sweep routed
/// through it.
#[derive(Debug, Default)]
pub struct SweepEngine {
    cache: Mutex<BTreeMap<SimKey, ExperimentResult>>,
    counters: Mutex<CounterSet>,
}

impl SweepEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Run every job, in parallel, reusing cached results where the key
    /// matches. Returns one result per job, in job order; `threads` = 0
    /// means one worker per core and never affects the output.
    ///
    /// Counters accumulated per call (observable via [`Self::counters`]):
    /// `sweep_jobs`, `sweep_cache_hits` (key already cached before this
    /// call), `sweep_dedup_hits` (key repeated within this call),
    /// `sweep_sims_run` (simulations actually executed).
    // lint: allow(D009) — cache invariant: every key was either already cached or inserted from `fresh` directly above the lookup, so the expect cannot fire
    pub fn run(&self, jobs: &[PipelineConfig], threads: usize) -> Vec<ExperimentResult> {
        let keys: Vec<SimKey> = jobs.iter().map(SimKey::of).collect();
        // Decide hits/misses/dedups under the lock, *before* any parallel
        // work, so the counters are a pure function of jobs × cache state.
        let (hits, dedups, mut work): (u64, u64, Vec<(SimKey, &PipelineConfig)>) = {
            let cache = self
                .cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut work: Vec<(SimKey, &PipelineConfig)> = Vec::new();
            let (mut hits, mut dedups) = (0u64, 0u64);
            for (key, job) in keys.iter().zip(jobs) {
                if cache.contains_key(key) {
                    hits += 1;
                } else if work.iter().any(|(k, _)| k == key) {
                    dedups += 1;
                } else {
                    work.push((*key, job));
                }
            }
            (hits, dedups, work)
        };
        {
            let mut c = self
                .counters
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            c.add("sweep_jobs", jobs.len() as u64);
            c.add("sweep_cache_hits", hits);
            c.add("sweep_dedup_hits", dedups);
            c.add("sweep_sims_run", work.len() as u64);
        }
        // Start the heaviest simulations first so the work-pull packs
        // them tightly: sort by descending node count, stable on first
        // appearance. Purely a scheduling hint — slots, cache and output
        // order are all keyed, so the result cannot observe it.
        let mut order: Vec<usize> = (0..work.len()).collect();
        order.sort_by_key(|&i| (usize::MAX - work[i].1.n_nodes(), i));
        work = order.into_iter().map(|i| work[i]).collect();
        // lint: allow(D015) — run_pipeline consumes an owned config: this is the one ownership-transfer clone per *executed* simulation, after cache/dedup filtering
        let fresh = par_map_slice(&work, threads, |_, (_, cfg)| run_pipeline((*cfg).clone()));
        let mut cache = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for ((key, _), result) in work.iter().zip(fresh) {
            cache.insert(*key, result);
        }
        keys.iter()
            .zip(jobs)
            .map(|(key, job)| {
                let mut r = cache
                    .get(key)
                    .expect("every job key simulated or cached")
                    .clone();
                r.label = job.label.clone();
                r
            })
            .collect()
    }

    /// Snapshot of the accumulated sweep counters.
    pub fn counters(&self) -> CounterSet {
        self.counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Number of distinct simulations currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

/// One row of the Fig. 8 lifetime sweep: a partition scheme simulated to
/// battery exhaustion (or marked infeasible — the scheme cannot meet the
/// frame deadline at any DVS level, so there is nothing to simulate).
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Scheme number in the figure's order (1-based).
    pub scheme: usize,
    pub feasible: bool,
    /// Chosen DVS levels (empty when infeasible).
    pub levels_mhz: Vec<Hertz>,
    /// Exact per-node required clock before rounding up to a level.
    pub required_mhz: Vec<Hertz>,
    /// Simulated lifetime (zero when infeasible).
    pub lifetime_h: Hours,
    pub frames_completed: u64,
    pub deadline_misses: u64,
}

/// Simulate every Fig. 8 partition scheme to battery exhaustion through
/// the sweep engine, in the figure's order. Infeasible schemes produce an
/// explicit marker row instead of being dropped, so the table always has
/// one row per scheme.
pub fn fig8_lifetime_sweep(
    engine: &SweepEngine,
    sys: &SystemConfig,
    threads: usize,
) -> Vec<Fig8Row> {
    use crate::experiment::Experiment;
    use crate::partition::fig8_schemes;
    let schemes = fig8_schemes(sys);
    let mut jobs: Vec<PipelineConfig> = Vec::new();
    let mut job_of_scheme: Vec<Option<usize>> = Vec::new();
    for (i, scheme) in schemes.iter().enumerate() {
        if scheme.is_feasible() {
            let mut cfg = Experiment::Exp2.config();
            cfg.label = format!("fig8 scheme {}", i + 1);
            cfg.sys = sys.clone();
            cfg.shares = scheme.shares.clone();
            cfg.levels = scheme.levels.iter().map(|l| l.expect("feasible")).collect();
            job_of_scheme.push(Some(jobs.len()));
            jobs.push(cfg);
        } else {
            job_of_scheme.push(None);
        }
    }
    let results = engine.run(&jobs, threads);
    schemes
        .iter()
        .enumerate()
        .map(|(i, scheme)| match job_of_scheme[i] {
            Some(j) => {
                let r = &results[j];
                Fig8Row {
                    scheme: i + 1,
                    feasible: true,
                    levels_mhz: scheme
                        .levels
                        .iter()
                        .map(|l| l.expect("feasible").freq_mhz)
                        .collect(),
                    required_mhz: scheme.required_mhz.clone(),
                    lifetime_h: Hours::new(r.life_hours()),
                    frames_completed: r.frames_completed,
                    deadline_misses: r.deadline_misses,
                }
            }
            None => Fig8Row {
                scheme: i + 1,
                feasible: false,
                levels_mhz: Vec::new(),
                required_mhz: scheme.required_mhz.clone(),
                lifetime_h: Hours::ZERO,
                frames_completed: 0,
                deadline_misses: 0,
            },
        })
        .collect()
}

/// Render the Fig. 8 lifetime sweep as a text table.
pub fn render_fig8_sweep(rows: &[Fig8Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 8 schemes ranked by simulated lifetime\n\
         {:>6} {:<20} {:<20} {:>8} {:>8} {:>7}",
        "scheme", "levels (MHz)", "required (MHz)", "T (h)", "frames", "misses"
    );
    let _ = writeln!(out, "{}", "-".repeat(76));
    for r in rows {
        let required: Vec<String> = r
            .required_mhz
            .iter()
            .map(|f| format!("{:.1}", f.mhz()))
            .collect();
        if r.feasible {
            let levels: Vec<String> = r
                .levels_mhz
                .iter()
                .map(|f| format!("{:.1}", f.mhz()))
                .collect();
            let _ = writeln!(
                out,
                "{:>6} {:<20} {:<20} {:>8.2} {:>8} {:>7}",
                r.scheme,
                levels.join("/"),
                required.join("/"),
                r.lifetime_h.get(),
                r.frames_completed,
                r.deadline_misses
            );
        } else {
            let _ = writeln!(
                out,
                "{:>6} {:<20} {:<20} {:>8} {:>8} {:>7}",
                r.scheme,
                "infeasible",
                required.join("/"),
                "-",
                "-",
                "-"
            );
        }
    }
    out
}

/// One row of the scheduling-policy comparison: a policy run on the
/// paper's 2C rotation workload to battery exhaustion.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// CLI name of the policy (`static`, `soc-skew`, `adaptive`).
    pub name: &'static str,
    pub lifetime_h: Hours,
    pub frames_completed: u64,
    pub deadline_misses: u64,
    /// Rotation waves actually launched.
    pub rotations: u64,
    /// Lifetime delta vs the `static` fixed-100 baseline, percent.
    pub delta_percent: f64,
}

/// Simulate every scheduling policy on the 2C workload through the sweep
/// engine and compare against the paper's fixed rotation-100 baseline
/// (always the first row).
pub fn policy_lifetime_sweep(engine: &SweepEngine, threads: usize) -> Vec<PolicyRow> {
    use crate::experiment::policy_config;
    use crate::policy::SchedulingPolicy;
    let jobs: Vec<PipelineConfig> = SchedulingPolicy::NAMES
        .iter()
        .map(|name| policy_config(SchedulingPolicy::by_name(name).expect("NAMES entries resolve")))
        .collect();
    let results = engine.run(&jobs, threads);
    let base_h = results[0].life_hours();
    SchedulingPolicy::NAMES
        .iter()
        .zip(&results)
        .map(|(name, r)| {
            let h = r.life_hours();
            PolicyRow {
                name,
                lifetime_h: Hours::new(h),
                frames_completed: r.frames_completed,
                deadline_misses: r.deadline_misses,
                rotations: r.counters.get("rotations"),
                delta_percent: if base_h > 0.0 {
                    100.0 * (h - base_h) / base_h
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Render the policy comparison as a text table.
pub fn render_policy_sweep(rows: &[PolicyRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Scheduling policies on the 2C workload (baseline: static rotation-100)\n\
         {:<10} {:>8} {:>8} {:>7} {:>10} {:>12}",
        "policy", "T (h)", "frames", "misses", "rotations", "vs static"
    );
    let _ = writeln!(out, "{}", "-".repeat(60));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>8.2} {:>8} {:>7} {:>10} {:>+11.2}%",
            r.name,
            r.lifetime_h.get(),
            r.frames_completed,
            r.deadline_misses,
            r.rotations,
            r.delta_percent
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use dles_sim::SimTime;

    fn short(label: &str, horizon_s: u64) -> PipelineConfig {
        let mut cfg = Experiment::Exp2.config();
        cfg.label = label.to_owned();
        cfg.horizon = SimTime::from_secs(horizon_s);
        cfg
    }

    #[test]
    fn sim_key_ignores_label_but_not_physics() {
        let a = short("alpha", 300);
        let b = short("beta", 300);
        assert_eq!(SimKey::of(&a), SimKey::of(&b), "label must not split keys");
        let c = short("alpha", 301);
        assert_ne!(SimKey::of(&a), SimKey::of(&c), "horizon is physics");
        let mut d = short("alpha", 300);
        d.jitter_seed = Some(7);
        assert_ne!(SimKey::of(&a), SimKey::of(&d), "seed is physics");
    }

    /// Regression (pre-fix-failing): two configurations identical except
    /// for their scheduling policy must get distinct keys *and* distinct
    /// sweep results. With the policy invisible to the canonical encoding
    /// they collided in the keyed cache and the second job silently got
    /// the first job's cached `ExperimentResult`.
    #[test]
    fn sim_key_separates_scheduling_policies() {
        use crate::policy::SchedulingPolicy;
        let mut a = Experiment::Exp2C.config();
        a.label = "static".to_owned();
        a.horizon = SimTime::from_secs(1200);
        let mut b = a.clone();
        b.label = "skew".to_owned();
        b.scheduling = SchedulingPolicy::by_name("soc-skew").unwrap();
        assert_ne!(SimKey::of(&a), SimKey::of(&b), "policy is physics");
        let engine = SweepEngine::new();
        let out = engine.run(&[a, b], 2);
        assert_eq!(
            engine.counters().get("sweep_sims_run"),
            2,
            "different-policy jobs must not share one simulation"
        );
        assert_ne!(
            out[0].counters.get("rotations"),
            out[1].counters.get("rotations"),
            "the SoC-skew policy rotates far more often than fixed-100"
        );
    }

    #[test]
    fn identical_jobs_simulate_once_and_keep_their_labels() {
        let engine = SweepEngine::new();
        let jobs = vec![short("first", 300), short("second", 300)];
        let out = engine.run(&jobs, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].label, "first");
        assert_eq!(out[1].label, "second");
        assert_eq!(out[0].lifetime, out[1].lifetime);
        let c = engine.counters();
        assert_eq!(c.get("sweep_jobs"), 2);
        assert_eq!(c.get("sweep_sims_run"), 1);
        assert_eq!(c.get("sweep_dedup_hits"), 1);
        assert_eq!(c.get("sweep_cache_hits"), 0);
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn second_sweep_hits_the_cache() {
        let engine = SweepEngine::new();
        let jobs = vec![short("x", 300)];
        let cold = engine.run(&jobs, 1);
        let warm = engine.run(&jobs, 3);
        assert_eq!(cold[0].lifetime, warm[0].lifetime);
        assert_eq!(cold[0].counters, warm[0].counters);
        let c = engine.counters();
        assert_eq!(c.get("sweep_cache_hits"), 1);
        assert_eq!(c.get("sweep_sims_run"), 1);
    }

    #[test]
    fn results_are_worker_count_invariant() {
        let jobs = vec![
            short("a", 300),
            short("b", 450),
            short("c", 300),
            short("d", 600),
        ];
        let baseline = SweepEngine::new().run(&jobs, 1);
        for threads in [2, 3, 8] {
            let out = SweepEngine::new().run(&jobs, threads);
            for (l, r) in baseline.iter().zip(&out) {
                assert_eq!(l.label, r.label);
                assert_eq!(l.lifetime, r.lifetime);
                assert_eq!(l.frames_completed, r.frames_completed);
                assert_eq!(l.counters, r.counters);
            }
        }
    }

    #[test]
    fn fig8_sweep_emits_one_row_per_scheme() {
        let engine = SweepEngine::new();
        let sys = SystemConfig::paper();
        let rows = fig8_lifetime_sweep(&engine, &sys, 0);
        assert_eq!(rows.len(), 3, "one row per Fig. 8 scheme, always");
        assert!(rows[0].feasible && rows[1].feasible);
        assert!(!rows[2].feasible, "scheme 3 needs ~380 MHz — infeasible");
        assert!(rows[0].lifetime_h.get() > rows[1].lifetime_h.get());
        let text = render_fig8_sweep(&rows);
        assert!(text.contains("infeasible"));
        assert!(text.contains("59.0/103.2"));
    }

    #[test]
    fn policy_sweep_adaptive_beats_the_fixed_baseline() {
        let engine = SweepEngine::new();
        let rows = policy_lifetime_sweep(&engine, 0);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "static");
        assert_eq!(rows[0].delta_percent, 0.0, "baseline is its own reference");
        let best = rows
            .iter()
            .skip(1)
            .map(|r| r.delta_percent)
            .fold(f64::MIN, f64::max);
        assert!(
            best > 0.0,
            "at least one adaptive policy must beat fixed-100: {rows:?}"
        );
        let text = render_policy_sweep(&rows);
        assert!(text.contains("soc-skew") && text.contains("adaptive"));
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let engine = SweepEngine::new();
        assert!(engine.run(&[], 4).is_empty());
        assert_eq!(engine.counters().get("sweep_jobs"), 0);
    }
}
