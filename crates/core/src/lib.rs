//! # dles-core — distributed DVS for low-power embedded pipelines
//!
//! The primary contribution of Liu & Chou, *"Distributed Embedded Systems
//! for Low Power: A Case Study"* (IPPS 2004), rebuilt as a library on top
//! of the workspace substrates:
//!
//! * [`workload`] — a node's per-frame task triple RECV → PROC → SEND
//!   under the frame deadline `D` (§3, Figs. 2–3);
//! * [`partition`] — the feasibility analysis behind Fig. 8: enumerate the
//!   contiguous partitionings of the ATR chain, compute each node's
//!   minimum feasible DVS level, pick the best scheme (§5.3);
//! * [`policy`] — the scheduling policies: the fixed DVS rules
//!   (run-at-level and *DVS during I/O*, §5.2) plus the adaptive
//!   battery-state-aware layer that observes per-node SoC estimates and
//!   decides online when the §5.5 rotation wave launches;
//! * [`node`] — the simulated Itsy node: CPU power state + battery +
//!   monitor + assigned share;
//! * [`pipeline`] — the discrete-event model of the whole distributed
//!   system: host, serial hub, N nodes, acknowledgments, failure
//!   detection, node rotation;
//! * [`faults`] — seeded fault injection: serial bit errors (through the
//!   real PPP codec), drops, delays, transient brownouts, battery
//!   variance;
//! * [`montecarlo`] — the Monte Carlo robustness harness: N seeded trials
//!   under a fault profile, sharded across threads, reproducibly
//!   aggregated;
//! * [`recovery`] — power-failure recovery configuration (§5.4);
//! * [`rotation`] — node-rotation configuration (§5.5);
//! * [`metrics`] — the paper's metrics `T(N)`, `F(N)`, `T_norm`, `R_norm`
//!   (§4.5);
//! * [`experiment`] — ready-made configurations for every experiment of
//!   §6 (0A, 0B, 1, 1A, 2, 2A, 2B, 2C) and an experiment runner;
//! * [`sweep`] — the deterministic parallel sweep engine: run a batch of
//!   configurations across scoped worker threads with byte-identical
//!   output for any worker count, deduplicating identical simulations
//!   through a keyed result cache;
//! * [`report`] — the tables and figure data of the paper, regenerated.
//!
//! ```no_run
//! use dles_core::experiment::{Experiment, run_experiment};
//!
//! let baseline = run_experiment(&Experiment::Exp1.config());
//! let rotation = run_experiment(&Experiment::Exp2C.config());
//! // Node rotation extends normalized battery life vs. the baseline.
//! assert!(rotation.normalized_life_hours() > baseline.normalized_life_hours());
//! ```
#![forbid(unsafe_code)]

pub mod experiment;
pub mod faults;
pub mod metrics;
pub mod montecarlo;
pub mod node;
pub mod partition;
pub mod pipeline;
pub mod policy;
pub mod recovery;
pub mod report;
pub mod rotation;
pub mod scale;
pub mod sweep;
pub mod timeline;
pub mod workload;

pub use experiment::{policy_config, run_experiment, Experiment};
pub use faults::{FaultPlan, FaultProfile, LinkFault};
pub use metrics::ExperimentResult;
pub use montecarlo::{
    render_montecarlo, run_monte_carlo, MonteCarloConfig, MonteCarloReport, TrialOutcome,
};
pub use partition::{analyze_partition, best_partition, fig8_schemes, PartitionAnalysis};
pub use pipeline::{
    build_engine, build_engine_with, run_pipeline, run_pipeline_with, PipelineConfig, PipelineWorld,
};
pub use policy::{DvsPolicy, SchedulingPolicy};
pub use sweep::{
    fig8_lifetime_sweep, policy_lifetime_sweep, render_fig8_sweep, render_policy_sweep, Fig8Row,
    PolicyRow, SimKey, SweepEngine,
};
pub use workload::{NodeShare, SystemConfig};
