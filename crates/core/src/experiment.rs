//! The eight experiments of §6, as ready-made configurations.
//!
//! | id  | §    | configuration                                            |
//! |-----|------|----------------------------------------------------------|
//! | 0A  | §6.1 | one node, no I/O, full speed (206.4 MHz)                 |
//! | 0B  | §6.1 | one node, no I/O, half speed (103.2 MHz)                 |
//! | 1   | §6.2 | baseline: one node @206.4, D = 2.3 s                     |
//! | 1A  | §6.3 | DVS during I/O (comm @59)                                |
//! | 2   | §6.4 | two nodes, scheme-1 partitioning @59/@103.2              |
//! | 2A  | §6.5 | partitioning + DVS during I/O                            |
//! | 2B  | §6.6 | partitioning + power-failure recovery @73.7/@118         |
//! | 2C  | §6.7 | partitioning + DVS during I/O + rotation every 100 frames|
//!
//! Experiments 0A/0B use battery pack A, the rest pack B (§6.1 marks the
//! no-I/O runs as not comparable with the pipelined series; see
//! `dles_battery::packs`).

use crate::metrics::ExperimentResult;
use crate::node::BatterySpec;
use crate::pipeline::{run_pipeline, PipelineConfig};
use crate::policy::{DvsPolicy, SchedulingPolicy};
use crate::recovery::RecoveryConfig;
use crate::rotation::RotationConfig;
use crate::workload::{NodeShare, SystemConfig};
use dles_atr::BlockRange;
use dles_battery::packs::{itsy_pack_a, itsy_pack_b};
use dles_power::CurrentModel;
use dles_sim::SimTime;

/// The experiments of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Experiment {
    Exp0A,
    Exp0B,
    Exp1,
    Exp1A,
    Exp2,
    Exp2A,
    Exp2B,
    Exp2C,
}

impl Experiment {
    /// All experiments in the paper's order.
    pub const ALL: [Experiment; 8] = [
        Experiment::Exp0A,
        Experiment::Exp0B,
        Experiment::Exp1,
        Experiment::Exp1A,
        Experiment::Exp2,
        Experiment::Exp2A,
        Experiment::Exp2B,
        Experiment::Exp2C,
    ];

    /// The I/O-bound series summarized in Fig. 10.
    pub const FIG10: [Experiment; 6] = [
        Experiment::Exp1,
        Experiment::Exp1A,
        Experiment::Exp2,
        Experiment::Exp2A,
        Experiment::Exp2B,
        Experiment::Exp2C,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Experiment::Exp0A => "0A",
            Experiment::Exp0B => "0B",
            Experiment::Exp1 => "1",
            Experiment::Exp1A => "1A",
            Experiment::Exp2 => "2",
            Experiment::Exp2A => "2A",
            Experiment::Exp2B => "2B",
            Experiment::Exp2C => "2C",
        }
    }

    pub fn description(self) -> &'static str {
        match self {
            Experiment::Exp0A => "no I/O, full speed",
            Experiment::Exp0B => "no I/O, half speed",
            Experiment::Exp1 => "baseline",
            Experiment::Exp1A => "DVS during I/O",
            Experiment::Exp2 => "distributed DVS with partitioning",
            Experiment::Exp2A => "distributed DVS during I/O",
            Experiment::Exp2B => "distributed DVS with power failure recovery",
            Experiment::Exp2C => "distributed DVS with node rotation",
        }
    }

    /// The lifetime the paper measured, hours (§6).
    pub fn paper_hours(self) -> f64 {
        match self {
            Experiment::Exp0A => 3.4,
            Experiment::Exp0B => 12.9,
            Experiment::Exp1 => 6.13,
            Experiment::Exp1A => 7.6,
            Experiment::Exp2 => 14.1,
            Experiment::Exp2A => 14.44,
            Experiment::Exp2B => 15.72,
            Experiment::Exp2C => 17.82,
        }
    }

    /// Frames the paper reports completed (×1000 rounded as published).
    pub fn paper_kframes(self) -> f64 {
        match self {
            Experiment::Exp0A => 11.5,
            Experiment::Exp0B => 22.5,
            Experiment::Exp1 => 9.6,
            Experiment::Exp1A => 11.9,
            Experiment::Exp2 => 22.1,
            Experiment::Exp2A => 22.6,
            Experiment::Exp2B => 24.5,
            Experiment::Exp2C => 27.9,
        }
    }

    /// The paper's normalized battery-life ratio, percent (Fig. 10);
    /// `None` for the non-comparable no-I/O runs.
    pub fn paper_rnorm_percent(self) -> Option<f64> {
        match self {
            Experiment::Exp0A | Experiment::Exp0B => None,
            Experiment::Exp1 => Some(100.0),
            Experiment::Exp1A => Some(124.0),
            Experiment::Exp2 => Some(115.0),
            Experiment::Exp2A => Some(118.0),
            Experiment::Exp2B => Some(128.0),
            Experiment::Exp2C => Some(145.0),
        }
    }

    /// Build the configuration for this experiment.
    pub fn config(self) -> PipelineConfig {
        let sys = SystemConfig::paper();
        let full = NodeShare::from_profile(&sys.profile, BlockRange::full());
        let scheme1 = (
            NodeShare::from_profile(&sys.profile, BlockRange::new(0, 1)),
            NodeShare::from_profile(&sys.profile, BlockRange::new(1, 4)),
        );
        let dvs = sys.dvs.clone();
        let level = move |mhz: f64| {
            dvs.by_freq(dles_units::Hertz::from_mhz(mhz))
                .expect("paper level in table")
        };
        let base = PipelineConfig {
            label: self.label().to_owned(),
            shares: vec![full],
            levels: vec![sys.dvs.highest()],
            policy: DvsPolicy::FixedLevel,
            scheduling: SchedulingPolicy::Static,
            battery: BatterySpec::Kibam(itsy_pack_b().kibam),
            current_model: CurrentModel::itsy(),
            rotation: None,
            recovery: None,
            io_enabled: true,
            jitter_seed: None,
            faults: None,
            battery_scales: None,
            horizon: SimTime::from_secs(3600 * 500),
            sys,
        };
        match self {
            Experiment::Exp0A => PipelineConfig {
                battery: BatterySpec::Kibam(itsy_pack_a().kibam),
                io_enabled: false,
                ..base
            },
            Experiment::Exp0B => PipelineConfig {
                battery: BatterySpec::Kibam(itsy_pack_a().kibam),
                io_enabled: false,
                levels: vec![level(103.2)],
                ..base
            },
            Experiment::Exp1 => base,
            Experiment::Exp1A => PipelineConfig {
                policy: DvsPolicy::DvsDuringIo,
                ..base
            },
            Experiment::Exp2 => PipelineConfig {
                shares: vec![scheme1.0, scheme1.1],
                levels: vec![level(59.0), level(103.2)],
                ..base
            },
            Experiment::Exp2A => PipelineConfig {
                shares: vec![scheme1.0, scheme1.1],
                levels: vec![level(59.0), level(103.2)],
                policy: DvsPolicy::DvsDuringIo,
                ..base
            },
            Experiment::Exp2B => PipelineConfig {
                shares: vec![scheme1.0, scheme1.1],
                // §6.6: the control traffic forces both nodes faster —
                // the paper measured 73.7 and 118 MHz.
                levels: vec![level(73.7), level(118.0)],
                policy: DvsPolicy::DvsDuringIo,
                recovery: Some(RecoveryConfig::paper()),
                ..base
            },
            Experiment::Exp2C => PipelineConfig {
                shares: vec![scheme1.0, scheme1.1],
                levels: vec![level(59.0), level(103.2)],
                policy: DvsPolicy::DvsDuringIo,
                rotation: Some(RotationConfig::paper()),
                ..base
            },
        }
    }
}

/// The 2C rotation workload under a scheduling policy. The adaptive
/// policies need the §5.5 wave mechanics, so they are layered onto the
/// paper's rotation experiment; `Static` returns 2C exactly.
pub fn policy_config(policy: SchedulingPolicy) -> PipelineConfig {
    let mut cfg = Experiment::Exp2C.config();
    cfg.scheduling = policy;
    if !policy.is_static() {
        cfg.label = format!("2C+{}", policy.name());
    }
    cfg
}

/// Run one experiment configuration to battery exhaustion.
pub fn run_experiment(cfg: &PipelineConfig) -> ExperimentResult {
    run_pipeline(cfg.clone())
}

/// Run every experiment (optionally in parallel) and return the results in
/// the paper's order.
// lint: allow(D009) — static paper tables: the DVS-level lookups behind `Experiment::config` use frequencies taken from the table itself, and every experiment is exercised by the golden tests
pub fn run_all_experiments(parallel: bool) -> Vec<ExperimentResult> {
    let threads = if parallel { 0 } else { 1 };
    dles_sim::par_map_slice(&Experiment::ALL, threads, |_, e| {
        run_experiment(&e.config())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_have_expected_shapes() {
        assert_eq!(Experiment::Exp1.config().n_nodes(), 1);
        assert_eq!(Experiment::Exp2.config().n_nodes(), 2);
        assert!(!Experiment::Exp0A.config().io_enabled);
        assert!(Experiment::Exp2B.config().recovery.is_some());
        assert!(Experiment::Exp2C.config().rotation.is_some());
        assert_eq!(Experiment::Exp2C.config().policy, DvsPolicy::DvsDuringIo);
    }

    #[test]
    fn paper_numbers_are_consistent() {
        // T(N) ≈ F(N) × D for the pipelined series (§4.5).
        for e in Experiment::FIG10 {
            let t = e.paper_hours() * 3600.0;
            let f = e.paper_kframes() * 1000.0;
            let rel = (t - f * 2.3).abs() / t;
            assert!(rel < 0.03, "{}: T {} vs F·D {}", e.label(), t, f * 2.3);
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = Experiment::ALL.iter().map(|e| e.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn exp0a_reproduces_paper_lifetime() {
        let r = run_experiment(&Experiment::Exp0A.config());
        let hours = r.lifetime.as_hours_f64();
        assert!(
            (hours - 3.4).abs() < 0.35,
            "0A simulated {hours} h vs paper 3.4 h"
        );
        // ~11.5K frames.
        let kf = r.frames_completed as f64 / 1000.0;
        assert!((kf - 11.5).abs() < 1.3, "0A frames {kf}K vs 11.5K");
    }

    #[test]
    fn exp0b_reproduces_paper_lifetime() {
        let r = run_experiment(&Experiment::Exp0B.config());
        let hours = r.lifetime.as_hours_f64();
        assert!(
            (hours - 12.9).abs() < 1.3,
            "0B simulated {hours} h vs paper 12.9 h"
        );
    }
}
