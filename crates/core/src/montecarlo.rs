//! Monte Carlo robustness harness.
//!
//! Runs N seeded trials of one pipeline configuration under a
//! [`FaultProfile`], sharding trials across scoped worker threads, and
//! aggregates the lifetime / frames / deadline-miss distributions.
//!
//! Determinism contract: each trial's seeds are a pure function of
//! `(master_seed, trial index)` — [`trial_seeds`] forks the master stream
//! per trial — and the trials run through [`dles_sim::par_map`]
//! (index-ordered result slots), so the aggregated report is
//! **byte-identical regardless of the worker count**.

use crate::faults::{FaultPlan, FaultProfile};
use crate::pipeline::{run_pipeline, PipelineConfig};
use dles_sim::{par_map, CounterSet, DistSummary, SimRng};

/// Configuration of one Monte Carlo study.
#[derive(Debug, Clone)]
pub struct MonteCarloConfig {
    /// The configuration every trial perturbs (label, shares, recovery…).
    pub base: PipelineConfig,
    /// Number of trials.
    pub trials: usize,
    /// Master seed; each trial's jitter and fault seeds derive from it.
    pub master_seed: u64,
    /// Fault environment applied to every trial.
    pub profile: FaultProfile,
    /// Worker threads; `0` = one per available core. The report does not
    /// depend on this.
    pub threads: usize,
}

/// The `(jitter_seed, fault_seed)` pair of one trial: a pure function of
/// the master seed and the trial index.
pub fn trial_seeds(master_seed: u64, trial: usize) -> (u64, u64) {
    let mut stream = SimRng::seed_from_u64(master_seed).fork(trial as u64);
    (stream.next_u64(), stream.next_u64())
}

/// Build trial `trial`'s pipeline configuration.
pub fn trial_config(
    base: &PipelineConfig,
    profile: FaultProfile,
    master_seed: u64,
    trial: usize,
) -> PipelineConfig {
    let (jitter_seed, fault_seed) = trial_seeds(master_seed, trial);
    let mut cfg = base.clone();
    cfg.label = format!("{} mc#{trial}", base.label);
    cfg.jitter_seed = Some(jitter_seed);
    cfg.faults = Some(FaultPlan::new(profile, fault_seed));
    cfg
}

/// What one trial produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    pub trial: usize,
    pub jitter_seed: u64,
    pub fault_seed: u64,
    pub lifetime_h: dles_units::Hours,
    pub frames_completed: u64,
    pub deadline_misses: u64,
    pub counters: CounterSet,
}

/// The aggregated study.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    pub label: String,
    pub master_seed: u64,
    pub profile: FaultProfile,
    /// Per-trial outcomes, in trial order.
    pub trials: Vec<TrialOutcome>,
    pub lifetime_h: DistSummary,
    pub frames: DistSummary,
    pub misses: DistSummary,
    /// Event counters summed over all trials.
    pub counters: CounterSet,
}

/// Run the study. Trials run through [`par_map`]: pulled from a shared
/// index by `threads` scoped workers, written into per-trial slots, and
/// aggregated in trial order, so the result is independent of scheduling.
pub fn run_monte_carlo(cfg: &MonteCarloConfig) -> MonteCarloReport {
    assert!(cfg.trials > 0, "at least one trial required");
    let trials: Vec<TrialOutcome> = par_map(cfg.trials, cfg.threads, |trial| {
        let (jitter_seed, fault_seed) = trial_seeds(cfg.master_seed, trial);
        let tc = trial_config(&cfg.base, cfg.profile, cfg.master_seed, trial);
        let r = run_pipeline(tc);
        TrialOutcome {
            trial,
            jitter_seed,
            fault_seed,
            lifetime_h: dles_units::Hours::new(r.life_hours()),
            frames_completed: r.frames_completed,
            deadline_misses: r.deadline_misses,
            counters: r.counters,
        }
    });
    let lifetimes: Vec<f64> = trials.iter().map(|t| t.lifetime_h.get()).collect();
    let frames: Vec<f64> = trials.iter().map(|t| t.frames_completed as f64).collect();
    let misses: Vec<f64> = trials.iter().map(|t| t.deadline_misses as f64).collect();
    let mut counters = CounterSet::new();
    for t in &trials {
        counters.merge(&t.counters);
    }
    MonteCarloReport {
        label: cfg.base.label.clone(),
        master_seed: cfg.master_seed,
        profile: cfg.profile,
        lifetime_h: DistSummary::from_values(&lifetimes),
        frames: DistSummary::from_values(&frames),
        misses: DistSummary::from_values(&misses),
        counters,
        trials,
    }
}

/// Counters worth surfacing in the summary, in report order.
const REPORTED_COUNTERS: [&str; 12] = [
    "fault_drops",
    "fault_bit_errors",
    "fault_delays",
    "fault_brownouts",
    "retransmissions",
    "ack_timeouts",
    "recv_timeouts",
    "sends_abandoned",
    "duplicate_frames_dropped",
    "transfers_lost",
    "migrations",
    "node_deaths",
];

/// Render the report as a text table.
pub fn render_montecarlo(report: &MonteCarloReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Monte Carlo study: {} (master seed {})",
        report.label, report.master_seed
    );
    let _ = writeln!(out, "trials completed: {}", report.trials.len());
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "metric", "mean", "std", "p5", "p50", "p95", "min", "max"
    );
    let _ = writeln!(out, "{}", "-".repeat(92));
    for (name, d) in [
        ("lifetime (h)", &report.lifetime_h),
        ("frames", &report.frames),
        ("misses", &report.misses),
    ] {
        let _ = writeln!(
            out,
            "{:<14} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            name, d.mean, d.std_dev, d.p05, d.p50, d.p95, d.min, d.max
        );
    }
    let _ = writeln!(out, "\nfault / recovery counters (all trials):");
    for name in REPORTED_COUNTERS {
        let _ = writeln!(out, "  {:<26} {:>12}", name, report.counters.get(name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_pure_and_distinct() {
        assert_eq!(trial_seeds(42, 3), trial_seeds(42, 3));
        assert_ne!(trial_seeds(42, 3), trial_seeds(42, 4));
        assert_ne!(trial_seeds(42, 3), trial_seeds(43, 3));
    }

    #[test]
    fn trial_config_labels_and_seeds_each_trial() {
        let base = crate::experiment::Experiment::Exp2B.config();
        let cfg = trial_config(&base, FaultProfile::lossy_link(), 7, 5);
        assert_eq!(cfg.label, format!("{} mc#5", base.label));
        let (j, f) = trial_seeds(7, 5);
        assert_eq!(cfg.jitter_seed, Some(j));
        assert_eq!(cfg.faults.as_ref().unwrap().seed, f);
    }
}
