//! Regenerating the paper's tables and figures as text reports.
//!
//! Each `render_*` function returns a formatted table; `fig10_rows`
//! produces the data series behind the paper's summary bar chart
//! (absolute + normalized battery life with normalized ratios annotated),
//! both as structured rows (for JSON export) and as text.

use crate::experiment::Experiment;
use crate::metrics::ExperimentResult;
use crate::partition::fig8_schemes;
use crate::workload::SystemConfig;
use dles_power::{CurrentModel, Mode};
use std::fmt::Write as _;

/// One row of the Fig. 10 summary.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    pub label: String,
    pub description: String,
    /// Simulated absolute battery life, hours.
    pub absolute_hours: f64,
    /// Simulated normalized battery life, hours.
    pub normalized_hours: f64,
    /// Simulated normalized ratio vs. the simulated baseline, percent.
    pub rnorm_percent: f64,
    /// The paper's measured lifetime, hours.
    pub paper_hours: f64,
    /// The paper's normalized ratio, percent.
    pub paper_rnorm_percent: Option<f64>,
    /// Frames completed (simulated), thousands.
    pub kframes: f64,
    /// Frames the paper reports, thousands.
    pub paper_kframes: f64,
}

/// Build the Fig. 10 data from experiment results (the first result must
/// be the baseline, experiment 1).
pub fn fig10_rows(experiments: &[(Experiment, ExperimentResult)]) -> Vec<Fig10Row> {
    let baseline = experiments
        .iter()
        .find(|(e, _)| *e == Experiment::Exp1)
        .map(|(_, r)| r.clone())
        .expect("baseline (experiment 1) required for normalization");
    experiments
        .iter()
        .map(|(e, r)| Fig10Row {
            label: e.label().to_owned(),
            description: e.description().to_owned(),
            absolute_hours: r.life_hours(),
            normalized_hours: r.normalized_life_hours(),
            rnorm_percent: 100.0 * r.normalized_ratio(&baseline),
            paper_hours: e.paper_hours(),
            paper_rnorm_percent: e.paper_rnorm_percent(),
            kframes: r.frames_completed as f64 / 1000.0,
            paper_kframes: e.paper_kframes(),
        })
        .collect()
}

/// Render the Fig. 10 comparison as a text table.
pub fn render_fig10(rows: &[Fig10Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 10 — Experiment results (simulated vs. paper)\n\
         {:<4} {:<44} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "exp", "configuration", "T sim", "T paper", "Rn sim", "Rn paper", "F sim", "F paper"
    );
    let _ = writeln!(out, "{}", "-".repeat(104));
    for r in rows {
        let paper_rn = r
            .paper_rnorm_percent
            .map(|p| format!("{p:>7.0}%"))
            .unwrap_or_else(|| "      --".into());
        let _ = writeln!(
            out,
            "{:<4} {:<44} {:>7.2}h {:>7.2}h {:>7.0}% {} {:>6.1}K {:>6.1}K",
            r.label,
            r.description,
            r.absolute_hours,
            r.paper_hours,
            r.rnorm_percent,
            paper_rn,
            r.kframes,
            r.paper_kframes
        );
    }
    out
}

/// Render the Fig. 6 performance profile.
pub fn render_fig6(sys: &SystemConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 6 — ATR performance profile (Itsy @206.4 MHz)\n\
         {:<16} {:>10} {:>12} {:>14}",
        "block", "PROC (s)", "output (KB)", "transfer (s)"
    );
    let _ = writeln!(out, "{}", "-".repeat(56));
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>12.1} {:>14.2}",
        "input frame",
        "--",
        sys.profile.input_bytes as f64 / 1024.0,
        sys.serial.transfer_secs(sys.profile.input_bytes)
    );
    for b in dles_atr::Block::ALL {
        let p = sys.profile.block(b);
        let _ = writeln!(
            out,
            "{:<16} {:>10.3} {:>12.1} {:>14.2}",
            b.name(),
            p.peak_secs,
            p.output_bytes as f64 / 1024.0,
            sys.serial.transfer_secs(p.output_bytes)
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>10.3}",
        "total",
        sys.profile.total_peak_secs()
    );
    out
}

/// Render the Fig. 7 power profile: current per mode at each DVS level.
pub fn render_fig7(sys: &SystemConfig, model: &CurrentModel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 7 — Power profile of ATR on Itsy (mA at 4 V)\n\
         {:>10} {:>8} {:>8} {:>14} {:>13}",
        "freq (MHz)", "volt (V)", "idle", "communication", "computation"
    );
    let _ = writeln!(out, "{}", "-".repeat(58));
    for level in sys.dvs.iter() {
        let _ = writeln!(
            out,
            "{:>10.1} {:>8.3} {:>8.1} {:>14.1} {:>13.1}",
            level.freq_mhz.mhz(),
            level.volts.get(),
            model.current_ma(Mode::Idle, level).get(),
            model.current_ma(Mode::Communication, level).get(),
            model.current_ma(Mode::Computation, level).get()
        );
    }
    out
}

/// Render the Fig. 8 partitioning table.
pub fn render_fig8(sys: &SystemConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 8 — Two-node partitioning schemes (D = {:.1} s)\n\
         {:<52} {:>10} {:>10} {:>10} {:>10}",
        sys.frame_delay.as_secs_f64(),
        "scheme (Node1)(Node2)",
        "N1 MHz",
        "N2 MHz",
        "N1 KB",
        "N2 KB"
    );
    let _ = writeln!(out, "{}", "-".repeat(96));
    for scheme in fig8_schemes(sys) {
        let name = format!("{}{}", scheme.shares[0].range, scheme.shares[1].range);
        let lvl = |i: usize| match scheme.levels[i] {
            Some(l) => format!("{:>10.1}", l.freq_mhz.mhz()),
            None => format!("{:>10}", format!("> {:.1}", 206.4)),
        };
        let _ = writeln!(
            out,
            "{:<52} {} {} {:>10.1} {:>10.1}",
            name,
            lvl(0),
            lvl(1),
            scheme.shares[0].comm_payload_bytes() as f64 / 1024.0,
            scheme.shares[1].comm_payload_bytes() as f64 / 1024.0
        );
    }
    out
}

/// Render a detailed per-experiment result (per-node breakdown).
pub fn render_experiment_detail(e: Experiment, r: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Experiment ({}) {} — T = {:.2} h, F = {:.1}K frames, {} deadline misses, \
         latency mean {:.2} s / p95 {:.2} s",
        e.label(),
        e.description(),
        r.life_hours(),
        r.frames_completed as f64 / 1000.0,
        r.deadline_misses,
        r.mean_frame_latency_s.get(),
        r.p95_frame_latency_s.get()
    );
    for (i, n) in r.nodes.iter().enumerate() {
        let death = n
            .death_time
            .map(|t| format!("{:.2} h", t.as_hours_f64()))
            .unwrap_or_else(|| "alive".into());
        let _ = writeln!(
            out,
            "  node{}: death {}, delivered {:.0} mAh, stranded {:.0} mAh, \
             mean {:.1} mA, comm {:.0} J / comp {:.0} J / idle {:.0} J",
            i + 1,
            death,
            n.delivered_mah.get(),
            n.stranded_mah.get(),
            n.mean_current_ma.get(),
            n.energy.energy_j(Mode::Communication).get(),
            n.energy.energy_j(Mode::Computation).get(),
            n.energy.energy_j(Mode::Idle).get(),
        );
    }
    out
}

/// Render the monotonic event counters of a run as a two-column table.
pub fn render_counters(label: &str, counters: &dles_sim::CounterSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Event counters ({label})");
    let _ = writeln!(out, "{}", "-".repeat(40));
    if counters.is_empty() {
        let _ = writeln!(out, "  (no events recorded)");
    }
    for (name, value) in counters.iter() {
        let _ = writeln!(out, "  {name:<28} {value:>10}");
    }
    out
}

/// Serialize Fig. 10 rows to pretty JSON (for machine-readable artifacts).
pub fn to_json(rows: &[Fig10Row]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\n");
        let _ = writeln!(out, "    \"label\": {},", json_str(&r.label));
        let _ = writeln!(out, "    \"description\": {},", json_str(&r.description));
        let _ = writeln!(
            out,
            "    \"absolute_hours\": {},",
            json_f64(r.absolute_hours)
        );
        let _ = writeln!(
            out,
            "    \"normalized_hours\": {},",
            json_f64(r.normalized_hours)
        );
        let _ = writeln!(out, "    \"rnorm_percent\": {},", json_f64(r.rnorm_percent));
        let _ = writeln!(out, "    \"paper_hours\": {},", json_f64(r.paper_hours));
        let paper_rn = match r.paper_rnorm_percent {
            Some(p) => json_f64(p),
            None => "null".into(),
        };
        let _ = writeln!(out, "    \"paper_rnorm_percent\": {paper_rn},");
        let _ = writeln!(out, "    \"kframes\": {},", json_f64(r.kframes));
        let _ = writeln!(out, "    \"paper_kframes\": {}", json_f64(r.paper_kframes));
        out.push_str("  }");
    }
    out.push_str("\n]");
    out
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 as a JSON number (finite values only; non-finite → null).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExperimentResult;
    use dles_sim::SimTime;

    fn fake_result(hours: f64, n: usize) -> ExperimentResult {
        ExperimentResult {
            label: "x".into(),
            n_nodes: n,
            lifetime: SimTime::from_hours_f64(hours),
            frames_completed: (hours * 3600.0 / 2.3) as u64,
            deadline_misses: 0,
            mean_frame_latency_s: dles_units::Seconds::ZERO,
            p95_frame_latency_s: dles_units::Seconds::ZERO,
            nodes: vec![],
            counters: dles_sim::CounterSet::new(),
        }
    }

    #[test]
    fn fig10_rows_normalize_against_baseline() {
        let rows = fig10_rows(&[
            (Experiment::Exp1, fake_result(6.0, 1)),
            (Experiment::Exp2, fake_result(13.8, 2)),
        ]);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].rnorm_percent - 100.0).abs() < 1e-9);
        assert!((rows[1].rnorm_percent - 115.0).abs() < 1e-9);
        let text = render_fig10(&rows);
        assert!(text.contains("baseline"));
        assert!(text.contains("partitioning"));
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn fig10_requires_baseline() {
        let _ = fig10_rows(&[(Experiment::Exp2, fake_result(13.8, 2))]);
    }

    #[test]
    fn static_tables_render() {
        let sys = SystemConfig::paper();
        let model = CurrentModel::itsy();
        let f6 = render_fig6(&sys);
        assert!(f6.contains("Target Detect.") && f6.contains("10.1"));
        let f7 = render_fig7(&sys, &model);
        assert!(f7.contains("206.4") && f7.contains("59.0"));
        let f8 = render_fig8(&sys);
        assert!(f8.contains("> 206.4"), "infeasible row marker: {f8}");
        assert!(f8.contains("10.7"), "Fig.8 payload column: {f8}");
    }

    #[test]
    fn counter_table_renders_in_order() {
        let mut cs = dles_sim::CounterSet::new();
        cs.add("frames_emitted", 12);
        cs.add("frames_completed", 11);
        let text = render_counters("2C", &cs);
        assert!(text.contains("Event counters (2C)"));
        let emitted = text.find("frames_emitted").unwrap();
        let completed = text.find("frames_completed").unwrap();
        assert!(emitted < completed, "insertion order preserved:\n{text}");
        assert!(text.contains("12") && text.contains("11"));
        assert!(render_counters("x", &dles_sim::CounterSet::new()).contains("no events"));
    }

    #[test]
    fn json_roundtrip() {
        let rows = fig10_rows(&[(Experiment::Exp1, fake_result(6.0, 1))]);
        let json = to_json(&rows);
        assert!(json.contains("\"rnorm_percent\""));
    }
}
