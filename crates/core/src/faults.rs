//! Seeded fault injection for the pipeline simulation.
//!
//! The recovery protocol of §5.4 only earns its cost when transfers can
//! actually be lost. This module defines the environment's misbehavior:
//! serial bit errors (realized through the real PPP codec in `dles-net`),
//! dropped and delayed transactions, transient node brownouts (offline for
//! a bounded interval, distinct from battery death), and per-node battery
//! capacity / initial-charge variance.
//!
//! Everything draws from [`dles_sim::SimRng`] streams forked from a single
//! plan seed, so a trial is a pure function of `(config, FaultPlan)` —
//! which is what lets the Monte Carlo driver in [`crate::montecarlo`]
//! shard trials across threads without changing any result.

use dles_sim::{SimRng, SimTime};

/// Knobs of one fault environment. All probabilities are per transfer
/// unless stated otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Per-wire-bit error probability on every serial transfer. The chance
    /// a transfer is hit is `1 − (1 − ber)^bits`; a hit is then replayed
    /// through the PPP codec to decide whether the framing catches it.
    pub bit_error_rate: f64,
    /// Probability a transfer is dropped outright (receiver never sees it).
    pub drop_prob: f64,
    /// Probability a transfer is delayed by up to [`Self::delay_max`].
    pub delay_prob: f64,
    /// Maximum extra latency added to a delayed transfer.
    pub delay_max: SimTime,
    /// Mean interval between brownouts per node; `SimTime::ZERO` disables
    /// brownouts. Actual intervals are uniform in `[0.5, 1.5] × mean`.
    pub brownout_mean_interval: SimTime,
    /// How long a browned-out node stays offline.
    pub brownout_duration: SimTime,
    /// Relative standard deviation of per-node battery capacity
    /// (manufacturing variance), clamped to ±40 %.
    pub capacity_std_frac: f64,
    /// Maximum relative initial-charge deficit per node, uniform in
    /// `[0, charge_spread_frac]` (modelled as a capacity reduction).
    pub charge_spread_frac: f64,
}

impl FaultProfile {
    /// No faults at all (the seed behavior).
    pub fn none() -> Self {
        FaultProfile {
            bit_error_rate: 0.0,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_max: SimTime::ZERO,
            brownout_mean_interval: SimTime::ZERO,
            brownout_duration: SimTime::ZERO,
            capacity_std_frac: 0.0,
            charge_spread_frac: 0.0,
        }
    }

    /// A lossy serial link: bit errors, drops, and delays, healthy nodes.
    pub fn lossy_link() -> Self {
        FaultProfile {
            bit_error_rate: 1e-6,
            drop_prob: 0.03,
            delay_prob: 0.05,
            delay_max: SimTime::from_millis(150),
            ..FaultProfile::none()
        }
    }

    /// Healthy links, flaky power: periodic transient brownouts.
    pub fn brownout() -> Self {
        FaultProfile {
            brownout_mean_interval: SimTime::from_secs(600),
            brownout_duration: SimTime::from_secs(5),
            ..FaultProfile::none()
        }
    }

    /// Per-node battery variance only (manufacturing + state-of-charge).
    pub fn battery_variance() -> Self {
        FaultProfile {
            capacity_std_frac: 0.05,
            charge_spread_frac: 0.05,
            ..FaultProfile::none()
        }
    }

    /// Everything at once.
    pub fn harsh() -> Self {
        FaultProfile {
            brownout_mean_interval: SimTime::from_secs(900),
            brownout_duration: SimTime::from_secs(5),
            capacity_std_frac: 0.05,
            charge_spread_frac: 0.05,
            ..FaultProfile::lossy_link()
        }
    }

    /// Look up a named profile (`none`, `lossy`, `brownout`, `battery`,
    /// `harsh`), for the `repro --faults NAME` CLI.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "none" => Some(Self::none()),
            "lossy" | "lossy_link" => Some(Self::lossy_link()),
            "brownout" => Some(Self::brownout()),
            "battery" | "battery_variance" => Some(Self::battery_variance()),
            "harsh" => Some(Self::harsh()),
            _ => None,
        }
    }

    /// The profile names accepted by [`Self::by_name`].
    pub const NAMES: [&'static str; 5] = ["none", "lossy", "brownout", "battery", "harsh"];

    /// Whether any link-level fault can occur.
    pub fn has_link_faults(&self) -> bool {
        self.bit_error_rate > 0.0 || self.drop_prob > 0.0 || self.delay_prob > 0.0
    }

    /// Whether brownouts are enabled.
    pub fn has_brownouts(&self) -> bool {
        self.brownout_mean_interval > SimTime::ZERO && self.brownout_duration > SimTime::ZERO
    }

    /// Whether per-node battery variance is enabled.
    pub fn has_battery_variance(&self) -> bool {
        self.capacity_std_frac > 0.0 || self.charge_spread_frac > 0.0
    }

    /// Whether this profile injects anything at all.
    pub fn is_active(&self) -> bool {
        self.has_link_faults() || self.has_brownouts() || self.has_battery_variance()
    }
}

/// A fault environment bound to a seed: the complete description of one
/// trial's misbehavior.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub profile: FaultProfile,
    pub seed: u64,
}

impl FaultPlan {
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultPlan { profile, seed }
    }
}

/// What the fault layer decided to do to one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// The receiver never sees the transfer.
    Dropped,
    /// Bit errors the PPP framing detected; the payload is discarded at
    /// the receiver. `flipped_bits` records how many wire bits flipped.
    Corrupted { flipped_bits: u32 },
    /// The transfer arrives late by the carried extra duration.
    Delayed(SimTime),
}

/// Live per-run fault state: the RNG streams and brownout bookkeeping.
/// Owned by the pipeline world; all draws happen in deterministic event
/// order within a single trial.
pub struct FaultState {
    pub profile: FaultProfile,
    /// Stream for link-fault decisions (drop/corrupt/delay + bit flips).
    link_rng: SimRng,
    /// Stream for brownout interval scheduling.
    brownout_rng: SimRng,
    /// Per node: offline until this instant (ZERO = online).
    pub offline_until: Vec<SimTime>,
}

impl FaultState {
    /// Build from a plan; `n` is the node count.
    pub fn new(plan: &FaultPlan, n: usize) -> Self {
        let root = SimRng::seed_from_u64(plan.seed);
        FaultState {
            profile: plan.profile,
            link_rng: root.fork(1),
            brownout_rng: root.fork(2),
            offline_until: vec![SimTime::ZERO; n],
        }
    }

    /// Per-node battery scale factors (capacity variance × initial-charge
    /// deficit), drawn from a stream independent of the event order.
    pub fn battery_scales(plan: &FaultPlan, n: usize) -> Vec<f64> {
        let root = SimRng::seed_from_u64(plan.seed);
        (0..n)
            .map(|i| {
                let mut rng = root.fork(0xBA77_0000 + i as u64);
                let cap = if plan.profile.capacity_std_frac > 0.0 {
                    (1.0 + plan.profile.capacity_std_frac * rng.standard_normal()).clamp(0.6, 1.4)
                } else {
                    1.0
                };
                let charge = if plan.profile.charge_spread_frac > 0.0 {
                    1.0 - rng.uniform_f64(0.0, plan.profile.charge_spread_frac)
                } else {
                    1.0
                };
                cap * charge
            })
            .collect()
    }

    /// Decide the fate of one serial transfer of `bytes` payload bytes for
    /// `frame`. Precedence: drop > bit errors > delay; one category per
    /// transfer. Bit errors are realized through the real PPP codec — if
    /// the flips happen to leave the frame decodable, the transfer
    /// survives unharmed.
    pub fn draw_transfer_fault(&mut self, bytes: u64, frame: u64) -> Option<LinkFault> {
        let p = self.profile;
        if p.drop_prob > 0.0 && self.link_rng.chance(p.drop_prob) {
            return Some(LinkFault::Dropped);
        }
        if p.bit_error_rate > 0.0 {
            // PPP adds 2 FCS bytes + 2 flags; stuffing overhead is payload
            // dependent and second-order for the hit probability.
            let wire_bits = 8.0 * (bytes as f64 + 4.0);
            let p_hit = 1.0 - (1.0 - p.bit_error_rate).powf(wire_bits);
            if self.link_rng.chance(p_hit) {
                let flips = self.link_rng.uniform_u64(1, 3) as u32;
                if dles_net::fault::frame_corrupted_by_flips(
                    bytes,
                    frame,
                    flips,
                    &mut self.link_rng,
                ) {
                    return Some(LinkFault::Corrupted {
                        flipped_bits: flips,
                    });
                }
                // The framing provably survived these flips.
            }
        }
        if p.delay_prob > 0.0 && self.link_rng.chance(p.delay_prob) {
            let extra = self.link_rng.uniform_u64(0, p.delay_max.as_micros());
            if extra > 0 {
                return Some(LinkFault::Delayed(SimTime::from_micros(extra)));
            }
        }
        None
    }

    /// The next brownout arrival interval: uniform in `[0.5, 1.5] × mean`.
    pub fn next_brownout_interval(&mut self) -> SimTime {
        let mean = self.profile.brownout_mean_interval.as_micros();
        SimTime::from_micros(self.brownout_rng.uniform_u64(mean / 2, mean + mean / 2))
    }

    /// Whether `node` is browned out at `now`.
    pub fn is_offline(&self, node: usize, now: SimTime) -> bool {
        self.offline_until[node] > now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_resolve() {
        for name in FaultProfile::NAMES {
            assert!(FaultProfile::by_name(name).is_some(), "profile {name}");
        }
        assert!(FaultProfile::by_name("LOSSY").is_some(), "case-insensitive");
        assert!(FaultProfile::by_name("bogus").is_none());
        assert!(!FaultProfile::none().is_active());
        assert!(FaultProfile::lossy_link().is_active());
        assert!(FaultProfile::harsh().has_brownouts());
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let plan = FaultPlan::new(FaultProfile::lossy_link(), 77);
        let mut a = FaultState::new(&plan, 2);
        let mut b = FaultState::new(&plan, 2);
        for i in 0..200 {
            assert_eq!(
                a.draw_transfer_fault(1000, i),
                b.draw_transfer_fault(1000, i)
            );
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::new(
            FaultProfile {
                drop_prob: 0.25,
                ..FaultProfile::none()
            },
            3,
        );
        let mut fs = FaultState::new(&plan, 1);
        let drops = (0..4000)
            .filter(|&i| fs.draw_transfer_fault(100, i) == Some(LinkFault::Dropped))
            .count();
        let rate = drops as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn bit_errors_corrupt_large_transfers() {
        // BER high enough that a 10 KB transfer is almost surely hit.
        let plan = FaultPlan::new(
            FaultProfile {
                bit_error_rate: 1e-3,
                ..FaultProfile::none()
            },
            9,
        );
        let mut fs = FaultState::new(&plan, 1);
        let corrupted = (0..100)
            .filter(|&i| {
                matches!(
                    fs.draw_transfer_fault(10_342, i),
                    Some(LinkFault::Corrupted { .. })
                )
            })
            .count();
        assert!(corrupted > 90, "corrupted {corrupted}/100");
    }

    #[test]
    fn battery_scales_stay_positive_and_deterministic() {
        let plan = FaultPlan::new(FaultProfile::harsh(), 5);
        let a = FaultState::battery_scales(&plan, 4);
        let b = FaultState::battery_scales(&plan, 4);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s > 0.5 && s <= 1.4));
        // Variance actually present: not all identical.
        assert!(a.iter().any(|&s| (s - a[0]).abs() > 1e-9) || a[0] != 1.0);
    }

    #[test]
    fn brownout_intervals_bracket_the_mean() {
        let plan = FaultPlan::new(FaultProfile::brownout(), 11);
        let mut fs = FaultState::new(&plan, 2);
        for _ in 0..100 {
            let iv = fs.next_brownout_interval().as_secs_f64();
            assert!((300.0..=900.0).contains(&iv), "interval {iv}");
        }
    }
}
