//! Node-rotation configuration (§5.5).
//!
//! "If we can shuffle the workload on all nodes, such that the
//! lightly-loaded nodes will have more workload and the heavily-loaded
//! nodes can rest, then the workload on each node will be evened out
//! after a few shuffles."
//!
//! Mechanics implemented in [`pipeline`](crate::pipeline): every
//! `period_frames` frames, one frame is tagged as the rotation frame. The
//! node at the head of the pipeline processes its own share *and* the next
//! share on that frame (with its data already local), eliminating one
//! SEND/RECV pair, and every node's role shifts by one — the tail node
//! rotates to the front. Throughput is preserved: the host still emits one
//! frame and receives one result every `D`.

use dles_sim::SimTime;

/// Rotation parameters.
#[derive(Debug, Clone, Copy)]
pub struct RotationConfig {
    /// Rotate once every this many frames (the paper uses 100, §6.7).
    pub period_frames: u64,
    /// Idle time a node spends reloading code while reconfiguring into its
    /// new role ("It should be sufficient for both nodes to load the new
    /// code into memory", §5.5).
    pub reconfig_delay: SimTime,
}

impl RotationConfig {
    /// The paper's §6.7 configuration: rotate every 100 frames.
    pub fn paper() -> Self {
        RotationConfig {
            period_frames: 100,
            reconfig_delay: SimTime::from_millis(50),
        }
    }

    /// Rotation with a custom period (ablation sweeps).
    pub fn every(period_frames: u64) -> Self {
        assert!(period_frames > 0, "rotation period must be positive");
        RotationConfig {
            period_frames,
            ..Self::paper()
        }
    }

    /// Is `frame` a rotation frame? Frame 0 never rotates (nothing to
    /// balance yet).
    pub fn triggers_on(&self, frame: u64) -> bool {
        frame > 0 && frame % self.period_frames == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_rotates_every_100() {
        let r = RotationConfig::paper();
        assert!(!r.triggers_on(0));
        assert!(!r.triggers_on(99));
        assert!(r.triggers_on(100));
        assert!(r.triggers_on(200));
        assert!(!r.triggers_on(150));
    }

    #[test]
    fn custom_period() {
        let r = RotationConfig::every(1);
        assert!(r.triggers_on(1));
        assert!(r.triggers_on(2));
        assert!(!r.triggers_on(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = RotationConfig::every(0);
    }
}
