//! Power-failure recovery configuration (§5.4).
//!
//! "Each sending transaction must be acknowledged by the receiver. A
//! timeout mechanism is used on each node to detect the failure of the
//! neighboring nodes. The computation share of the failed node will then
//! migrate to one of its neighboring nodes."
//!
//! The protocol is expensive by design: every acknowledgment is a separate
//! 50–100 ms serial transaction, so the nodes must run at faster DVS
//! levels to stay within the frame delay — "the node will fail even
//! sooner" per transaction, traded for the ability to keep computing after
//! a neighbor dies.

use dles_sim::SimTime;

/// Recovery-protocol parameters.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// How long a sender waits for an acknowledgment before declaring the
    /// receiver dead. Must exceed the worst-case ack latency (100 ms).
    pub ack_wait: SimTime,
    /// How long a mid-pipeline node tolerates receiving no data before
    /// checking whether its upstream neighbor died.
    pub recv_timeout: SimTime,
    /// Idle time spent reloading code when a survivor absorbs a dead
    /// neighbor's share.
    pub migration_delay: SimTime,
    /// How many times an unacknowledged transfer is retransmitted to a
    /// live receiver before the frame is abandoned. Retransmission only
    /// matters on lossy links; on a healthy link the first ack timeout
    /// against a live target never fires.
    pub max_retries: u32,
}

impl RecoveryConfig {
    /// Defaults scaled to the paper's timing: ack wait of 2× the
    /// worst-case ack, receive timeout of two frame delays.
    pub fn paper() -> Self {
        RecoveryConfig {
            ack_wait: SimTime::from_millis(200),
            recv_timeout: SimTime::from_secs_f64(2.0 * 2.3),
            migration_delay: SimTime::from_millis(100),
            max_retries: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_wait_exceeds_worst_case_ack() {
        let r = RecoveryConfig::paper();
        assert!(r.ack_wait > SimTime::from_millis(100));
        assert!(r.recv_timeout > SimTime::from_secs_f64(2.3));
    }
}
