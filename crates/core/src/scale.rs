//! Generalization beyond two nodes.
//!
//! §5.3: "We experiment with two Itsy nodes, although the results do
//! generalize to more nodes." This module builds the N-node counterparts
//! of the §6 configurations — best feasible partition, optional DVS during
//! I/O, optional rotation — and runs them to battery exhaustion, in
//! parallel across configurations.
//!
//! It also provides *lifetime-based* partition selection
//! ([`best_partition_by_lifetime`]): instead of ranking schemes by the
//! CMOS power proxy `Σ f·V²` (which optimizes global energy, exactly the
//! trap §6.4 documents), rank them by the simulated lifetime of their
//! first-failing battery.

use crate::experiment::Experiment;
use crate::metrics::ExperimentResult;
use crate::partition::{analyze_partition, PartitionAnalysis};
use crate::pipeline::{run_pipeline, PipelineConfig};
use crate::policy::DvsPolicy;
use crate::rotation::RotationConfig;
use crate::workload::SystemConfig;
use dles_atr::blocks::partitions;
use dles_sim::SimTime;
use std::sync::Mutex;

/// One row of the N-node scaling study.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    pub n_nodes: usize,
    pub technique: String,
    /// DVS levels of the chosen partition.
    pub levels_mhz: Vec<dles_units::Hertz>,
    pub life_hours: f64,
    pub normalized_hours: f64,
    pub frames_completed: u64,
    pub deadline_misses: u64,
}

/// Build the N-node configuration for a technique, using the best
/// feasible partition. Returns `None` when no partition is feasible.
pub fn n_node_config(
    sys: &SystemConfig,
    n: usize,
    policy: DvsPolicy,
    rotation: Option<RotationConfig>,
) -> Option<PipelineConfig> {
    let best = crate::partition::best_partition(sys, n)?;
    let mut cfg = Experiment::Exp2.config();
    cfg.label = format!("{n}-node");
    cfg.sys = sys.clone();
    cfg.shares = best.shares.clone();
    cfg.levels = best.levels.iter().map(|l| l.expect("feasible")).collect();
    cfg.policy = policy;
    cfg.rotation = rotation;
    Some(cfg)
}

/// Run the scaling study: for each node count, static partitioning and
/// partitioning + rotation (+ DVS during I/O), to battery exhaustion.
/// Configurations run concurrently on scoped threads.
pub fn scaling_study(sys: &SystemConfig, max_nodes: usize) -> Vec<ScaleRow> {
    assert!((1..=4).contains(&max_nodes), "1..=4 nodes supported");
    let mut jobs: Vec<(usize, String, PipelineConfig)> = Vec::new();
    for n in 1..=max_nodes {
        if let Some(cfg) = n_node_config(sys, n, DvsPolicy::DvsDuringIo, None) {
            jobs.push((n, "static + DVS during I/O".into(), cfg));
        }
        if n >= 2 {
            if let Some(cfg) = n_node_config(
                sys,
                n,
                DvsPolicy::DvsDuringIo,
                Some(RotationConfig::paper()),
            ) {
                jobs.push((n, "rotation + DVS during I/O".into(), cfg));
            }
        }
    }
    let results: Mutex<Vec<ScaleRow>> = Mutex::new(Vec::with_capacity(jobs.len()));
    std::thread::scope(|s| {
        for (n, technique, cfg) in jobs {
            let results = &results;
            s.spawn(move || {
                let levels = cfg.levels.iter().map(|l| l.freq_mhz).collect();
                let r: ExperimentResult = run_pipeline(cfg);
                results.lock().unwrap().push(ScaleRow {
                    n_nodes: n,
                    technique,
                    levels_mhz: levels,
                    life_hours: r.life_hours(),
                    normalized_hours: r.normalized_life_hours(),
                    frames_completed: r.frames_completed,
                    deadline_misses: r.deadline_misses,
                });
            });
        }
    });
    let mut rows = results.into_inner().unwrap();
    rows.sort_by(|a, b| (a.n_nodes, &a.technique).cmp(&(b.n_nodes, &b.technique)));
    rows
}

/// Rank every feasible N-node partition by *simulated system lifetime*
/// (time to first battery failure) instead of the power proxy, and return
/// the winner with its lifetime in hours. Candidates are simulated
/// concurrently.
///
/// This is the fix for the paper's §6.4 observation: "Minimizing global
/// energy does not guarantee to extend the lifetime for all batteries."
pub fn best_partition_by_lifetime(
    sys: &SystemConfig,
    n: usize,
    policy: DvsPolicy,
) -> Option<(PartitionAnalysis, f64)> {
    let candidates: Vec<PartitionAnalysis> = partitions(n)
        .iter()
        .map(|ranges| analyze_partition(sys, ranges, SimTime::ZERO))
        .filter(PartitionAnalysis::is_feasible)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let lifetimes: Mutex<Vec<f64>> = Mutex::new(vec![0.0; candidates.len()]);
    std::thread::scope(|s| {
        for (i, cand) in candidates.iter().enumerate() {
            let lifetimes = &lifetimes;
            s.spawn(move || {
                let mut cfg = Experiment::Exp2.config();
                cfg.label = format!("{n}-node candidate {i}");
                cfg.sys = sys.clone();
                cfg.shares = cand.shares.clone();
                cfg.levels = cand.levels.iter().map(|l| l.expect("feasible")).collect();
                cfg.policy = policy;
                let r = run_pipeline(cfg);
                lifetimes.lock().unwrap()[i] = r.life_hours();
            });
        }
    });
    let lifetimes = lifetimes.into_inner().unwrap();
    let best_idx = best_lifetime_index(&lifetimes)?;
    Some((candidates[best_idx].clone(), lifetimes[best_idx]))
}

/// Index of the longest lifetime, NaN-safe and deterministic: NaN entries
/// (a candidate whose simulation produced no defined lifetime) are
/// ignored rather than panicking, and ties resolve to the lowest index so
/// the ranking is stable regardless of how the candidate list is walked.
pub fn best_lifetime_index(lifetimes: &[f64]) -> Option<usize> {
    lifetimes
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
}

/// Render the scaling study as a text table.
pub fn render_scaling(rows: &[ScaleRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "N-node scaling study (best feasible partitions)\n\
         {:>2} {:<28} {:<28} {:>8} {:>8} {:>8} {:>7}",
        "N", "technique", "levels (MHz)", "T (h)", "T/N (h)", "frames", "misses"
    );
    let _ = writeln!(out, "{}", "-".repeat(96));
    for r in rows {
        let levels: Vec<String> = r
            .levels_mhz
            .iter()
            .map(|f| format!("{:.1}", f.mhz()))
            .collect();
        let _ = writeln!(
            out,
            "{:>2} {:<28} {:<28} {:>8.2} {:>8.2} {:>8} {:>7}",
            r.n_nodes,
            r.technique,
            levels.join("/"),
            r.life_hours,
            r.normalized_hours,
            r.frames_completed,
            r.deadline_misses
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_node_configs_build_for_all_supported_sizes() {
        let sys = SystemConfig::paper();
        for n in 1..=4 {
            let cfg = n_node_config(&sys, n, DvsPolicy::DvsDuringIo, None)
                .unwrap_or_else(|| panic!("{n}-node partition should be feasible"));
            assert_eq!(cfg.n_nodes(), n);
        }
    }

    #[test]
    fn lifetime_ranking_returns_a_feasible_scheme() {
        let sys = SystemConfig::paper();
        let (best, hours) =
            best_partition_by_lifetime(&sys, 2, DvsPolicy::FixedLevel).expect("feasible");
        assert!(best.is_feasible());
        assert!(hours > 10.0, "2-node lifetime {hours} h");
        // For the paper's workload the proxy-best and lifetime-best
        // coincide (scheme 1 wins on both counts) — the interesting
        // divergence cases are exercised in the ablation bench with
        // modified link speeds.
        let proxy_best = crate::partition::best_partition(&sys, 2).unwrap();
        assert_eq!(best.shares[0].range, proxy_best.shares[0].range);
    }

    #[test]
    fn lifetime_ranking_ties_break_to_the_lowest_index() {
        // Pre-fix, `max_by` kept the *last* maximum, so the winner
        // depended on candidate enumeration order.
        assert_eq!(best_lifetime_index(&[1.0, 5.0, 5.0]), Some(1));
        assert_eq!(best_lifetime_index(&[7.0, 7.0, 7.0]), Some(0));
    }

    #[test]
    fn lifetime_ranking_survives_nan() {
        // Pre-fix, any NaN lifetime panicked ("NaN lifetime"); with
        // `total_cmp` alone NaN would outrank +inf. Both are wrong:
        // NaN candidates are simply not eligible.
        assert_eq!(best_lifetime_index(&[2.0, f64::NAN, 3.0]), Some(2));
        assert_eq!(best_lifetime_index(&[f64::NAN, f64::NAN]), None);
        assert_eq!(best_lifetime_index(&[]), None);
    }

    #[test]
    fn render_scaling_formats() {
        let rows = vec![ScaleRow {
            n_nodes: 2,
            technique: "rotation".into(),
            levels_mhz: vec![
                dles_units::Hertz::from_mhz(59.0),
                dles_units::Hertz::from_mhz(103.2),
            ],
            life_hours: 17.5,
            normalized_hours: 8.75,
            frames_completed: 27_000,
            deadline_misses: 0,
        }];
        let text = render_scaling(&rows);
        assert!(text.contains("59.0/103.2"));
        assert!(text.contains("17.50"));
    }
}
