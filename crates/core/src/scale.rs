//! Generalization beyond two nodes.
//!
//! §5.3: "We experiment with two Itsy nodes, although the results do
//! generalize to more nodes." This module builds the N-node counterparts
//! of the §6 configurations — best feasible partition, optional DVS during
//! I/O, optional rotation — and runs them to battery exhaustion through
//! the [`crate::sweep`] engine: in parallel across configurations, with
//! byte-identical output for any worker count, and with identical
//! configurations simulated at most once.
//!
//! It also provides *lifetime-based* partition selection
//! ([`best_partition_by_lifetime`]): instead of ranking schemes by the
//! CMOS power proxy `Σ f·V²` (which optimizes global energy, exactly the
//! trap §6.4 documents), rank them by the simulated lifetime of their
//! first-failing battery.

use crate::experiment::Experiment;
use crate::partition::{analyze_partition, PartitionAnalysis};
use crate::pipeline::PipelineConfig;
use crate::policy::DvsPolicy;
use crate::rotation::RotationConfig;
use crate::sweep::SweepEngine;
use crate::workload::SystemConfig;
use dles_atr::blocks::partitions;
use dles_sim::SimTime;
use dles_units::Hours;

/// One row of the N-node scaling study. Node counts with no feasible
/// partition still get a row (`feasible == false`) so the Fig. 10-style
/// table never silently renumbers: every `n` in `1..=max_nodes` appears.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    pub n_nodes: usize,
    pub technique: String,
    /// `false` marks an explicit infeasible row: no partition of the
    /// chain across `n_nodes` meets the frame deadline, nothing was
    /// simulated, and the numeric columns are zero.
    pub feasible: bool,
    /// DVS levels of the chosen partition (empty when infeasible).
    pub levels_mhz: Vec<dles_units::Hertz>,
    pub life_hours: Hours,
    pub normalized_hours: Hours,
    pub frames_completed: u64,
    pub deadline_misses: u64,
}

/// Build the N-node configuration for a technique, using the best
/// feasible partition. Returns `None` when no partition is feasible.
pub fn n_node_config(
    sys: &SystemConfig,
    n: usize,
    policy: DvsPolicy,
    rotation: Option<RotationConfig>,
) -> Option<PipelineConfig> {
    let best = crate::partition::best_partition(sys, n)?;
    let mut cfg = Experiment::Exp2.config();
    cfg.label = format!("{n}-node");
    cfg.sys = sys.clone();
    cfg.shares = best.shares.clone();
    cfg.levels = best.levels.iter().map(|l| l.expect("feasible")).collect();
    cfg.policy = policy;
    cfg.rotation = rotation;
    Some(cfg)
}

/// Run the scaling study with a fresh sweep engine and one worker per
/// core. See [`scaling_study_with`].
pub fn scaling_study(sys: &SystemConfig, max_nodes: usize) -> Vec<ScaleRow> {
    scaling_study_with(&SweepEngine::new(), sys, max_nodes, 0)
}

/// Run the scaling study through `engine`: for each node count, static
/// partitioning and partitioning + rotation (+ DVS during I/O), to
/// battery exhaustion. Identical configurations (within this sweep or
/// cached from an earlier one) are simulated only once, and the returned
/// rows are byte-identical for any `threads` (0 = one worker per core).
pub fn scaling_study_with(
    engine: &SweepEngine,
    sys: &SystemConfig,
    max_nodes: usize,
    threads: usize,
) -> Vec<ScaleRow> {
    assert!((1..=4).contains(&max_nodes), "1..=4 nodes supported");
    // One planned row per (n, technique) — infeasible ones keep a `None`
    // job so they surface as explicit marker rows instead of vanishing.
    let mut plan: Vec<(usize, String, Option<PipelineConfig>)> = Vec::new();
    for n in 1..=max_nodes {
        plan.push((
            n,
            "static + DVS during I/O".into(),
            n_node_config(sys, n, DvsPolicy::DvsDuringIo, None),
        ));
        if n >= 2 {
            plan.push((
                n,
                "rotation + DVS during I/O".into(),
                n_node_config(
                    sys,
                    n,
                    DvsPolicy::DvsDuringIo,
                    Some(RotationConfig::paper()),
                ),
            ));
        }
    }
    let jobs: Vec<PipelineConfig> = plan.iter().filter_map(|(_, _, cfg)| cfg.clone()).collect();
    let mut results = engine.run(&jobs, threads).into_iter();
    let mut rows: Vec<ScaleRow> = plan
        .into_iter()
        .map(|(n, technique, cfg)| match cfg {
            Some(cfg) => {
                let r = results.next().expect("one result per feasible job");
                ScaleRow {
                    n_nodes: n,
                    technique,
                    feasible: true,
                    levels_mhz: cfg.levels.iter().map(|l| l.freq_mhz).collect(),
                    life_hours: Hours::new(r.life_hours()),
                    normalized_hours: Hours::new(r.normalized_life_hours()),
                    frames_completed: r.frames_completed,
                    deadline_misses: r.deadline_misses,
                }
            }
            None => ScaleRow {
                n_nodes: n,
                technique,
                feasible: false,
                levels_mhz: Vec::new(),
                life_hours: Hours::ZERO,
                normalized_hours: Hours::ZERO,
                frames_completed: 0,
                deadline_misses: 0,
            },
        })
        .collect();
    rows.sort_by(|a, b| (a.n_nodes, &a.technique).cmp(&(b.n_nodes, &b.technique)));
    rows
}

/// Rank every feasible N-node partition by *simulated system lifetime*
/// (time to first battery failure) instead of the power proxy, and return
/// the winner with its lifetime in hours. Candidates are simulated
/// concurrently through a fresh sweep engine.
///
/// This is the fix for the paper's §6.4 observation: "Minimizing global
/// energy does not guarantee to extend the lifetime for all batteries."
pub fn best_partition_by_lifetime(
    sys: &SystemConfig,
    n: usize,
    policy: DvsPolicy,
) -> Option<(PartitionAnalysis, f64)> {
    best_partition_by_lifetime_with(&SweepEngine::new(), sys, n, policy, 0)
}

/// [`best_partition_by_lifetime`] through a caller-supplied engine, so
/// repeated rankings (and overlapping sweeps) reuse cached simulations.
pub fn best_partition_by_lifetime_with(
    engine: &SweepEngine,
    sys: &SystemConfig,
    n: usize,
    policy: DvsPolicy,
    threads: usize,
) -> Option<(PartitionAnalysis, f64)> {
    let candidates: Vec<PartitionAnalysis> = partitions(n)
        .iter()
        .map(|ranges| analyze_partition(sys, ranges, SimTime::ZERO))
        .filter(PartitionAnalysis::is_feasible)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let jobs: Vec<PipelineConfig> = candidates
        .iter()
        .enumerate()
        .map(|(i, cand)| {
            let mut cfg = Experiment::Exp2.config();
            cfg.label = format!("{n}-node candidate {i}");
            cfg.sys = sys.clone();
            cfg.shares = cand.shares.clone();
            cfg.levels = cand.levels.iter().map(|l| l.expect("feasible")).collect();
            cfg.policy = policy;
            cfg
        })
        .collect();
    let lifetimes: Vec<f64> = engine
        .run(&jobs, threads)
        .iter()
        .map(|r| r.life_hours())
        .collect();
    // Single ranking path: every lifetime comparison in this module goes
    // through `best_lifetime_index`, so candidate selection and any
    // caller-side re-ranking of the same vector cannot disagree.
    let best_idx = best_lifetime_index(&lifetimes)?;
    Some((candidates[best_idx].clone(), lifetimes[best_idx]))
}

/// THE lifetime-ranking helper: index of the longest lifetime, NaN-safe
/// and deterministic. NaN entries (a candidate whose simulation produced
/// no defined lifetime) are ignored rather than panicking or outranking
/// `+inf`, and ties resolve to the lowest index so the ranking is stable
/// regardless of how the candidate list is walked. Both
/// [`best_partition_by_lifetime`] and every report-side re-ranking must
/// go through this function — the property test below pins the agreement.
pub fn best_lifetime_index(lifetimes: &[f64]) -> Option<usize> {
    lifetimes
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
}

/// Render the scaling study as a text table.
pub fn render_scaling(rows: &[ScaleRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "N-node scaling study (best feasible partitions)\n\
         {:>2} {:<28} {:<28} {:>8} {:>8} {:>8} {:>7}",
        "N", "technique", "levels (MHz)", "T (h)", "T/N (h)", "frames", "misses"
    );
    let _ = writeln!(out, "{}", "-".repeat(96));
    for r in rows {
        if !r.feasible {
            let _ = writeln!(
                out,
                "{:>2} {:<28} {:<28} {:>8} {:>8} {:>8} {:>7}",
                r.n_nodes, r.technique, "infeasible", "-", "-", "-", "-"
            );
            continue;
        }
        let levels: Vec<String> = r
            .levels_mhz
            .iter()
            .map(|f| format!("{:.1}", f.mhz()))
            .collect();
        let _ = writeln!(
            out,
            "{:>2} {:<28} {:<28} {:>8.2} {:>8.2} {:>8} {:>7}",
            r.n_nodes,
            r.technique,
            levels.join("/"),
            r.life_hours.get(),
            r.normalized_hours.get(),
            r.frames_completed,
            r.deadline_misses
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dles_sim::SimRng;

    #[test]
    fn n_node_configs_build_for_all_supported_sizes() {
        let sys = SystemConfig::paper();
        for n in 1..=4 {
            let cfg = n_node_config(&sys, n, DvsPolicy::DvsDuringIo, None)
                .unwrap_or_else(|| panic!("{n}-node partition should be feasible"));
            assert_eq!(cfg.n_nodes(), n);
        }
    }

    #[test]
    fn lifetime_ranking_returns_a_feasible_scheme() {
        let sys = SystemConfig::paper();
        let (best, hours) =
            best_partition_by_lifetime(&sys, 2, DvsPolicy::FixedLevel).expect("feasible");
        assert!(best.is_feasible());
        assert!(hours > 10.0, "2-node lifetime {hours} h");
        // For the paper's workload the proxy-best and lifetime-best
        // coincide (scheme 1 wins on both counts) — the interesting
        // divergence cases are exercised in the ablation bench with
        // modified link speeds.
        let proxy_best = crate::partition::best_partition(&sys, 2).unwrap();
        assert_eq!(best.shares[0].range, proxy_best.shares[0].range);
    }

    #[test]
    fn lifetime_ranking_ties_break_to_the_lowest_index() {
        // Pre-fix, `max_by` kept the *last* maximum, so the winner
        // depended on candidate enumeration order.
        assert_eq!(best_lifetime_index(&[1.0, 5.0, 5.0]), Some(1));
        assert_eq!(best_lifetime_index(&[7.0, 7.0, 7.0]), Some(0));
    }

    #[test]
    fn lifetime_ranking_survives_nan() {
        // Pre-fix, any NaN lifetime panicked ("NaN lifetime"); with
        // `total_cmp` alone NaN would outrank +inf. Both are wrong:
        // NaN candidates are simply not eligible.
        assert_eq!(best_lifetime_index(&[2.0, f64::NAN, 3.0]), Some(2));
        assert_eq!(best_lifetime_index(&[f64::NAN, f64::NAN]), None);
        assert_eq!(best_lifetime_index(&[]), None);
    }

    /// Transparent reference ranking: walk the vector once, keep the first
    /// strictly-greatest non-NaN entry. `+inf` is an eligible lifetime.
    fn reference_best_index(lifetimes: &[f64]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, &v) in lifetimes.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    if v > lifetimes[b] {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    #[test]
    fn lifetime_ranking_property_agrees_with_reference() {
        // Seeded-loop property test: on random vectors salted with NaN
        // and ±inf, the shared helper and the transparent reference pick
        // the same winner — so any two call sites ranking the same
        // lifetime vector (candidate selection, report re-ranking) agree.
        let mut rng = SimRng::seed_from_u64(0xD1E5_CA1E);
        for trial in 0..500 {
            let len = rng.uniform_u64(0, 12) as usize;
            let lifetimes: Vec<f64> = (0..len)
                .map(|_| match rng.uniform_u64(0, 10) {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => rng.uniform_f64(0.0, 30.0), // force tie-prone dups
                    _ => (rng.uniform_u64(0, 5) as f64) * 3.5,
                })
                .collect();
            assert_eq!(
                best_lifetime_index(&lifetimes),
                reference_best_index(&lifetimes),
                "trial {trial}: rankings disagree on {lifetimes:?}"
            );
        }
    }

    #[test]
    fn scaling_study_never_drops_a_node_count() {
        // Pre-fix, a node count whose best partition was infeasible was
        // silently skipped and the Fig. 10-style table misnumbered its
        // rows. Starve the serial link so the frame traffic cannot fit in
        // the deadline: partitioned configurations (which must ship the
        // 10 KB frame over the serial line) become infeasible, and those
        // node counts must now surface as explicit marker rows.
        let mut sys = SystemConfig::paper();
        sys.serial = sys.serial.with_effective_bps(4_000.0);
        let max_nodes = 3;
        let rows = scaling_study(&sys, max_nodes);
        assert_eq!(
            rows.len(),
            1 + 2 * (max_nodes - 1),
            "one static row per n plus one rotation row per n >= 2: {rows:?}"
        );
        for n in 1..=max_nodes {
            assert!(
                rows.iter().any(|r| r.n_nodes == n),
                "node count {n} missing from {rows:?}"
            );
        }
        assert!(
            rows.iter().any(|r| !r.feasible),
            "the starved link must make at least one row infeasible: {rows:?}"
        );
        let text = render_scaling(&rows);
        assert!(text.contains("infeasible"));
    }

    #[test]
    fn render_scaling_formats() {
        let rows = vec![ScaleRow {
            n_nodes: 2,
            technique: "rotation".into(),
            feasible: true,
            levels_mhz: vec![
                dles_units::Hertz::from_mhz(59.0),
                dles_units::Hertz::from_mhz(103.2),
            ],
            life_hours: Hours::new(17.5),
            normalized_hours: Hours::new(8.75),
            frames_completed: 27_000,
            deadline_misses: 0,
        }];
        let text = render_scaling(&rows);
        assert!(text.contains("59.0/103.2"));
        assert!(text.contains("17.50"));
    }
}
