//! Partitioning analysis: the machinery behind Fig. 8 (§5.3).
//!
//! For every way to split the ATR chain across `n` nodes, compute each
//! node's required clock rate and communication payload, determine
//! feasibility under the frame deadline, and rank the feasible schemes by
//! the CMOS power proxy `Σ f·V²` of their chosen levels. The paper's
//! conclusion — scheme 1, with nodes at 59 and 103.2 MHz, is "clearly the
//! best among all three solutions" — falls out of this analysis.

use crate::workload::{NodeShare, SystemConfig};
use dles_atr::blocks::{partitions, BlockRange};
use dles_power::FreqLevel;
use dles_sim::SimTime;
use dles_units::Hertz;

/// Analysis of one candidate partitioning.
#[derive(Debug, Clone)]
pub struct PartitionAnalysis {
    /// Each node's share, in pipeline order.
    pub shares: Vec<NodeShare>,
    /// Minimum feasible DVS level per node (`None` = cannot meet D).
    pub levels: Vec<Option<FreqLevel>>,
    /// The exact required clock per node before rounding up to a
    /// level — Fig. 8's "> 206.4" row corresponds to ~380 MHz here.
    pub required_mhz: Vec<Hertz>,
}

impl PartitionAnalysis {
    /// All nodes can meet the deadline.
    pub fn is_feasible(&self) -> bool {
        self.levels.iter().all(|l| l.is_some())
    }

    /// The CMOS power proxy of the chosen levels: `Σ f·V²`. Lower is
    /// better; infeasible partitions rank as infinity.
    pub fn power_proxy(&self) -> f64 {
        if !self.is_feasible() {
            return f64::INFINITY;
        }
        self.levels
            .iter()
            .map(|l| l.expect("feasible").switching_activity())
            .sum()
    }

    /// Total cross-link payload per frame, bytes (internal + external).
    pub fn total_comm_payload(&self) -> u64 {
        self.shares.iter().map(|s| s.comm_payload_bytes()).sum()
    }

    pub fn n_nodes(&self) -> usize {
        self.shares.len()
    }

    /// Per-serial-line utilization over one frame period: the fraction of
    /// `D` each node's line to the host is busy. Node *i*'s line carries
    /// its own RECV and SEND, and — because node-to-node traffic is
    /// IP-forwarded through the host (Fig. 5) — also the neighbouring
    /// transfer on the other side of each internal hop. Utilization ≥ 1
    /// means the schedule cannot fit: the saturation §5.3 warns about
    /// ("additional communication can potentially saturate the network").
    pub fn link_utilization(&self, sys: &SystemConfig) -> Vec<f64> {
        let d = sys.frame_delay.as_secs_f64();
        let n = self.shares.len();
        (0..n)
            .map(|i| {
                let mut busy = self.shares[i].recv_time(&sys.serial).as_secs_f64()
                    + self.shares[i].send_time(&sys.serial).as_secs_f64();
                // Internal hops occupy both endpoints' lines: the transfer
                // into node i also busies node i-1's line (already counted
                // there as its send); nothing extra to add — but transfers
                // *between other nodes* never touch line i, so the per-line
                // sum above is complete.
                busy /= d;
                busy
            })
            .collect()
    }

    /// `true` when every line's utilization is strictly below 1.
    pub fn network_feasible(&self, sys: &SystemConfig) -> bool {
        self.link_utilization(sys).iter().all(|&u| u < 1.0)
    }
}

/// Analyze one partitioning under `sys`, with `ack_overhead` of control
/// traffic per node per frame (zero except for power-failure recovery).
pub fn analyze_partition(
    sys: &SystemConfig,
    ranges: &[BlockRange],
    ack_overhead: SimTime,
) -> PartitionAnalysis {
    assert!(!ranges.is_empty(), "empty partition");
    let shares: Vec<NodeShare> = ranges
        .iter()
        .map(|&r| NodeShare::from_profile(&sys.profile, r))
        .collect();
    let levels = shares
        .iter()
        .map(|s| s.min_feasible_level(sys, ack_overhead))
        .collect();
    let required_mhz = shares
        .iter()
        .map(|s| s.required_mhz(sys, ack_overhead))
        .collect();
    PartitionAnalysis {
        shares,
        levels,
        required_mhz,
    }
}

/// The three 2-node schemes of Fig. 8, analyzed, in the figure's order.
pub fn fig8_schemes(sys: &SystemConfig) -> Vec<PartitionAnalysis> {
    partitions(2)
        .iter()
        .map(|ranges| analyze_partition(sys, ranges, SimTime::ZERO))
        .collect()
}

/// The best feasible partitioning over `n_nodes` (lowest power proxy;
/// ties broken toward less communication). `None` when nothing is
/// feasible — which the paper warns happens under excessive internal
/// communication (§5.3).
pub fn best_partition(sys: &SystemConfig, n_nodes: usize) -> Option<PartitionAnalysis> {
    partitions(n_nodes)
        .iter()
        .map(|ranges| analyze_partition(sys, ranges, SimTime::ZERO))
        .filter(PartitionAnalysis::is_feasible)
        .min_by(|a, b| {
            rank_order(
                (a.power_proxy(), a.total_comm_payload()),
                (b.power_proxy(), b.total_comm_payload()),
            )
        })
}

/// Deterministic preference between two `(power proxy, comm payload)`
/// keys: lower proxy wins, ties break toward less communication.
/// `total_cmp` keeps the order total even for a NaN proxy — NaN ranks
/// last (worst), so a degenerate candidate can never panic the search
/// or, worse, win it.
fn rank_order(a: (f64, u64), b: (f64, u64)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemConfig {
        SystemConfig::paper()
    }

    #[test]
    fn rank_order_is_total_under_nan_proxies() {
        use std::cmp::Ordering;
        // Pre-D004 a NaN power proxy panicked best_partition; now it must
        // rank strictly worse than any finite or infinite proxy.
        assert_eq!(rank_order((f64::NAN, 0), (1.0, 9)), Ordering::Greater);
        assert_eq!(rank_order((1.0, 9), (f64::NAN, 0)), Ordering::Less);
        assert_eq!(
            rank_order((f64::INFINITY, 0), (f64::NAN, 0)),
            Ordering::Less
        );
        // Equal proxies: fewer communicated bytes win.
        assert_eq!(rank_order((2.0, 10), (2.0, 20)), Ordering::Less);
        // NaN vs NaN is still deterministic (Equal), never a panic.
        assert_eq!(rank_order((f64::NAN, 3), (f64::NAN, 3)), Ordering::Equal);
    }

    #[test]
    fn fig8_has_three_schemes_with_correct_feasibility() {
        let schemes = fig8_schemes(&sys());
        assert_eq!(schemes.len(), 3);
        assert!(schemes[0].is_feasible(), "scheme 1 must be feasible");
        assert!(
            !schemes[2].is_feasible(),
            "scheme 3 must be infeasible (Node1 needs ~380 MHz)"
        );
    }

    #[test]
    fn scheme1_is_the_best_partition() {
        let s = sys();
        let best = best_partition(&s, 2).expect("a feasible 2-node partition exists");
        // The winner is (Target Detect.)(FFT+IFFT+Comp. Distance) at
        // 59 / 103.2 MHz — Fig. 8 row 1.
        assert_eq!(best.shares[0].range, BlockRange::new(0, 1));
        assert_eq!(best.shares[1].range, BlockRange::new(1, 4));
        let levels: Vec<f64> = best
            .levels
            .iter()
            .map(|l| l.unwrap().freq_mhz.mhz())
            .collect();
        assert_eq!(levels, vec![59.0, 103.2]);
    }

    #[test]
    fn single_node_partition_is_the_baseline() {
        let s = sys();
        let best = best_partition(&s, 1).expect("baseline feasible");
        assert_eq!(best.n_nodes(), 1);
        assert_eq!(
            best.levels[0].unwrap().freq_mhz.mhz(),
            206.4,
            "the whole algorithm only fits at the peak clock"
        );
    }

    #[test]
    fn power_proxy_ranks_scheme1_below_scheme2() {
        let schemes = fig8_schemes(&sys());
        assert!(
            schemes[0].power_proxy() < schemes[1].power_proxy(),
            "scheme 1 ({}) should beat scheme 2 ({})",
            schemes[0].power_proxy(),
            schemes[1].power_proxy()
        );
        assert_eq!(schemes[2].power_proxy(), f64::INFINITY);
    }

    #[test]
    fn node1_dominates_communication_in_scheme1() {
        // §5.3: Node1 "takes more than 90% of the total communication
        // payload in addition to its 10% share of the total computation".
        let schemes = fig8_schemes(&sys());
        let s1 = &schemes[0];
        let n1_comm = s1.shares[0].comm_payload_bytes() as f64;
        let total = s1.total_comm_payload() as f64;
        assert!(n1_comm / total > 0.9, "Node1 share {}", n1_comm / total);
        let n1_comp = s1.shares[0].proc_peak_secs.get();
        let total_comp: f64 = s1.shares.iter().map(|s| s.proc_peak_secs.get()).sum();
        assert!((n1_comp / total_comp - 0.15).abs() < 0.1);
    }

    #[test]
    fn ack_overhead_forces_faster_levels() {
        // §5.4 / §6.6: with recovery's control messages both nodes must run
        // faster than the 59/103.2 of plain partitioning.
        let s = sys();
        let ranges = [BlockRange::new(0, 1), BlockRange::new(1, 4)];
        let plain = analyze_partition(&s, &ranges, SimTime::ZERO);
        let with_acks = analyze_partition(&s, &ranges, SimTime::from_millis(450));
        for (p, a) in plain.levels.iter().zip(&with_acks.levels) {
            let (p, a) = (p.unwrap(), a.unwrap());
            assert!(a.freq_mhz >= p.freq_mhz);
        }
        assert!(
            with_acks.levels[1].unwrap().freq_mhz > plain.levels[1].unwrap().freq_mhz,
            "Node2 must be forced up"
        );
    }

    #[test]
    fn four_node_partition_feasibility() {
        // With 4 nodes every node runs one block; internal 7.5 KB payloads
        // make middle nodes I/O-heavy, but the configuration remains
        // feasible under D = 2.3 s.
        let s = sys();
        let best = best_partition(&s, 4);
        assert!(best.is_some());
        let best = best.unwrap();
        assert_eq!(best.n_nodes(), 4);
        // Every node at or below the scheme-1 Node2 level's successor —
        // distributed DVS opportunity widens with more nodes.
        for l in &best.levels {
            assert!(l.unwrap().freq_mhz.mhz() <= 118.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty partition")]
    fn empty_partition_rejected() {
        let _ = analyze_partition(&sys(), &[], SimTime::ZERO);
    }

    #[test]
    fn scheme1_link_utilization_is_asymmetric_and_feasible() {
        let s = sys();
        let schemes = fig8_schemes(&s);
        let util = schemes[0].link_utilization(&s);
        // Node1's line carries the 10.1 KB frames (~54% of D); Node2's
        // line only the small internal + result payloads (~10%).
        assert!((util[0] - 0.54).abs() < 0.05, "line1 {util:?}");
        assert!(util[1] < 0.15, "line2 {util:?}");
        assert!(schemes[0].network_feasible(&s));
    }

    #[test]
    fn slow_link_saturates_the_network() {
        let mut s = sys();
        s.serial = s.serial.with_effective_bps(30_000.0);
        let schemes = fig8_schemes(&s);
        assert!(
            !schemes[0].network_feasible(&s),
            "30 kbps cannot carry the frame traffic within D: {:?}",
            schemes[0].link_utilization(&s)
        );
    }
}
