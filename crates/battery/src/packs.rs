//! Calibrated parameter sets for the Itsy's 4 V lithium-ion pack.
//!
//! The paper itself warns (§6.1) that the no-I/O experiments (0A)/(0B)
//! "are not to be compared with other experiments": their implied charge
//! delivery is inconsistent with the pipelined series under any single
//! battery state (different packs, cycle ageing, temperature). We therefore
//! keep **two** parameter sets:
//!
//! * **pack A** — fits the no-I/O anchors (0A: 3.4 h at full-speed
//!   computation; 0B: 12.9 h at half speed), exhibiting the strong
//!   rate-capacity fade those two points imply;
//! * **pack B** — fits the I/O-bound series anchored on the baseline
//!   (1: 6.13 h) and partitioned (2: 14.1 h) experiments.
//!
//! The constants below were produced by [`calibrate`](crate::calibrate)
//! (see the `repro --calibrate` subcommand in `dles-bench`, which re-runs
//! the fit and prints residuals); they are checked against the anchors in
//! this module's tests.

use crate::kibam::{KibamBattery, KibamParams};
use dles_units::MilliAmpHours;

/// A named, calibrated battery parameter set.
#[derive(Debug, Clone, Copy)]
pub struct PackParams {
    pub name: &'static str,
    pub kibam: KibamParams,
}

/// Pack A: the battery state of the no-I/O experiments (0A)/(0B).
///
/// A tiny available well with a fast valve: sustained delivery is limited
/// by the valve's steady-state flow, producing the strong rate-capacity
/// fade the 0A/0B pair implies (fit residuals: 0A 3.42 h vs 3.4 h
/// measured; 0B 12.61 h vs 12.9 h).
pub fn itsy_pack_a() -> PackParams {
    PackParams {
        name: "itsy-pack-A",
        kibam: KibamParams {
            capacity_mah: MilliAmpHours::new(992.7),
            c: 0.039_43,
            k: 5.773,
        },
    }
}

/// Pack B: the battery state of the I/O-bound pipelined series (1…2C).
///
/// Milder rate-capacity fade and a slower valve (τ ≈ 6 h), fit to the
/// baseline, partitioning and rotation anchors (residuals: exp 1 — 5.95 h
/// vs 6.13 h; exp 2 — 14.02 h vs 14.1 h; exp 2C — 17.44 h vs 17.82 h; the
/// 1A anchor is deliberately down-weighted, see `calibrate_packs`).
pub fn itsy_pack_b() -> PackParams {
    PackParams {
        name: "itsy-pack-B",
        kibam: KibamParams {
            capacity_mah: MilliAmpHours::new(963.2),
            c: 0.641_2,
            k: 0.167_2,
        },
    }
}

impl PackParams {
    /// A fresh battery with these parameters.
    pub fn fresh(&self) -> KibamBattery {
        KibamBattery::from_params(self.kibam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Battery;

    #[test]
    fn packs_construct_valid_batteries() {
        for pack in [itsy_pack_a(), itsy_pack_b()] {
            let b = pack.fresh();
            assert!(!b.is_exhausted());
            assert!(b.available_mah().get() > 0.0);
            assert!(b.bound_mah().get() > 0.0);
        }
    }

    #[test]
    fn pack_a_shows_strong_rate_capacity_fade() {
        use crate::model::Battery;
        use crate::profile::{simulate_lifetime, LoadProfile};
        let mut fast = itsy_pack_a().fresh();
        let fast_life = simulate_lifetime(&mut fast, &LoadProfile::constant(130.0));
        let mut slow = itsy_pack_a().fresh();
        let slow_life = simulate_lifetime(&mut slow, &LoadProfile::constant(59.0));
        // 0B delivered ~1.6× the charge of 0A in the paper.
        let ratio = slow_life.delivered_mah / fast_life.delivered_mah;
        assert!(ratio > 1.3, "charge ratio {ratio}");
        let _ = fast.delivered_mah();
    }
}
