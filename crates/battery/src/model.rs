//! The [`Battery`] trait: what the node simulator needs from a battery.

use dles_sim::SimTime;
use dles_units::{MilliAmpHours, MilliAmps, StateOfCharge};

/// Result of asking a battery to sustain a constant current for a duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DischargeOutcome {
    /// The battery survived the whole segment.
    Survived,
    /// The battery was exhausted `after` into the segment (`after` ≤ the
    /// requested duration). The node powering from it dies at that instant.
    Exhausted { after: SimTime },
}

impl DischargeOutcome {
    pub fn is_exhausted(&self) -> bool {
        matches!(self, DischargeOutcome::Exhausted { .. })
    }
}

/// A battery that can be discharged by piecewise-constant currents.
///
/// All implementations are deterministic and support *rests* (zero or low
/// current segments); whether a rest recovers capacity depends on the model.
pub trait Battery {
    /// Draw `current_ma` for `duration`. If the battery dies mid-segment,
    /// the internal state is left exactly at the point of death and the
    /// offset is reported; subsequent calls keep reporting exhaustion at
    /// offset zero.
    fn discharge(&mut self, duration: SimTime, current_ma: MilliAmps) -> DischargeOutcome;

    /// `true` once the battery can no longer deliver current.
    fn is_exhausted(&self) -> bool;

    /// Remaining fraction of *nominally extractable* charge in `[0, 1]`.
    ///
    /// For the two-well model this is total stored charge over nominal
    /// capacity — it can be positive at death (bound charge that could not
    /// be extracted fast enough: the paper's "loss of battery capacities").
    fn state_of_charge(&self) -> f64;

    /// [`Battery::state_of_charge`] as a typed quantity — the SoC
    /// estimator the adaptive scheduling policies observe. It reads the
    /// model state settled at the last discharge segment (an estimate, not
    /// an oracle: a node mid-segment reports the SoC at its last
    /// transition), which keeps policy decisions a pure function of the
    /// event history.
    fn soc_estimate(&self) -> StateOfCharge {
        StateOfCharge::new(self.state_of_charge())
    }

    /// Nominal (rated, low-rate) capacity.
    fn nominal_capacity_mah(&self) -> MilliAmpHours;

    /// Total charge actually delivered so far.
    fn delivered_mah(&self) -> MilliAmpHours;

    /// Restore the battery to full (a fresh pack of the same parameters).
    fn reset(&mut self);

    /// How long the battery could sustain a constant `current_ma` from its
    /// current state before exhaustion. `None` means "indefinitely"
    /// (zero current). Must be consistent with [`Battery::discharge`]:
    /// discharging for strictly less than this duration survives.
    ///
    /// The simulator uses this to schedule a node's death *proactively*,
    /// so exhaustion never has to be discovered retroactively.
    fn time_to_exhaustion(&self, current_ma: MilliAmps) -> Option<SimTime>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicate() {
        assert!(!DischargeOutcome::Survived.is_exhausted());
        assert!(DischargeOutcome::Exhausted {
            after: SimTime::ZERO
        }
        .is_exhausted());
    }

    #[test]
    fn soc_estimate_wraps_state_of_charge() {
        let mut b = crate::IdealBattery::new(10.0);
        assert_eq!(b.soc_estimate().get(), 1.0);
        b.discharge(SimTime::from_secs(3600), MilliAmps::new(5.0));
        assert_eq!(b.soc_estimate().get(), b.state_of_charge());
        assert_eq!(b.soc_estimate(), StateOfCharge::new(0.5));
    }
}
