//! # dles-battery — analytic battery models with calibration
//!
//! The experiments of Liu & Chou (IPPS 2004) measure *battery lifetime*
//! under piecewise-constant current loads. Two non-ideal battery phenomena
//! carry the paper's conclusions:
//!
//! * **Rate-capacity effect** — a battery delivers less total charge at a
//!   higher discharge rate (visible between experiments 0A and 0B);
//! * **Recovery effect** — capacity "lost" to heavy discharge is partially
//!   recovered during low-current rests (the paper's §6.3 explanation for
//!   F(1A) > F(0A), and part of why node rotation wins in §6.7).
//!
//! This crate provides three interchangeable models behind the [`Battery`]
//! trait:
//!
//! * [`IdealBattery`] — a coulomb counter (no rate effects); the baseline a
//!   CPU-centric DVS analysis implicitly assumes,
//! * [`PeukertBattery`] — rate-capacity via Peukert's law (no recovery),
//! * [`KibamBattery`] — the Kinetic Battery Model (Manwell–McGowan), a
//!   two-well model exhibiting both effects, stepped with its exact
//!   closed-form solution per constant-current segment,
//! * [`RakhmatovBattery`] — the Rakhmatov–Vrudhula diffusion model
//!   (truncated modal form), for cross-model validation of the
//!   conclusions.
//!
//! [`calibrate`] fits model parameters to measured lifetime anchors with
//! Nelder–Mead, and [`packs`] holds the calibrated parameter sets for the
//! Itsy's 4 V lithium-ion pack.
//!
//! ```
//! use dles_battery::{Battery, KibamBattery, LoadProfile, LoadStep, simulate_lifetime};
//!
//! // A 1000 mAh two-well battery discharged by the experiment-1A frame
//! // shape: 1.1 s of computation at 130 mA, then 1.2 s of low-power I/O.
//! let mut batt = KibamBattery::new(1000.0, 0.6, 1.0);
//! let frame = LoadProfile::repeating(vec![
//!     LoadStep::from_secs(1.1, 130.0),
//!     LoadStep::from_secs(1.2, 40.0),
//! ]);
//! let life = simulate_lifetime(&mut batt, &frame);
//! assert!(life.lifetime.as_hours_f64() > 5.0);
//! ```
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod ideal;
pub mod kibam;
pub mod model;
pub mod packs;
pub mod peukert;
pub mod profile;
pub mod rakhmatov;

pub use calibrate::{calibrate_kibam, Anchor, CalibrationResult, NelderMead};
pub use ideal::IdealBattery;
pub use kibam::KibamBattery;
pub use model::{Battery, DischargeOutcome};
pub use packs::{itsy_pack_a, itsy_pack_b, PackParams};
pub use peukert::PeukertBattery;
pub use profile::{simulate_lifetime, Lifetime, LoadProfile, LoadStep};
pub use rakhmatov::{RakhmatovBattery, RvParams};
