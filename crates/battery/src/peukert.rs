//! Peukert's-law battery: rate-capacity effect without recovery.
//!
//! Peukert's empirical law says a battery rated `C` mAh at reference
//! current `I_ref` delivers its charge as if each ampere drawn at current
//! `I` counted `(I / I_ref)^(p−1)` times. For `p > 1`, discharging faster
//! than the reference wastes capacity; slower stretches it. The model has
//! *no memory*: interleaving rests does not restore anything, which is
//! exactly what distinguishes it from [`KibamBattery`](crate::KibamBattery)
//! in the ablation benches.

use crate::model::{Battery, DischargeOutcome};
use dles_sim::SimTime;
use dles_units::{Hours, MilliAmpHours, MilliAmps};

/// Battery obeying Peukert's law.
#[derive(Debug, Clone)]
pub struct PeukertBattery {
    capacity_mah: MilliAmpHours,
    reference_ma: MilliAmps,
    exponent: f64,
    /// Capacity-weighted charge consumed so far (Peukert-effective mAh).
    consumed_effective_mah: MilliAmpHours,
    delivered_mah: MilliAmpHours,
}

impl PeukertBattery {
    /// `capacity_mah` rated at `reference_ma`, with Peukert exponent
    /// `exponent` ≥ 1 (1 degenerates to the ideal battery).
    pub fn new(capacity_mah: f64, reference_ma: f64, exponent: f64) -> Self {
        assert!(capacity_mah > 0.0, "capacity must be positive");
        assert!(reference_ma > 0.0, "reference current must be positive");
        assert!(exponent >= 1.0, "Peukert exponent must be >= 1");
        PeukertBattery {
            capacity_mah: MilliAmpHours::new(capacity_mah),
            reference_ma: MilliAmps::new(reference_ma),
            exponent,
            consumed_effective_mah: MilliAmpHours::ZERO,
            delivered_mah: MilliAmpHours::ZERO,
        }
    }

    /// The effective (capacity-weighted) drain rate at `current_ma`.
    fn effective_rate(&self, current_ma: MilliAmps) -> MilliAmps {
        if current_ma.get() <= 0.0 {
            return MilliAmps::ZERO;
        }
        MilliAmps::new(
            current_ma.get()
                * (current_ma.get() / self.reference_ma.get()).powf(self.exponent - 1.0),
        )
    }
}

impl Battery for PeukertBattery {
    fn discharge(&mut self, duration: SimTime, current_ma: MilliAmps) -> DischargeOutcome {
        assert!(current_ma.get() >= 0.0, "negative discharge current");
        if self.is_exhausted() {
            return DischargeOutcome::Exhausted {
                after: SimTime::ZERO,
            };
        }
        let rate = self.effective_rate(current_ma);
        let hours = Hours::new(duration.as_hours_f64());
        let effective_draw = rate * hours;
        let headroom = self.capacity_mah - self.consumed_effective_mah;
        if effective_draw <= headroom || rate.get() == 0.0 {
            self.consumed_effective_mah += effective_draw;
            self.delivered_mah += current_ma * hours;
            DischargeOutcome::Survived
        } else {
            let hours_left = headroom / rate;
            self.consumed_effective_mah = self.capacity_mah;
            self.delivered_mah += current_ma * hours_left;
            DischargeOutcome::Exhausted {
                after: SimTime::from_hours_f64(hours_left.get()).min(duration),
            }
        }
    }

    fn is_exhausted(&self) -> bool {
        (self.capacity_mah - self.consumed_effective_mah).get() <= 1e-12
    }

    fn state_of_charge(&self) -> f64 {
        (1.0 - self.consumed_effective_mah.get() / self.capacity_mah.get()).clamp(0.0, 1.0)
    }

    fn nominal_capacity_mah(&self) -> MilliAmpHours {
        self.capacity_mah
    }

    fn delivered_mah(&self) -> MilliAmpHours {
        self.delivered_mah
    }

    fn reset(&mut self) {
        self.consumed_effective_mah = MilliAmpHours::ZERO;
        self.delivered_mah = MilliAmpHours::ZERO;
    }

    fn time_to_exhaustion(&self, current_ma: MilliAmps) -> Option<SimTime> {
        assert!(current_ma.get() >= 0.0, "negative discharge current");
        let rate = self.effective_rate(current_ma);
        if rate.get() == 0.0 {
            return None;
        }
        let headroom = (self.capacity_mah - self.consumed_effective_mah)
            .get()
            .max(0.0);
        Some(SimTime::from_hours_f64(headroom / rate.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(v: f64) -> MilliAmps {
        MilliAmps::new(v)
    }

    fn lifetime_hours(b: &mut PeukertBattery, current: f64) -> f64 {
        let mut h = 0.0;
        loop {
            match b.discharge(SimTime::from_secs(60), ma(current)) {
                DischargeOutcome::Survived => h += 60.0 / 3600.0,
                DischargeOutcome::Exhausted { after } => return h + after.as_hours_f64(),
            }
        }
    }

    #[test]
    fn at_reference_current_matches_rating() {
        let mut b = PeukertBattery::new(100.0, 50.0, 1.3);
        let h = lifetime_hours(&mut b, 50.0);
        assert!((h - 2.0).abs() < 1e-6, "got {h}");
    }

    #[test]
    fn faster_discharge_delivers_less_charge() {
        let mut slow = PeukertBattery::new(100.0, 50.0, 1.3);
        let mut fast = PeukertBattery::new(100.0, 50.0, 1.3);
        let q_slow = lifetime_hours(&mut slow, 25.0) * 25.0;
        let q_fast = lifetime_hours(&mut fast, 200.0) * 200.0;
        assert!(
            q_slow > 100.0 && q_fast < 100.0,
            "slow {q_slow}, fast {q_fast}"
        );
    }

    #[test]
    fn peukert_law_exponent_check() {
        // t = C/I_ref · (I_ref/I)^p ⇒ I^p · t is constant.
        let p = 1.25;
        let mut b1 = PeukertBattery::new(300.0, 100.0, p);
        let mut b2 = PeukertBattery::new(300.0, 100.0, p);
        let t1 = lifetime_hours(&mut b1, 60.0);
        let t2 = lifetime_hours(&mut b2, 180.0);
        let k1 = 60.0f64.powf(p) * t1;
        let k2 = 180.0f64.powf(p) * t2;
        assert!((k1 / k2 - 1.0).abs() < 1e-3, "k1 {k1}, k2 {k2}");
    }

    #[test]
    fn exponent_one_is_ideal() {
        let mut b = PeukertBattery::new(100.0, 50.0, 1.0);
        let q = lifetime_hours(&mut b, 200.0) * 200.0;
        assert!((q - 100.0).abs() < 1e-3);
    }

    #[test]
    fn no_recovery_from_rest() {
        let mut pulsed = PeukertBattery::new(100.0, 50.0, 1.3);
        let mut steady = PeukertBattery::new(100.0, 50.0, 1.3);
        // Pulsed: alternate 1 min at 100 mA with 1 min rest.
        let mut pulsed_on_hours = 0.0;
        loop {
            match pulsed.discharge(SimTime::from_secs(60), ma(100.0)) {
                DischargeOutcome::Survived => pulsed_on_hours += 60.0 / 3600.0,
                DischargeOutcome::Exhausted { after } => {
                    pulsed_on_hours += after.as_hours_f64();
                    break;
                }
            }
            pulsed.discharge(SimTime::from_secs(60), ma(0.0));
        }
        let steady_hours = lifetime_hours(&mut steady, 100.0);
        // Memoryless: total on-time identical whether or not rests happen.
        assert!((pulsed_on_hours - steady_hours).abs() < 1e-6);
    }

    #[test]
    fn reset_restores() {
        let mut b = PeukertBattery::new(100.0, 50.0, 1.2);
        b.discharge(SimTime::from_secs(3600), ma(80.0));
        assert!(b.state_of_charge() < 1.0);
        b.reset();
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    #[should_panic(expected = "Peukert exponent")]
    fn sub_unity_exponent_rejected() {
        let _ = PeukertBattery::new(100.0, 50.0, 0.9);
    }
}
