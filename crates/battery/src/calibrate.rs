//! Fitting battery parameters to measured lifetime anchors.
//!
//! The paper publishes, for each experiment, the load shape (from the power
//! profile) and the measured battery lifetime. [`calibrate_kibam`] fits the
//! three KiBaM parameters (capacity, well split `c`, rate constant `k`) to
//! any set of such anchors by minimizing the mean squared *relative*
//! lifetime error with Nelder–Mead in an unconstrained reparameterization
//! (`ln C`, `logit c`, `ln k`). Anchor lifetimes are evaluated in parallel
//! through the deterministic work-pull map [`dles_sim::par_map_slice`] —
//! each anchor's discharge simulation is independent, and the objective
//! value does not depend on the worker count.

use crate::kibam::{KibamBattery, KibamParams};
use crate::profile::{simulate_lifetime, LoadProfile};
use dles_units::MilliAmpHours;

/// One calibration anchor: a load and the lifetime the paper measured.
#[derive(Debug, Clone)]
pub struct Anchor {
    /// Experiment label, e.g. `"1A"` (for reporting).
    pub label: String,
    /// The discharge load.
    pub profile: LoadProfile,
    /// The measured battery lifetime in hours.
    pub measured_hours: f64,
    /// Relative weight of this anchor in the objective.
    pub weight: f64,
}

impl Anchor {
    pub fn new(label: &str, profile: LoadProfile, measured_hours: f64) -> Self {
        assert!(measured_hours > 0.0, "measured lifetime must be positive");
        Anchor {
            label: label.to_owned(),
            profile,
            measured_hours,
            weight: 1.0,
        }
    }

    pub fn weighted(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// Outcome of a calibration run.
#[derive(Debug, Clone)]
pub struct CalibrationResult {
    pub params: KibamParams,
    /// Final objective value (weighted mean squared relative error).
    pub objective: f64,
    /// Per-anchor (label, predicted hours, measured hours).
    pub residuals: Vec<(String, f64, f64)>,
    pub iterations: usize,
}

/// Predicted lifetime (hours) of a KiBaM battery under a profile.
pub fn predict_hours(params: KibamParams, profile: &LoadProfile) -> f64 {
    let mut b = KibamBattery::from_params(params);
    simulate_lifetime(&mut b, profile).lifetime.as_hours_f64()
}

fn objective(params: KibamParams, anchors: &[Anchor]) -> f64 {
    // Evaluate anchors in parallel; battery discharge sims are independent.
    let total_weight: f64 = anchors.iter().map(|a| a.weight).sum();
    let errors = dles_sim::par_map_slice(anchors, 0, |_, anchor| {
        let predicted = predict_hours(params, &anchor.profile);
        let rel = (predicted - anchor.measured_hours) / anchor.measured_hours;
        anchor.weight * rel * rel
    });
    let sum: f64 = errors.iter().sum();
    sum / total_weight
}

fn decode(x: &[f64; 3]) -> KibamParams {
    KibamParams {
        capacity_mah: MilliAmpHours::new(x[0].exp()),
        c: 1.0 / (1.0 + (-x[1]).exp()),
        k: x[2].exp(),
    }
}

fn encode(p: KibamParams) -> [f64; 3] {
    [
        p.capacity_mah.get().ln(),
        (p.c / (1.0 - p.c)).ln(),
        p.k.ln(),
    ]
}

/// Fit KiBaM parameters to `anchors`, starting from `initial`.
pub fn calibrate_kibam(
    anchors: &[Anchor],
    initial: KibamParams,
    max_iters: usize,
) -> CalibrationResult {
    assert!(!anchors.is_empty(), "need at least one anchor");
    let f = |x: &[f64; 3]| objective(decode(x), anchors);
    let mut nm = NelderMead::new(encode(initial), 0.25);
    let iterations = nm.minimize(&f, max_iters, 1e-10);
    let params = decode(&nm.best_point());
    let residuals = anchors
        .iter()
        .map(|a| {
            (
                a.label.clone(),
                predict_hours(params, &a.profile),
                a.measured_hours,
            )
        })
        .collect();
    CalibrationResult {
        params,
        objective: nm.best_value(),
        residuals,
        iterations,
    }
}

/// A small, dependency-free Nelder–Mead simplex minimizer over ℝ³.
///
/// Standard coefficients: reflection 1, expansion 2, contraction ½,
/// shrink ½. Exposed publicly so other crates can reuse it for their own
/// small fits (e.g. fitting the serial-link startup latency).
pub struct NelderMead {
    simplex: Vec<([f64; 3], f64)>,
    initialized: bool,
    step: f64,
}

impl NelderMead {
    pub fn new(start: [f64; 3], step: f64) -> Self {
        let mut simplex = Vec::with_capacity(4);
        simplex.push((start, f64::INFINITY));
        for i in 0..3 {
            let mut v = start;
            v[i] += step;
            simplex.push((v, f64::INFINITY));
        }
        NelderMead {
            simplex,
            initialized: false,
            step,
        }
    }

    pub fn best_point(&self) -> [f64; 3] {
        self.simplex[0].0
    }

    pub fn best_value(&self) -> f64 {
        self.simplex[0].1
    }

    /// Run up to `max_iters` iterations or until the simplex's value spread
    /// drops below `tol`. Returns the iteration count used.
    pub fn minimize<F: Fn(&[f64; 3]) -> f64>(
        &mut self,
        f: &F,
        max_iters: usize,
        tol: f64,
    ) -> usize {
        if !self.initialized {
            for entry in &mut self.simplex {
                entry.1 = f(&entry.0);
            }
            self.initialized = true;
        }
        let _ = self.step;
        for iter in 0..max_iters {
            // `total_cmp` ranks a NaN objective as worst (it sorts last),
            // so a pathological parameter region cannot panic the fit.
            self.simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            let spread = self.simplex[3].1 - self.simplex[0].1;
            if spread.abs() < tol {
                return iter;
            }
            // Centroid of the best three.
            let mut centroid = [0.0; 3];
            for (p, _) in &self.simplex[..3] {
                for (c, v) in centroid.iter_mut().zip(p) {
                    *c += v / 3.0;
                }
            }
            let worst = self.simplex[3];
            let reflect = Self::combine(&centroid, &worst.0, 1.0);
            let f_reflect = f(&reflect);
            if f_reflect < self.simplex[0].1 {
                // Try to expand.
                let expand = Self::combine(&centroid, &worst.0, 2.0);
                let f_expand = f(&expand);
                self.simplex[3] = if f_expand < f_reflect {
                    (expand, f_expand)
                } else {
                    (reflect, f_reflect)
                };
            } else if f_reflect < self.simplex[2].1 {
                self.simplex[3] = (reflect, f_reflect);
            } else {
                // Contract toward the centroid.
                let contract = Self::combine(&centroid, &worst.0, -0.5);
                let f_contract = f(&contract);
                if f_contract < worst.1 {
                    self.simplex[3] = (contract, f_contract);
                } else {
                    // Shrink toward the best vertex.
                    let best = self.simplex[0].0;
                    for entry in &mut self.simplex[1..] {
                        for (x, b) in entry.0.iter_mut().zip(&best) {
                            *x = b + 0.5 * (*x - b);
                        }
                        entry.1 = f(&entry.0);
                    }
                }
            }
        }
        self.simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        max_iters
    }

    /// `centroid + coeff · (centroid − worst)`; negative `coeff` contracts.
    fn combine(centroid: &[f64; 3], worst: &[f64; 3], coeff: f64) -> [f64; 3] {
        let mut out = [0.0; 3];
        for i in 0..3 {
            out[i] = centroid[i] + coeff * (centroid[i] - worst[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LoadStep;

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let f = |x: &[f64; 3]| {
            (x[0] - 1.0).powi(2) + 2.0 * (x[1] + 2.0).powi(2) + 0.5 * (x[2] - 3.0).powi(2)
        };
        let mut nm = NelderMead::new([0.0, 0.0, 0.0], 0.5);
        nm.minimize(&f, 2000, 1e-14);
        let p = nm.best_point();
        assert!((p[0] - 1.0).abs() < 1e-4, "{p:?}");
        assert!((p[1] + 2.0).abs() < 1e-4, "{p:?}");
        assert!((p[2] - 3.0).abs() < 1e-4, "{p:?}");
    }

    #[test]
    fn nelder_mead_survives_nan_objective_regions() {
        // Pre-D004 this panicked ("NaN objective") the first time the
        // simplex wandered into the invalid region; with total_cmp the NaN
        // vertex just ranks worst and the fit walks away from it.
        let f = |x: &[f64; 3]| {
            if x[0] < -0.5 {
                f64::NAN
            } else {
                (x[0] - 1.0).powi(2) + x[1] * x[1] + x[2] * x[2]
            }
        };
        let mut nm = NelderMead::new([-0.4, 1.0, 1.0], 0.8);
        nm.minimize(&f, 2000, 1e-12);
        let p = nm.best_point();
        assert!(nm.best_value().is_finite(), "best must never be NaN");
        assert!((p[0] - 1.0).abs() < 1e-3, "{p:?}");
    }

    #[test]
    fn nelder_mead_all_nan_batch_terminates() {
        // Even a fully degenerate objective must terminate deterministically.
        let f = |_: &[f64; 3]| f64::NAN;
        let mut nm = NelderMead::new([0.0, 0.0, 0.0], 0.5);
        let iters = nm.minimize(&f, 50, 1e-12);
        assert!(iters <= 50);
    }

    #[test]
    fn nelder_mead_rosenbrock_2d() {
        // Classic banana function embedded in the first two coords.
        let f = |x: &[f64; 3]| {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2) + x[2] * x[2]
        };
        let mut nm = NelderMead::new([-1.2, 1.0, 0.5], 0.5);
        nm.minimize(&f, 5000, 1e-16);
        let p = nm.best_point();
        assert!(
            (p[0] - 1.0).abs() < 1e-2 && (p[1] - 1.0).abs() < 1e-2,
            "{p:?}"
        );
    }

    #[test]
    fn calibration_recovers_known_parameters() {
        // Generate synthetic anchors from a ground-truth battery, then check
        // the fit reproduces the anchor lifetimes (parameters themselves may
        // be weakly identified; lifetimes are what matter downstream).
        let truth = KibamParams {
            capacity_mah: MilliAmpHours::new(900.0),
            c: 0.55,
            k: 1.4,
        };
        let profiles = [
            LoadProfile::constant(130.0),
            LoadProfile::constant(60.0),
            LoadProfile::repeating(vec![
                LoadStep::from_secs(1.1, 130.0),
                LoadStep::from_secs(1.2, 40.0),
            ]),
        ];
        let anchors: Vec<Anchor> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| Anchor::new(&format!("a{i}"), p.clone(), predict_hours(truth, p)))
            .collect();
        let start = KibamParams {
            capacity_mah: MilliAmpHours::new(600.0),
            c: 0.4,
            k: 0.5,
        };
        let result = calibrate_kibam(&anchors, start, 300);
        for (label, predicted, measured) in &result.residuals {
            let rel = (predicted - measured).abs() / measured;
            assert!(
                rel < 0.02,
                "{label}: predicted {predicted}, measured {measured}"
            );
        }
        assert!(result.objective < 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least one anchor")]
    fn empty_anchor_set_rejected() {
        let start = KibamParams {
            capacity_mah: MilliAmpHours::new(100.0),
            c: 0.5,
            k: 1.0,
        };
        let _ = calibrate_kibam(&[], start, 10);
    }
}
