//! The Rakhmatov–Vrudhula analytical diffusion battery model.
//!
//! An alternative high-fidelity model to [`KibamBattery`](crate::KibamBattery):
//! the electrolyte is a 1-D diffusion medium, and the *apparent* charge
//! consumed by time `t` is
//!
//! ```text
//! σ(t) = l(t) + 2 Σ_{m=1..∞} ∫ i(τ) e^{−β²m²(t−τ)} dτ
//! ```
//!
//! where `l(t)` is the delivered charge. The battery fails when `σ`
//! reaches the capacity parameter `α`. The infinite sum is truncated to
//! `M` exponential modes, each of which obeys the linear ODE
//! `y_m' = i − β²m² y_m`, so piecewise-constant loads step in closed form
//! (no history kept, O(M) per segment).
//!
//! Like KiBaM, the model exhibits the rate-capacity effect (high current
//! piles up unavailable charge) and the recovery effect (the modes decay
//! during rests). It is included for cross-model validation: the paper's
//! qualitative conclusions must not depend on which non-ideal battery
//! model is chosen.

use crate::model::{Battery, DischargeOutcome};
use dles_sim::SimTime;
use dles_units::{Hours, MilliAmpHours, MilliAmps};

/// Parameters of a Rakhmatov–Vrudhula battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RvParams {
    /// Capacity parameter `α`: apparent charge the cell can source.
    pub alpha_mah: MilliAmpHours,
    /// Diffusion rate `β²`, in 1/hour. Small values = sluggish diffusion
    /// = strong rate dependence.
    pub beta_sq: f64,
    /// Number of exponential modes retained (10 is plenty: the m-th mode
    /// decays `m²` times faster than the first).
    pub modes: usize,
}

impl RvParams {
    /// The same diffusion dynamics with the apparent capacity scaled by
    /// `factor` — manufacturing variance or a partial initial charge.
    pub fn scaled(&self, factor: f64) -> RvParams {
        assert!(factor > 0.0, "capacity scale must be positive");
        RvParams {
            alpha_mah: self.alpha_mah * factor,
            ..*self
        }
    }
}

/// Diffusion battery with truncated modal state.
#[derive(Debug, Clone)]
pub struct RakhmatovBattery {
    params: RvParams,
    /// Modal states `y_m`, mAh.
    y: Vec<f64>,
    /// Tail factor: `2 Σ_{m>M} 1/(β²m²)` — modes beyond the truncation
    /// equilibrate essentially instantly, contributing `I · tail` of
    /// unavailable charge at the present current.
    tail_h: Hours,
    delivered_mah: MilliAmpHours,
    dead: bool,
}

impl RakhmatovBattery {
    pub fn new(alpha_mah: f64, beta_sq: f64) -> Self {
        Self::from_params(RvParams {
            alpha_mah: MilliAmpHours::new(alpha_mah),
            beta_sq,
            modes: 10,
        })
    }

    /// A pack roughly comparable to the calibrated Itsy pack B: same
    /// apparent capacity, diffusion rate chosen so the unavailable charge
    /// at the ATR workload's currents is a moderate capacity fraction.
    pub fn itsy_like() -> Self {
        Self::new(963.2, 2.0)
    }

    pub fn from_params(params: RvParams) -> Self {
        assert!(params.alpha_mah.get() > 0.0, "alpha must be positive");
        assert!(params.beta_sq > 0.0, "beta^2 must be positive");
        assert!(params.modes > 0, "need at least one mode");
        let sum_trunc: f64 = (1..=params.modes).map(|m| 1.0 / (m * m) as f64).sum();
        let tail_h =
            Hours::new(2.0 * (std::f64::consts::PI.powi(2) / 6.0 - sum_trunc) / params.beta_sq);
        RakhmatovBattery {
            y: vec![0.0; params.modes],
            tail_h,
            params,
            delivered_mah: MilliAmpHours::ZERO,
            dead: false,
        }
    }

    pub fn params(&self) -> RvParams {
        self.params
    }

    /// Charge currently *unavailable* due to diffusion gradients
    /// (resolved modes only; the tail is attributed at the instantaneous
    /// current inside `sigma_at`).
    pub fn unavailable_mah(&self) -> MilliAmpHours {
        MilliAmpHours::new(2.0 * self.y.iter().sum::<f64>())
    }

    /// Apparent charge consumed (`σ`) while drawing `i_ma`.
    fn sigma_at(&self, i_ma: f64) -> f64 {
        self.delivered_mah.get() + self.unavailable_mah().get() + i_ma * self.tail_h.get()
    }

    /// Modal states and sigma after drawing `i_ma` for `t_h` hours.
    fn advanced(&self, i_ma: f64, t_h: f64) -> (Vec<f64>, f64) {
        let mut y = self.y.clone();
        for (m, ym) in y.iter_mut().enumerate() {
            let lambda = self.params.beta_sq * ((m + 1) * (m + 1)) as f64;
            let decay = (-lambda * t_h).exp();
            *ym = *ym * decay + i_ma * (1.0 - decay) / lambda;
        }
        let delivered = self.delivered_mah.get() + i_ma * t_h;
        let sigma = delivered + 2.0 * y.iter().sum::<f64>() + i_ma * self.tail_h.get();
        (y, sigma)
    }

    /// First time in `(0, t_h]` at which σ reaches α, given it does by
    /// `t_h`. σ is strictly increasing under constant positive current.
    fn death_time(&self, i_ma: f64, t_h: f64) -> f64 {
        let mut lo = 0.0f64;
        let mut hi = t_h;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.advanced(i_ma, mid).1 < self.params.alpha_mah.get() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

impl Battery for RakhmatovBattery {
    fn discharge(&mut self, duration: SimTime, current_ma: MilliAmps) -> DischargeOutcome {
        assert!(current_ma.get() >= 0.0, "negative discharge current");
        if self.dead {
            return DischargeOutcome::Exhausted {
                after: SimTime::ZERO,
            };
        }
        let t_h = duration.as_hours_f64();
        if t_h == 0.0 {
            return DischargeOutcome::Survived;
        }
        let (y, sigma) = self.advanced(current_ma.get(), t_h);
        if sigma < self.params.alpha_mah.get() || current_ma.get() == 0.0 {
            self.y = y;
            self.delivered_mah += current_ma * Hours::new(t_h);
            DischargeOutcome::Survived
        } else {
            let td = self.death_time(current_ma.get(), t_h);
            let (yd, _) = self.advanced(current_ma.get(), td);
            self.y = yd;
            self.delivered_mah += current_ma * Hours::new(td);
            self.dead = true;
            DischargeOutcome::Exhausted {
                after: SimTime::from_hours_f64(td).min(duration),
            }
        }
    }

    fn is_exhausted(&self) -> bool {
        self.dead
    }

    fn state_of_charge(&self) -> f64 {
        // At rest the tail term vanishes (fast modes equilibrate).
        (1.0 - self.sigma_at(0.0) / self.params.alpha_mah.get()).clamp(0.0, 1.0)
    }

    fn nominal_capacity_mah(&self) -> MilliAmpHours {
        self.params.alpha_mah
    }

    fn delivered_mah(&self) -> MilliAmpHours {
        self.delivered_mah
    }

    fn reset(&mut self) {
        self.y.iter_mut().for_each(|y| *y = 0.0);
        self.delivered_mah = MilliAmpHours::ZERO;
        self.dead = false;
    }

    fn time_to_exhaustion(&self, current_ma: MilliAmps) -> Option<SimTime> {
        assert!(current_ma.get() >= 0.0, "negative discharge current");
        if self.dead {
            return Some(SimTime::ZERO);
        }
        if current_ma.get() == 0.0 {
            // σ only decays at rest; the battery never dies idle.
            return None;
        }
        // σ(t) ≥ delivered + I·t, so by t = (α − delivered)/I it has
        // crossed α (σ also includes the non-negative unavailable term).
        let t_upper = ((self.params.alpha_mah - self.delivered_mah) / current_ma)
            .get()
            .max(0.0)
            + 1e-9;
        debug_assert!(self.advanced(current_ma.get(), t_upper).1 >= self.params.alpha_mah.get());
        Some(SimTime::from_hours_f64(
            self.death_time(current_ma.get(), t_upper),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(v: f64) -> MilliAmps {
        MilliAmps::new(v)
    }

    fn test_battery() -> RakhmatovBattery {
        RakhmatovBattery::new(1000.0, 2.0)
    }

    fn run_to_death(b: &mut RakhmatovBattery, current: f64, step_s: u64) -> f64 {
        let mut h = 0.0;
        loop {
            match b.discharge(SimTime::from_secs(step_s), ma(current)) {
                DischargeOutcome::Survived => h += step_s as f64 / 3600.0,
                DischargeOutcome::Exhausted { after } => return h + after.as_hours_f64(),
            }
        }
    }

    #[test]
    fn rate_capacity_effect() {
        let q = |i: f64| {
            let mut b = test_battery();
            run_to_death(&mut b, i, 60) * i
        };
        let q_slow = q(30.0);
        let q_fast = q(400.0);
        assert!(
            q_slow > q_fast + 50.0,
            "slow {q_slow} mAh vs fast {q_fast} mAh"
        );
        // At low rate nearly the whole α is extractable.
        assert!(q_slow > 0.9 * 1000.0, "q_slow {q_slow}");
    }

    #[test]
    fn recovery_effect() {
        // Pulsed load with rests outlives continuous at the same
        // on-current (total on-time compared).
        let continuous = {
            let mut b = test_battery();
            run_to_death(&mut b, 400.0, 10)
        };
        let pulsed = {
            let mut b = test_battery();
            let mut on_h = 0.0;
            loop {
                match b.discharge(SimTime::from_secs(10), ma(400.0)) {
                    DischargeOutcome::Survived => on_h += 10.0 / 3600.0,
                    DischargeOutcome::Exhausted { after } => {
                        on_h += after.as_hours_f64();
                        break;
                    }
                }
                b.discharge(SimTime::from_secs(10), ma(0.0));
            }
            on_h
        };
        assert!(
            pulsed > continuous * 1.02,
            "pulsed {pulsed} h vs continuous {continuous} h"
        );
    }

    #[test]
    fn rest_recovers_apparent_charge() {
        let mut b = test_battery();
        let outcome = b.discharge(SimTime::from_secs(1800), ma(300.0));
        assert_eq!(outcome, DischargeOutcome::Survived, "prep discharge died");
        let unavailable_before = b.unavailable_mah().get();
        assert!(unavailable_before > 1.0);
        b.discharge(SimTime::from_secs(7200), ma(0.0));
        assert!(
            b.unavailable_mah().get() < 0.2 * unavailable_before,
            "rest barely recovered: {} -> {}",
            unavailable_before,
            b.unavailable_mah().get()
        );
        // Delivered charge is untouched by the rest.
        assert!((b.delivered_mah().get() - 150.0).abs() < 1e-6);
    }

    #[test]
    fn time_to_exhaustion_consistent_with_discharge() {
        for current in [60.0, 130.0, 500.0] {
            let mut b = test_battery();
            b.discharge(SimTime::from_secs(1800), ma(200.0));
            let ttd = b.time_to_exhaustion(ma(current)).expect("finite");
            let mut survivor = b.clone();
            assert_eq!(
                survivor.discharge(ttd.scale_f64(0.999), ma(current)),
                DischargeOutcome::Survived,
                "at {current} mA"
            );
            let mut victim = b.clone();
            assert!(victim
                .discharge(ttd + SimTime::from_secs(5), ma(current))
                .is_exhausted());
        }
    }

    #[test]
    fn segment_size_invariance() {
        let fine = {
            let mut b = test_battery();
            run_to_death(&mut b, 150.0, 1)
        };
        let coarse = {
            let mut b = test_battery();
            run_to_death(&mut b, 150.0, 300)
        };
        assert!(
            (fine - coarse).abs() < 0.1,
            "fine {fine} vs coarse {coarse}"
        );
    }

    #[test]
    fn zero_current_never_dies() {
        let b = test_battery();
        assert!(b.time_to_exhaustion(ma(0.0)).is_none());
        let mut b2 = test_battery();
        assert_eq!(
            b2.discharge(SimTime::from_secs(1_000_000), ma(0.0)),
            DischargeOutcome::Survived
        );
    }

    #[test]
    fn reset_restores() {
        let mut b = test_battery();
        run_to_death(&mut b, 300.0, 60);
        assert!(b.is_exhausted());
        b.reset();
        assert!(!b.is_exhausted());
        assert_eq!(b.state_of_charge(), 1.0);
        assert_eq!(b.unavailable_mah().get(), 0.0);
    }

    #[test]
    fn mode_truncation_converges() {
        // Lifetimes with 10 vs 30 modes agree closely (fast mode decay).
        let life = |modes: usize| {
            let mut b = RakhmatovBattery::from_params(RvParams {
                alpha_mah: MilliAmpHours::new(1000.0),
                beta_sq: 2.0,
                modes,
            });
            run_to_death(&mut b, 200.0, 60)
        };
        let l5 = life(5);
        let l10 = life(10);
        let l30 = life(30);
        assert!((l10 - l30).abs() / l30 < 0.01, "10 modes {l10} vs 30 {l30}");
        assert!((l5 - l30).abs() / l30 < 0.02, "5 modes {l5} vs 30 {l30}");
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn invalid_alpha_rejected() {
        let _ = RakhmatovBattery::new(0.0, 0.3);
    }
}
