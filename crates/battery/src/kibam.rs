//! The Kinetic Battery Model (KiBaM) of Manwell & McGowan.
//!
//! Charge is held in two wells: an *available* well (fraction `c` of
//! capacity) that supplies the load directly, and a *bound* well that feeds
//! the available well through a "valve" with rate constant `k`. The model
//! reproduces both battery phenomena the paper's measurements exhibit:
//!
//! * **rate-capacity effect** — at high current the available well drains
//!   faster than the bound well can refill it, so the battery dies with
//!   bound charge stranded (delivered capacity shrinks with rate);
//! * **recovery effect** — during a rest, bound charge seeps into the
//!   available well and the battery can sustain a subsequent burst
//!   (§6.3: "if the discharge current can drop to a lower level, the lost
//!   capacity can be partially recovered").
//!
//! Each constant-current segment is advanced with the model's *exact*
//! closed-form solution (no ODE integration error); death inside a segment
//! is located by bisection on the available charge, which is concave in
//! time under constant current, so the first zero crossing is unique.

use crate::model::{Battery, DischargeOutcome};
use dles_sim::SimTime;
use dles_units::{Hours, MilliAmpHours, MilliAmps};

/// Parameters of a KiBaM battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KibamParams {
    /// Total nominal capacity (both wells).
    pub capacity_mah: MilliAmpHours,
    /// Fraction of capacity in the available well, `0 < c < 1`.
    pub c: f64,
    /// Modified rate constant `k' = k / (c (1 − c))`, in 1/hour.
    pub k: f64,
}

impl KibamParams {
    /// The same cell chemistry (`c`, `k` unchanged) with capacity scaled
    /// by `factor` — manufacturing variance or a partial initial charge.
    pub fn scaled(&self, factor: f64) -> KibamParams {
        assert!(factor > 0.0, "capacity scale must be positive");
        KibamParams {
            capacity_mah: self.capacity_mah * factor,
            ..*self
        }
    }
}

/// Two-well kinetic battery.
#[derive(Debug, Clone)]
pub struct KibamBattery {
    params: KibamParams,
    /// Available charge, mAh (raw: the closed-form well math below works
    /// on bare values; the typed boundary is the public API).
    q1: f64,
    /// Bound charge, mAh.
    q2: f64,
    delivered_mah: MilliAmpHours,
    dead: bool,
}

impl KibamBattery {
    /// A fresh battery: `capacity_mah` total, split `c` available /
    /// `1 − c` bound, with modified rate constant `k` (1/h).
    pub fn new(capacity_mah: f64, c: f64, k: f64) -> Self {
        Self::from_params(KibamParams {
            capacity_mah: MilliAmpHours::new(capacity_mah),
            c,
            k,
        })
    }

    pub fn from_params(params: KibamParams) -> Self {
        assert!(
            params.capacity_mah > MilliAmpHours::ZERO,
            "capacity must be positive"
        );
        assert!(
            params.c > 0.0 && params.c < 1.0,
            "well fraction c must be in (0, 1)"
        );
        assert!(params.k > 0.0, "rate constant must be positive");
        KibamBattery {
            q1: params.c * params.capacity_mah.get(),
            q2: (1.0 - params.c) * params.capacity_mah.get(),
            params,
            delivered_mah: MilliAmpHours::ZERO,
            dead: false,
        }
    }

    pub fn params(&self) -> KibamParams {
        self.params
    }

    /// Charge in the available well.
    pub fn available_mah(&self) -> MilliAmpHours {
        MilliAmpHours::new(self.q1)
    }

    /// Charge in the bound well.
    pub fn bound_mah(&self) -> MilliAmpHours {
        MilliAmpHours::new(self.q2)
    }

    /// Charge stranded in the battery (both wells) right now — at death
    /// this is the paper's "loss of battery capacities".
    pub fn stranded_mah(&self) -> MilliAmpHours {
        MilliAmpHours::new(self.q1 + self.q2)
    }

    /// Closed-form well contents after drawing `current` for `t` from the
    /// current state (Manwell–McGowan). Raw mAh out: the wells are internal.
    fn wells_after(&self, current: MilliAmps, t: Hours) -> (f64, f64) {
        let KibamParams { c, k, .. } = self.params;
        let i_ma = current.get();
        let t_h = t.get();
        let q0 = self.q1 + self.q2;
        let kt = k * t_h;
        let r = (-kt).exp();
        let one_minus_r = -(-kt).exp_m1();
        // kt − 1 + e^{−kt}; ≥ 0, ~kt²/2 for small kt.
        let kt_term = kt + (-kt).exp_m1();
        let q1 = self.q1 * r + (q0 * k * c - i_ma) * one_minus_r / k - i_ma * c * kt_term / k;
        let q2 = self.q2 * r + q0 * (1.0 - c) * one_minus_r - i_ma * (1.0 - c) * kt_term / k;
        (q1, q2)
    }

    /// First time in `(0, t]` at which the available well empties, given
    /// `q1(t) ≤ 0`. Bisection; `q1` is concave in `t` under constant
    /// current so the crossing is unique.
    fn death_time(&self, current: MilliAmps, t: Hours) -> Hours {
        let mut lo = 0.0f64;
        let mut hi = t.get();
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.wells_after(current, Hours::new(mid)).0 > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Hours::new(hi)
    }
}

impl Battery for KibamBattery {
    fn discharge(&mut self, duration: SimTime, current_ma: MilliAmps) -> DischargeOutcome {
        assert!(current_ma >= MilliAmps::ZERO, "negative discharge current");
        if self.dead {
            return DischargeOutcome::Exhausted {
                after: SimTime::ZERO,
            };
        }
        let t = Hours::new(duration.as_hours_f64());
        if t == Hours::ZERO {
            return DischargeOutcome::Survived;
        }
        let (q1, q2) = self.wells_after(current_ma, t);
        if q1 > 0.0 {
            self.q1 = q1;
            self.q2 = q2.max(0.0);
            self.delivered_mah += current_ma * t;
            DischargeOutcome::Survived
        } else {
            let td = self.death_time(current_ma, t);
            let (q1d, q2d) = self.wells_after(current_ma, td);
            self.q1 = q1d.max(0.0);
            self.q2 = q2d.max(0.0);
            self.delivered_mah += current_ma * td;
            self.dead = true;
            DischargeOutcome::Exhausted {
                after: SimTime::from_hours_f64(td.get()).min(duration),
            }
        }
    }

    fn is_exhausted(&self) -> bool {
        self.dead
    }

    fn state_of_charge(&self) -> f64 {
        ((self.q1 + self.q2) / self.params.capacity_mah.get()).clamp(0.0, 1.0)
    }

    fn nominal_capacity_mah(&self) -> MilliAmpHours {
        self.params.capacity_mah
    }

    fn delivered_mah(&self) -> MilliAmpHours {
        self.delivered_mah
    }

    fn reset(&mut self) {
        self.q1 = self.params.c * self.params.capacity_mah.get();
        self.q2 = (1.0 - self.params.c) * self.params.capacity_mah.get();
        self.delivered_mah = MilliAmpHours::ZERO;
        self.dead = false;
    }

    fn time_to_exhaustion(&self, current_ma: MilliAmps) -> Option<SimTime> {
        assert!(current_ma >= MilliAmps::ZERO, "negative discharge current");
        if self.dead {
            return Some(SimTime::ZERO);
        }
        if current_ma == MilliAmps::ZERO {
            return None;
        }
        // Conservation gives a hard upper bound: at t = (q1+q2)/I the total
        // stored charge is zero, so q1 ≤ 0 there. Near-zero currents push
        // that bound beyond any representable horizon (and to ±inf/NaN in
        // the closed form) — treat those as a battery that never dies
        // rather than saturating SimTime and overflowing callers' event
        // schedules.
        const MAX_HORIZON_H: f64 = 1.0e9; // ~114 000 years ≫ any experiment
        let mut t_upper = (self.stranded_mah() / current_ma).get();
        if !t_upper.is_finite() || t_upper > MAX_HORIZON_H {
            return None;
        }
        // Nudge past the exact conservation bound, then widen geometrically
        // if rounding still leaves q1 marginally positive there (the old
        // fixed +1e-9 offset was not enough for multi-thousand-hour bounds).
        t_upper = t_upper * (1.0 + 1e-12) + 1e-9;
        let mut widen = 0;
        while self.wells_after(current_ma, Hours::new(t_upper)).0 > 0.0 {
            t_upper *= 2.0;
            widen += 1;
            if widen > 64 || t_upper > MAX_HORIZON_H {
                return None;
            }
        }
        Some(SimTime::from_hours_f64(
            self.death_time(current_ma, Hours::new(t_upper)).get(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(v: f64) -> MilliAmps {
        MilliAmps::new(v)
    }

    fn test_battery() -> KibamBattery {
        KibamBattery::new(1000.0, 0.5, 1.0)
    }

    fn run_to_death(b: &mut KibamBattery, current: f64, step_s: u64) -> f64 {
        let mut h = 0.0;
        loop {
            match b.discharge(SimTime::from_secs(step_s), ma(current)) {
                DischargeOutcome::Survived => h += step_s as f64 / 3600.0,
                DischargeOutcome::Exhausted { after } => return h + after.as_hours_f64(),
            }
        }
    }

    #[test]
    fn charge_is_conserved() {
        let mut b = test_battery();
        let before = b.stranded_mah().get();
        b.discharge(SimTime::from_secs(1800), ma(120.0));
        let drawn = 120.0 * 0.5;
        assert!((before - b.stranded_mah().get() - drawn).abs() < 1e-9);
    }

    #[test]
    fn zero_current_conserves_total_but_rebalances() {
        let mut b = test_battery();
        b.discharge(SimTime::from_secs(3600), ma(300.0));
        let total = b.stranded_mah().get();
        let q1_before = b.available_mah().get();
        b.discharge(SimTime::from_secs(3600), ma(0.0));
        assert!((b.stranded_mah().get() - total).abs() < 1e-9);
        assert!(
            b.available_mah().get() > q1_before,
            "rest must refill the available well"
        );
    }

    #[test]
    fn long_rest_reaches_equilibrium_split() {
        let mut b = test_battery();
        b.discharge(SimTime::from_secs(3600), ma(300.0));
        let total = b.stranded_mah().get();
        // Rest for a very long time: q1 → c·total.
        b.discharge(SimTime::from_secs(200 * 3600), ma(0.0));
        assert!((b.available_mah().get() - 0.5 * total).abs() < 1e-6);
    }

    #[test]
    fn rate_capacity_effect() {
        let q_slow = {
            let mut b = test_battery();
            let t = run_to_death(&mut b, 50.0, 60);
            50.0 * t
        };
        let q_fast = {
            let mut b = test_battery();
            let t = run_to_death(&mut b, 500.0, 60);
            500.0 * t
        };
        assert!(
            q_slow > q_fast + 50.0,
            "slow {q_slow} mAh should beat fast {q_fast} mAh"
        );
        // Low-rate discharge extracts nearly the nominal capacity.
        assert!(q_slow > 0.9 * 1000.0);
    }

    #[test]
    fn recovery_effect_pulsed_beats_continuous() {
        // Same on-current; pulsed load interleaves rests. Total *on-time*
        // to death must be longer for the pulsed battery.
        let continuous_on_h = {
            let mut b = test_battery();
            run_to_death(&mut b, 400.0, 10)
        };
        let pulsed_on_h = {
            let mut b = test_battery();
            let mut on_h = 0.0;
            loop {
                match b.discharge(SimTime::from_secs(10), ma(400.0)) {
                    DischargeOutcome::Survived => on_h += 10.0 / 3600.0,
                    DischargeOutcome::Exhausted { after } => {
                        on_h += after.as_hours_f64();
                        break;
                    }
                }
                b.discharge(SimTime::from_secs(10), ma(0.0));
            }
            on_h
        };
        assert!(
            pulsed_on_h > continuous_on_h * 1.05,
            "pulsed {pulsed_on_h} h vs continuous {continuous_on_h} h"
        );
    }

    #[test]
    fn death_leaves_stranded_bound_charge() {
        let mut b = test_battery();
        run_to_death(&mut b, 800.0, 10);
        assert!(b.is_exhausted());
        assert!(b.available_mah().get() < 1e-6);
        assert!(
            b.bound_mah().get() > 10.0,
            "high-rate death must strand bound charge, got {}",
            b.bound_mah().get()
        );
        assert!(b.delivered_mah().get() + b.stranded_mah().get() < 1000.0 + 1e-6);
    }

    #[test]
    fn death_time_bisection_is_tight() {
        let mut b = test_battery();
        // One huge segment; death happens inside it.
        match b.discharge(SimTime::from_secs(1_000_000), ma(200.0)) {
            DischargeOutcome::Exhausted { after } => {
                // At the reported instant the available well is empty.
                assert!(b.available_mah().get().abs() < 1e-6);
                assert!(after > SimTime::ZERO);
            }
            DischargeOutcome::Survived => panic!("battery should have died"),
        }
    }

    #[test]
    fn segment_size_invariance() {
        // Stepping in 1 s or 100 s chunks must give the same lifetime
        // (closed-form stepping is exact).
        let t_fine = {
            let mut b = test_battery();
            run_to_death(&mut b, 230.0, 1)
        };
        let t_coarse = {
            let mut b = test_battery();
            run_to_death(&mut b, 230.0, 100)
        };
        assert!(
            (t_fine - t_coarse).abs() < 0.03,
            "fine {t_fine} vs coarse {t_coarse}"
        );
    }

    #[test]
    fn death_is_terminal() {
        let mut b = test_battery();
        run_to_death(&mut b, 500.0, 60);
        // Even after a long rest the battery stays dead (the pipeline's view
        // of a failed node, §5.4).
        b.discharge(SimTime::from_secs(36_000), ma(0.0));
        assert!(b.is_exhausted());
        assert_eq!(
            b.discharge(SimTime::from_secs(1), ma(1.0)),
            DischargeOutcome::Exhausted {
                after: SimTime::ZERO
            }
        );
    }

    #[test]
    fn reset_restores_wells() {
        let mut b = test_battery();
        run_to_death(&mut b, 500.0, 60);
        b.reset();
        assert!(!b.is_exhausted());
        assert_eq!(b.available_mah().get(), 500.0);
        assert_eq!(b.bound_mah().get(), 500.0);
    }

    #[test]
    #[should_panic(expected = "well fraction")]
    fn invalid_c_rejected() {
        let _ = KibamBattery::new(100.0, 1.5, 1.0);
    }

    #[test]
    fn time_to_exhaustion_consistent_with_discharge() {
        for current in [50.0, 130.0, 400.0] {
            let mut b = test_battery();
            // Partially discharge first so the state is non-trivial.
            b.discharge(SimTime::from_secs(1800), ma(200.0));
            let ttd = b.time_to_exhaustion(ma(current)).expect("finite");
            let mut survivor = b.clone();
            assert_eq!(
                survivor.discharge(ttd.scale_f64(0.999), ma(current)),
                DischargeOutcome::Survived,
                "at {current} mA"
            );
            let mut victim = b.clone();
            assert!(
                victim
                    .discharge(ttd + SimTime::from_secs(5), ma(current))
                    .is_exhausted(),
                "at {current} mA"
            );
        }
    }

    #[test]
    fn time_to_exhaustion_zero_current_is_forever() {
        let b = test_battery();
        assert!(b.time_to_exhaustion(ma(0.0)).is_none());
    }

    #[test]
    fn time_to_exhaustion_near_zero_current_is_forever() {
        // (q1+q2)/I for these currents exceeds any representable horizon;
        // the old closed-form bound produced inf/NaN or saturated SimTime,
        // which overflowed callers' event schedules.
        let b = test_battery();
        for i in [1e-300, 1e-12, 1e-7] {
            assert!(b.time_to_exhaustion(ma(i)).is_none(), "current {i} mA");
        }
        // A small but meaningful current still gets a finite answer.
        let ttd = b.time_to_exhaustion(ma(0.1)).expect("finite");
        assert!(ttd.as_hours_f64() > 9000.0 && ttd.as_hours_f64() < 10_100.0);
    }

    #[test]
    fn death_exactly_on_segment_boundary() {
        // Discharge for exactly the predicted time to death: the segment
        // must report exhaustion at (or within rounding of) its end, with
        // the available well empty — not survive, panic, or overshoot.
        let mut b = test_battery();
        b.discharge(SimTime::from_secs(1800), ma(200.0));
        let ttd = b.time_to_exhaustion(ma(300.0)).expect("finite");
        match b.discharge(ttd, ma(300.0)) {
            DischargeOutcome::Exhausted { after } => {
                assert!(after <= ttd);
                assert!(ttd.as_hours_f64() - after.as_hours_f64() < 1e-6);
                assert!(b.available_mah().get().abs() < 1e-6);
            }
            DischargeOutcome::Survived => {
                // Bisection rounding may land death one microsecond past the
                // segment; the very next instant must kill it.
                assert!(b
                    .discharge(SimTime::from_micros(2), ma(300.0))
                    .is_exhausted());
            }
        }
        assert!(b.is_exhausted());
    }

    #[test]
    fn pulsed_profile_with_zero_current_rest_segments() {
        // Regression for the zero/near-zero-current guard: a pulsed load
        // with explicit rest segments must advance cleanly (rests rebalance
        // the wells, never divide by zero) and conserve charge to death.
        let mut b = test_battery();
        let mut pulses = 0u32;
        loop {
            let out = b.discharge(SimTime::from_secs(60), ma(450.0));
            if out.is_exhausted() {
                break;
            }
            assert!(b.time_to_exhaustion(ma(1e-9)).is_none());
            b.discharge(SimTime::from_secs(30), ma(0.0));
            pulses += 1;
            assert!(pulses < 100_000, "battery never died");
        }
        assert!(pulses > 10, "unexpectedly short pulsed life: {pulses}");
        let total = b.delivered_mah().get() + b.stranded_mah().get();
        assert!((total - 1000.0).abs() < 1e-6 * 1000.0, "total {total}");
    }

    #[test]
    fn time_to_exhaustion_dead_battery_is_zero() {
        let mut b = test_battery();
        run_to_death(&mut b, 500.0, 60);
        assert_eq!(b.time_to_exhaustion(ma(10.0)), Some(SimTime::ZERO));
    }
}

#[cfg(test)]
mod proptests {
    //! Seeded randomized tests (deterministic, framework-free).

    use super::*;
    use dles_sim::SimRng;

    fn ma(v: f64) -> MilliAmps {
        MilliAmps::new(v)
    }

    /// Total charge is conserved under any random segment sequence:
    /// initial = delivered + stranded (within accumulated fp error).
    #[test]
    fn charge_conservation() {
        let mut rng = SimRng::seed_from_u64(0xC0A5);
        for round in 0..64 {
            let cap = 1000.0;
            let c = rng.uniform_f64(0.1, 0.9);
            let k = rng.uniform_f64(0.05, 5.0);
            let mut b = KibamBattery::new(cap, c, k);
            let n = rng.uniform_u64(1, 49) as usize;
            for _ in 0..n {
                let secs = rng.uniform_u64(1, 3599);
                let i = rng.uniform_f64(0.0, 400.0);
                if b.discharge(SimTime::from_secs(secs), ma(i)).is_exhausted() {
                    break;
                }
            }
            let total = b.delivered_mah().get() + b.stranded_mah().get();
            assert!(
                (total - cap).abs() < 1e-6 * cap,
                "round {round}: delivered {} + stranded {} != {cap}",
                b.delivered_mah().get(),
                b.stranded_mah().get()
            );
        }
    }

    /// Wells never go negative and delivered charge never exceeds the
    /// nominal capacity.
    #[test]
    fn wells_stay_physical() {
        let mut rng = SimRng::seed_from_u64(0x9EE1);
        for _ in 0..64 {
            let mut b = KibamBattery::new(500.0, 0.4, 0.8);
            let n = rng.uniform_u64(1, 39) as usize;
            for _ in 0..n {
                let secs = rng.uniform_u64(1, 7199);
                let i = rng.uniform_f64(0.0, 1000.0);
                b.discharge(SimTime::from_secs(secs), ma(i));
                assert!(b.available_mah().get() >= -1e-9);
                assert!(b.bound_mah().get() >= -1e-9);
                assert!(b.delivered_mah().get() <= 500.0 + 1e-6);
                if b.is_exhausted() {
                    break;
                }
            }
        }
    }

    /// Lifetime at constant current is antitone in the current.
    #[test]
    fn lifetime_monotone_in_current() {
        let life = |i: f64| {
            let mut b = KibamBattery::new(800.0, 0.5, 1.0);
            let mut h = 0.0;
            loop {
                match b.discharge(SimTime::from_secs(600), ma(i)) {
                    DischargeOutcome::Survived => h += 600.0 / 3600.0,
                    DischargeOutcome::Exhausted { after } => return h + after.as_hours_f64(),
                }
            }
        };
        let mut rng = SimRng::seed_from_u64(0x10AD);
        for _ in 0..32 {
            let i1 = rng.uniform_f64(50.0, 300.0);
            let di = rng.uniform_f64(10.0, 300.0);
            assert!(life(i1) > life(i1 + di), "i1 {i1} di {di}");
        }
    }
}
