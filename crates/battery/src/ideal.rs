//! The ideal battery: a coulomb counter.
//!
//! Delivers exactly its rated capacity regardless of rate or load shape —
//! the implicit assumption of CPU-centric DVS analyses that the paper's
//! measurements contradict. Used as the "what a naive model predicts"
//! baseline in the ablation benches.

use crate::model::{Battery, DischargeOutcome};
use dles_sim::SimTime;
use dles_units::{Hours, MilliAmpHours, MilliAmps};

/// Coulomb-counting battery with no rate or recovery effects.
#[derive(Debug, Clone)]
pub struct IdealBattery {
    capacity_mah: MilliAmpHours,
    remaining_mah: MilliAmpHours,
}

impl IdealBattery {
    /// A fresh battery of `capacity_mah`.
    pub fn new(capacity_mah: f64) -> Self {
        assert!(capacity_mah > 0.0, "capacity must be positive");
        IdealBattery {
            capacity_mah: MilliAmpHours::new(capacity_mah),
            remaining_mah: MilliAmpHours::new(capacity_mah),
        }
    }

    /// Remaining charge.
    pub fn remaining_mah(&self) -> MilliAmpHours {
        self.remaining_mah
    }
}

impl Battery for IdealBattery {
    fn discharge(&mut self, duration: SimTime, current_ma: MilliAmps) -> DischargeOutcome {
        assert!(current_ma.get() >= 0.0, "negative discharge current");
        if self.is_exhausted() {
            return DischargeOutcome::Exhausted {
                after: SimTime::ZERO,
            };
        }
        let draw_mah = current_ma * Hours::new(duration.as_hours_f64());
        if draw_mah <= self.remaining_mah || current_ma.get() == 0.0 {
            self.remaining_mah -= draw_mah;
            DischargeOutcome::Survived
        } else {
            let hours_left = self.remaining_mah / current_ma;
            self.remaining_mah = MilliAmpHours::ZERO;
            DischargeOutcome::Exhausted {
                after: SimTime::from_hours_f64(hours_left.get()).min(duration),
            }
        }
    }

    fn is_exhausted(&self) -> bool {
        self.remaining_mah.get() <= 1e-12
    }

    fn state_of_charge(&self) -> f64 {
        (self.remaining_mah.get() / self.capacity_mah.get()).clamp(0.0, 1.0)
    }

    fn nominal_capacity_mah(&self) -> MilliAmpHours {
        self.capacity_mah
    }

    fn delivered_mah(&self) -> MilliAmpHours {
        self.capacity_mah - self.remaining_mah
    }

    fn reset(&mut self) {
        self.remaining_mah = self.capacity_mah;
    }

    fn time_to_exhaustion(&self, current_ma: MilliAmps) -> Option<SimTime> {
        assert!(current_ma.get() >= 0.0, "negative discharge current");
        if current_ma.get() == 0.0 {
            return None;
        }
        Some(SimTime::from_hours_f64(
            (self.remaining_mah / current_ma).get().max(0.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(v: f64) -> MilliAmps {
        MilliAmps::new(v)
    }

    #[test]
    fn lifetime_is_capacity_over_current() {
        let mut b = IdealBattery::new(100.0);
        // 100 mAh at 50 mA: survives 1 h, dies 1 h into the next 2 h.
        assert_eq!(
            b.discharge(SimTime::from_secs(3600), ma(50.0)),
            DischargeOutcome::Survived
        );
        match b.discharge(SimTime::from_secs(7200), ma(50.0)) {
            DischargeOutcome::Exhausted { after } => {
                assert!((after.as_hours_f64() - 1.0).abs() < 1e-9);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert!(b.is_exhausted());
        assert!((b.delivered_mah().get() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rate_independence() {
        // Same total charge delivered at any current — the defining
        // (unrealistic) property of the ideal model.
        for i in [10.0, 100.0, 1000.0] {
            let mut b = IdealBattery::new(500.0);
            let mut delivered_h = 0.0;
            loop {
                match b.discharge(SimTime::from_secs(60), ma(i)) {
                    DischargeOutcome::Survived => delivered_h += 60.0 / 3600.0,
                    DischargeOutcome::Exhausted { after } => {
                        delivered_h += after.as_hours_f64();
                        break;
                    }
                }
            }
            assert!((delivered_h * i - 500.0).abs() < 1e-6, "at {i} mA");
        }
    }

    #[test]
    fn zero_current_is_free() {
        let mut b = IdealBattery::new(10.0);
        assert_eq!(
            b.discharge(SimTime::from_secs(1_000_000), ma(0.0)),
            DischargeOutcome::Survived
        );
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    fn exhausted_battery_reports_immediately() {
        let mut b = IdealBattery::new(1.0);
        b.discharge(SimTime::from_secs(36_000), ma(100.0));
        assert!(b.is_exhausted());
        assert_eq!(
            b.discharge(SimTime::from_secs(1), ma(5.0)),
            DischargeOutcome::Exhausted {
                after: SimTime::ZERO
            }
        );
    }

    #[test]
    fn reset_restores_full() {
        let mut b = IdealBattery::new(10.0);
        b.discharge(SimTime::from_secs(3600), ma(5.0));
        b.reset();
        assert_eq!(b.state_of_charge(), 1.0);
        assert_eq!(b.delivered_mah(), MilliAmpHours::ZERO);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = IdealBattery::new(0.0);
    }
}
