//! Piecewise-constant load profiles and lifetime simulation.
//!
//! A node's discharge waveform over one frame period is a short sequence of
//! constant-current steps (Fig. 2: RECV, PROC, SEND, idle). Repeating it
//! until the battery dies is exactly the paper's experimental procedure:
//! "keep the Itsy node(s) running until the battery is fully discharged"
//! (§4.5).

use crate::model::{Battery, DischargeOutcome};
use dles_sim::SimTime;
use dles_units::{MilliAmpHours, MilliAmps};

/// One constant-current step of a load profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStep {
    pub duration: SimTime,
    pub current_ma: MilliAmps,
}

impl LoadStep {
    pub fn new(duration: SimTime, current_ma: f64) -> Self {
        LoadStep {
            duration,
            current_ma: MilliAmps::new(current_ma),
        }
    }

    pub fn from_secs(secs: f64, current_ma: f64) -> Self {
        LoadStep {
            duration: SimTime::from_secs_f64(secs),
            current_ma: MilliAmps::new(current_ma),
        }
    }
}

/// A load profile: a step sequence, run once or repeated until exhaustion.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    steps: Vec<LoadStep>,
    repeating: bool,
}

impl LoadProfile {
    /// Run the steps once, then stop.
    pub fn once(steps: Vec<LoadStep>) -> Self {
        assert!(!steps.is_empty(), "empty load profile");
        LoadProfile {
            steps,
            repeating: false,
        }
    }

    /// Cycle the steps until the battery dies.
    pub fn repeating(steps: Vec<LoadStep>) -> Self {
        assert!(!steps.is_empty(), "empty load profile");
        assert!(
            steps.iter().any(|s| s.duration > SimTime::ZERO),
            "repeating profile must have positive total duration"
        );
        LoadProfile {
            steps,
            repeating: true,
        }
    }

    /// A single constant-current profile repeated forever.
    pub fn constant(current_ma: f64) -> Self {
        Self::repeating(vec![LoadStep::from_secs(60.0, current_ma)])
    }

    pub fn steps(&self) -> &[LoadStep] {
        &self.steps
    }

    pub fn is_repeating(&self) -> bool {
        self.repeating
    }

    /// Duration of one pass through the steps.
    pub fn period(&self) -> SimTime {
        self.steps
            .iter()
            .fold(SimTime::ZERO, |acc, s| acc + s.duration)
    }

    /// Time-weighted mean current over one period.
    pub fn mean_current_ma(&self) -> MilliAmps {
        let total = self.period().as_secs_f64();
        if total == 0.0 {
            return MilliAmps::ZERO;
        }
        MilliAmps::new(
            self.steps
                .iter()
                .map(|s| s.current_ma.get() * s.duration.as_secs_f64())
                .sum::<f64>()
                / total,
        )
    }
}

/// Result of discharging a battery through a profile.
#[derive(Debug, Clone, Copy)]
pub struct Lifetime {
    /// Time until exhaustion (or end of a non-repeating profile).
    pub lifetime: SimTime,
    /// Whole profile periods completed before death.
    pub full_periods: u64,
    /// Charge delivered.
    pub delivered_mah: MilliAmpHours,
    /// Whether the battery actually died (always true for repeating
    /// profiles, which run to exhaustion).
    pub exhausted: bool,
}

/// Discharge `battery` through `profile` and report the lifetime.
///
/// For a repeating profile this runs until the battery is exhausted; a
/// pathological profile that never exhausts the battery (e.g. all-zero
/// current) is cut off at 10 years of simulated time.
pub fn simulate_lifetime(battery: &mut dyn Battery, profile: &LoadProfile) -> Lifetime {
    const HORIZON: SimTime = SimTime(10 * 365 * 24 * SimTime::MICROS_PER_HOUR);
    let mut elapsed = SimTime::ZERO;
    let mut full_periods = 0u64;
    'outer: loop {
        for step in profile.steps() {
            match battery.discharge(step.duration, step.current_ma) {
                DischargeOutcome::Survived => elapsed += step.duration,
                DischargeOutcome::Exhausted { after } => {
                    elapsed += after;
                    break 'outer;
                }
            }
        }
        if !profile.is_repeating() {
            break;
        }
        full_periods += 1;
        if elapsed >= HORIZON {
            break;
        }
    }
    Lifetime {
        lifetime: elapsed,
        full_periods,
        delivered_mah: battery.delivered_mah(),
        exhausted: battery.is_exhausted(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealBattery;
    use crate::kibam::KibamBattery;

    #[test]
    fn profile_aggregates() {
        let p = LoadProfile::repeating(vec![
            LoadStep::from_secs(1.1, 130.0),
            LoadStep::from_secs(1.2, 40.0),
        ]);
        assert!((p.period().as_secs_f64() - 2.3).abs() < 1e-9);
        let mean = (1.1 * 130.0 + 1.2 * 40.0) / 2.3;
        assert!((p.mean_current_ma().get() - mean).abs() < 1e-9);
    }

    #[test]
    fn ideal_lifetime_matches_arithmetic() {
        let mut b = IdealBattery::new(100.0);
        let p = LoadProfile::constant(50.0);
        let life = simulate_lifetime(&mut b, &p);
        assert!((life.lifetime.as_hours_f64() - 2.0).abs() < 1e-6);
        assert!(life.exhausted);
        assert!((life.delivered_mah.get() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn full_periods_counted() {
        let mut b = IdealBattery::new(10.0);
        // One period = 2 steps of 30 min at 10 mA → 10 mAh per hour-long period.
        let p = LoadProfile::repeating(vec![
            LoadStep::from_secs(1800.0, 10.0),
            LoadStep::from_secs(1800.0, 10.0),
        ]);
        let life = simulate_lifetime(&mut b, &p);
        // Dies exactly at the end of the first period (boundary: the second
        // step exhausts it); at most one full period can be counted.
        assert!(life.full_periods <= 1);
        assert!((life.lifetime.as_hours_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn non_repeating_profile_can_survive() {
        let mut b = IdealBattery::new(1000.0);
        let p = LoadProfile::once(vec![LoadStep::from_secs(3600.0, 100.0)]);
        let life = simulate_lifetime(&mut b, &p);
        assert!(!life.exhausted);
        assert!((life.delivered_mah.get() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn kibam_pulsed_profile_outlives_constant_mean() {
        // Recovery effect at the profile level: the pulsed 1A-style frame
        // must outlive a constant load at the same *on* current's average.
        let pulsed = LoadProfile::repeating(vec![
            LoadStep::from_secs(1.1, 130.0),
            LoadStep::from_secs(1.2, 40.0),
        ]);
        let mut b1 = KibamBattery::new(800.0, 0.4, 0.5);
        let l_pulsed = simulate_lifetime(&mut b1, &pulsed);
        let mut b2 = KibamBattery::new(800.0, 0.4, 0.5);
        let l_const = simulate_lifetime(&mut b2, &LoadProfile::constant(130.0));
        assert!(l_pulsed.lifetime > l_const.lifetime);
    }

    #[test]
    fn zero_current_repeating_profile_hits_horizon() {
        let mut b = IdealBattery::new(1.0);
        let p = LoadProfile::repeating(vec![LoadStep::from_secs(86_400.0, 0.0)]);
        let life = simulate_lifetime(&mut b, &p);
        assert!(!life.exhausted);
        assert!(life.lifetime.as_hours_f64() >= 10.0 * 365.0 * 24.0 - 25.0);
    }

    #[test]
    #[should_panic(expected = "empty load profile")]
    fn empty_profile_rejected() {
        let _ = LoadProfile::once(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive total duration")]
    fn zero_duration_repeating_rejected() {
        let _ = LoadProfile::repeating(vec![LoadStep::from_secs(0.0, 10.0)]);
    }
}
