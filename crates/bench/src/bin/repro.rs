//! Regenerate every table and figure of Liu & Chou (IPPS 2004).
//!
//! ```text
//! repro                 run everything (figures + all experiments)
//! repro --fig1          the ATR block diagram (Fig. 1)
//! repro --fig2          single-node timing-vs-power timeline (Fig. 2)
//! repro --fig3          two-node pipelined timeline (Fig. 3)
//! repro --fig5          the network configuration (Fig. 5)
//! repro --fig6          the ATR performance profile (Fig. 6)
//! repro --fig7          the power profile (Fig. 7)
//! repro --fig8          the partitioning schemes (Fig. 8)
//! repro --fig9          node-rotation timeline (Fig. 9)
//! repro --fig10         the experiment summary (Fig. 10)
//! repro --exp 2C        one experiment in detail (0A 0B 1 1A 2 2A 2B 2C)
//! repro --trace FILE    with --exp: stream structured events as JSONL
//! repro --counters      with --exp: print the monotonic event counters
//! repro --policy NAME   scheduling policy: `static` (the paper's fixed
//!                       behaviour, default), `soc-skew` (rotate when the
//!                       SoC spread crosses a threshold) or `adaptive`
//!                       (period feedback from observed skew). Non-static
//!                       policies need the rotation workload: they apply
//!                       to `--exp 2C`, `--montecarlo` (which then runs
//!                       the 2C base instead of 2B) and `--sweep policy`.
//! repro --ablations     the ablation studies (battery models, rotation
//!                       period, serial link, N-node partitions)
//! repro --scale         N-node generalization study (full discharges)
//! repro --sweep NAME    deterministic parallel sweep through the keyed
//!                       simulation cache; NAME is `scaling` (the N-node
//!                       study), `fig8` (partition schemes by simulated
//!                       lifetime) or `policy` (scheduling policies vs the
//!                       fixed-100 baseline on the 2C workload). Prints
//!                       the table, then the cache hit/miss counters.
//!                       `--threads N` picks the worker count (default:
//!                       one per core) and never changes the output bytes.
//! repro --montecarlo    Monte Carlo robustness study of experiment 2B
//!                       under fault injection. Options:
//!                         --trials N      trials (default 16)
//!                         --faults NAME   none lossy brownout battery harsh
//!                         --seed N        master seed (default 42)
//!                         --threads N     workers (default: one per core;
//!                                         the report never depends on it)
//!                         --horizon-s S   cap simulated time per trial
//!                         --no-recovery   strip §5.4 recovery (ablation)
//! repro --calibrate     re-run the battery-pack calibration residuals
//! repro --json          emit the Fig. 10 rows as JSON on stdout
//! ```
#![forbid(unsafe_code)]

use dles_battery::packs::itsy_pack_b;
use dles_core::experiment::{run_experiment, Experiment};
use dles_core::metrics::ExperimentResult;
use dles_core::node::BatterySpec;
use dles_core::partition::best_partition;
use dles_core::pipeline::{run_pipeline, run_pipeline_with};
use dles_core::policy::SchedulingPolicy;
use dles_core::report;
use dles_core::rotation::RotationConfig;
use dles_core::timeline::{capture_timeline, render_timeline};
use dles_core::workload::SystemConfig;
use dles_power::CurrentModel;
use dles_sim::{JsonlRecorder, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sys = SystemConfig::paper();
    let model = CurrentModel::itsy();

    // `--exp`, `--trace` and `--counters` combine; everything else is a
    // single standalone command.
    let mut exp_label: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut counters = false;
    let mut scale_max: usize = 4;
    let mut sweep_name: Option<String> = None;
    let mut montecarlo = false;
    let mut trials: usize = 16;
    let mut faults_name = "lossy".to_owned();
    let mut master_seed: u64 = 42;
    let mut threads: usize = 0;
    let mut horizon_s: Option<u64> = None;
    let mut no_recovery = false;
    let mut policy = SchedulingPolicy::Static;
    let mut commands: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp_label = Some(args.get(i).cloned().unwrap_or_else(|| "1".to_owned()));
            }
            "--montecarlo" => montecarlo = true,
            "--sweep" => {
                i += 1;
                match args.get(i) {
                    Some(name) => sweep_name = Some(name.clone()),
                    None => {
                        eprintln!("--sweep needs a study name (scaling | fig8 | policy)");
                        std::process::exit(2);
                    }
                }
            }
            "--trials" => {
                i += 1;
                trials = parse_num(args.get(i), "--trials");
            }
            "--faults" => {
                i += 1;
                match args.get(i) {
                    Some(name) => faults_name = name.clone(),
                    None => {
                        eprintln!("--faults needs a profile name");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                i += 1;
                master_seed = parse_num(args.get(i), "--seed");
            }
            "--threads" => {
                i += 1;
                threads = parse_num(args.get(i), "--threads");
            }
            "--horizon-s" => {
                i += 1;
                horizon_s = Some(parse_num(args.get(i), "--horizon-s"));
            }
            "--no-recovery" => no_recovery = true,
            "--policy" => {
                i += 1;
                let name = args.get(i).map(String::as_str).unwrap_or("");
                policy = SchedulingPolicy::by_name(name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown policy {name}; use one of: {}",
                        SchedulingPolicy::NAMES.join(" ")
                    );
                    std::process::exit(2);
                });
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(p) => trace_path = Some(p.clone()),
                    None => {
                        eprintln!("--trace needs a file path");
                        std::process::exit(2);
                    }
                }
            }
            "--counters" => counters = true,
            "--scale" => {
                commands.push("--scale".to_owned());
                if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    scale_max = n;
                    i += 1;
                }
            }
            other => commands.push(other.to_owned()),
        }
        i += 1;
    }

    if let Some(name) = &sweep_name {
        run_sweep_study(name, &sys, scale_max, threads);
        return;
    }

    if montecarlo {
        run_montecarlo_study(
            trials,
            &faults_name,
            master_seed,
            threads,
            horizon_s,
            no_recovery,
            policy,
        );
        return;
    }

    if let Some(label) = &exp_label {
        run_exp_detail(label, trace_path.as_deref(), counters, policy);
    } else if trace_path.is_some() || counters {
        eprintln!("--trace and --counters need --exp <label>");
        std::process::exit(2);
    }

    if args.is_empty() {
        print_fig1(&sys);
        println!();
        print_timeline_fig(
            Experiment::Exp1,
            None,
            "Fig. 2 — timing of a single node (4 frames)",
        );
        println!();
        print_timeline_fig(
            Experiment::Exp2,
            None,
            "Fig. 3 — timing of two pipelined nodes (6 frames)",
        );
        println!();
        print_fig5();
        println!();
        print!("{}", report::render_fig6(&sys));
        println!();
        print!("{}", report::render_fig7(&sys, &model));
        println!();
        print!("{}", report::render_fig8(&sys));
        println!();
        run_fig10(false);
        return;
    }
    for command in &commands {
        match command.as_str() {
            "--fig1" => print_fig1(&sys),
            "--fig2" => print_timeline_fig(
                Experiment::Exp1,
                None,
                "Fig. 2 — timing of a single node (4 frames)",
            ),
            "--fig3" => print_timeline_fig(
                Experiment::Exp2,
                None,
                "Fig. 3 — timing of two pipelined nodes (6 frames)",
            ),
            "--fig5" => print_fig5(),
            "--fig9" => print_timeline_fig(
                Experiment::Exp2C,
                Some(2),
                "Fig. 9 — node rotation on two nodes (rotating every 2 frames)",
            ),
            "--fig6" => print!("{}", report::render_fig6(&sys)),
            "--fig7" => print!("{}", report::render_fig7(&sys, &model)),
            "--fig8" => print!("{}", report::render_fig8(&sys)),
            "--fig10" => run_fig10(false),
            "--json" => run_fig10(true),
            "--ablations" => run_ablations(),
            "--scale" => {
                let rows = dles_core::scale::scaling_study(&sys, scale_max);
                print!("{}", dles_core::scale::render_scaling(&rows));
            }
            "--calibrate" => {
                println!("run `cargo run -p dles-bench --bin calibrate_packs` for the full fit;");
                println!("current pack parameters:");
                println!("  A: {:?}", dles_battery::packs::itsy_pack_a().kibam);
                println!("  B: {:?}", itsy_pack_b().kibam);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
}

/// One named sweep through a fresh `SweepEngine`: print the study table,
/// then the engine's cache hit/miss counters. Output is byte-identical
/// for any `--threads` value — CI diffs `--threads 1` against `2`.
fn run_sweep_study(name: &str, sys: &SystemConfig, scale_max: usize, threads: usize) {
    use dles_core::scale::{render_scaling, scaling_study_with};
    use dles_core::sweep::{
        fig8_lifetime_sweep, policy_lifetime_sweep, render_fig8_sweep, render_policy_sweep,
        SweepEngine,
    };
    let engine = SweepEngine::new();
    match name {
        "scaling" => {
            let rows = scaling_study_with(&engine, sys, scale_max, threads);
            print!("{}", render_scaling(&rows));
        }
        "fig8" => {
            let rows = fig8_lifetime_sweep(&engine, sys, threads);
            print!("{}", render_fig8_sweep(&rows));
        }
        "policy" => {
            let rows = policy_lifetime_sweep(&engine, threads);
            print!("{}", render_policy_sweep(&rows));
        }
        other => {
            eprintln!("unknown sweep {other}; use one of: scaling fig8 policy");
            std::process::exit(2);
        }
    }
    print!("{}", report::render_counters("sweep", &engine.counters()));
}

/// Parse a numeric flag argument or exit with a usage error.
fn parse_num<T: std::str::FromStr>(arg: Option<&String>, flag: &str) -> T {
    arg.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a number");
        std::process::exit(2);
    })
}

/// The Monte Carlo robustness study: N seeded trials of the experiment 2B
/// configuration (two nodes + §5.4 recovery) under a fault profile. With a
/// non-static `--policy` the base switches to the 2C rotation workload —
/// adaptive scheduling needs the rotation wave, which is mutually
/// exclusive with §5.4 recovery.
#[allow(clippy::too_many_arguments)]
fn run_montecarlo_study(
    trials: usize,
    faults_name: &str,
    master_seed: u64,
    threads: usize,
    horizon_s: Option<u64>,
    no_recovery: bool,
    policy: SchedulingPolicy,
) {
    use dles_core::faults::FaultProfile;
    use dles_core::montecarlo::{render_montecarlo, run_monte_carlo, MonteCarloConfig};
    let profile = FaultProfile::by_name(faults_name).unwrap_or_else(|| {
        eprintln!(
            "unknown fault profile {faults_name}; use one of: {}",
            FaultProfile::NAMES.join(" ")
        );
        std::process::exit(2);
    });
    let mut base = if policy.is_static() {
        Experiment::Exp2B.config()
    } else {
        dles_core::policy_config(policy)
    };
    if no_recovery && base.recovery.is_some() {
        base.recovery = None;
        base.label = format!("{} (no recovery)", base.label);
    }
    if let Some(s) = horizon_s {
        base.horizon = SimTime::from_secs(s);
    }
    let report = run_monte_carlo(&MonteCarloConfig {
        base,
        trials,
        master_seed,
        profile,
        threads,
    });
    print!("{}", render_montecarlo(&report));
}

/// Run one experiment in detail, optionally streaming its structured
/// event trace to a JSONL file and printing the monotonic event counters.
fn run_exp_detail(label: &str, trace_path: Option<&str>, counters: bool, policy: SchedulingPolicy) {
    let exp = Experiment::ALL
        .iter()
        .copied()
        .find(|e| e.label().eq_ignore_ascii_case(label))
        .unwrap_or_else(|| {
            eprintln!("unknown experiment {label}; use one of 0A 0B 1 1A 2 2A 2B 2C");
            std::process::exit(2);
        });
    let mut cfg = exp.config();
    if !policy.is_static() {
        if cfg.rotation.is_none() {
            eprintln!(
                "--policy {} needs the rotation workload; use --exp 2C",
                policy.name()
            );
            std::process::exit(2);
        }
        cfg.scheduling = policy;
    }
    let r = match trace_path {
        Some(path) => {
            let recorder = JsonlRecorder::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create trace file {path}: {e}");
                std::process::exit(2);
            });
            let r = run_pipeline_with(cfg, Box::new(recorder));
            eprintln!("trace written to {path}");
            r
        }
        None => run_experiment(&cfg),
    };
    print!("{}", report::render_experiment_detail(exp, &r));
    if counters {
        print!("{}", report::render_counters(exp.label(), &r.counters));
    }
}

fn run_fig10(json: bool) {
    // Run all §6 experiments in parallel; the runner returns them in the
    // paper's order regardless of scheduling.
    let results: Vec<(Experiment, ExperimentResult)> = Experiment::ALL
        .iter()
        .copied()
        .zip(dles_core::experiment::run_all_experiments(true))
        .collect();

    let fig10: Vec<_> = results
        .iter()
        .filter(|(e, _)| Experiment::FIG10.contains(e))
        .cloned()
        .collect();
    let rows = report::fig10_rows(&fig10);
    if json {
        println!("{}", report::to_json(&rows));
        return;
    }
    println!("§6.1 — no-I/O experiments (battery pack A; not comparable with the series below)");
    for (e, r) in results
        .iter()
        .filter(|(e, _)| matches!(e, Experiment::Exp0A | Experiment::Exp0B))
    {
        println!(
            "  ({}) {}: T = {:.2} h (paper {:.2} h), F = {:.1}K (paper {:.1}K)",
            e.label(),
            e.description(),
            r.life_hours(),
            e.paper_hours(),
            r.frames_completed as f64 / 1000.0,
            e.paper_kframes()
        );
    }
    println!();
    print!("{}", report::render_fig10(&rows));
    println!();
    for (e, r) in &fig10 {
        print!("{}", report::render_experiment_detail(*e, r));
    }
}

fn run_ablations() {
    let sys = SystemConfig::paper();

    println!("Ablation 1 — battery model (experiment 2C configuration)");
    let base_cfg = Experiment::Exp2C.config();
    let kibam = run_pipeline(base_cfg.clone());
    let cap = itsy_pack_b().kibam.capacity_mah;
    let mut ideal_cfg = base_cfg.clone();
    ideal_cfg.battery = BatterySpec::Ideal { capacity_mah: cap };
    let ideal = run_pipeline(ideal_cfg);
    let mut peukert_cfg = base_cfg.clone();
    peukert_cfg.battery = BatterySpec::Peukert {
        capacity_mah: cap,
        reference_ma: dles_units::MilliAmps::new(60.0),
        exponent: 1.2,
    };
    let peukert = run_pipeline(peukert_cfg);
    let mut rv_cfg = base_cfg.clone();
    rv_cfg.battery = BatterySpec::Rakhmatov(dles_battery::RvParams {
        alpha_mah: cap,
        beta_sq: 2.0,
        modes: 10,
    });
    let rv = run_pipeline(rv_cfg);
    println!(
        "  KiBaM {:.2} h | Rakhmatov-Vrudhula {:.2} h | ideal {:.2} h | Peukert {:.2} h",
        kibam.life_hours(),
        rv.life_hours(),
        ideal.life_hours(),
        peukert.life_hours()
    );

    println!("Ablation 2 — rotation period (frames between rotations)");
    for period in [1u64, 10, 100, 1000, 5000] {
        let mut cfg = Experiment::Exp2C.config();
        cfg.rotation = Some(RotationConfig::every(period));
        let r = run_pipeline(cfg);
        println!(
            "  every {:>5} frames: T = {:.2} h, {} deadline misses",
            period,
            r.life_hours(),
            r.deadline_misses
        );
    }

    println!("Ablation 3 — serial effective data rate (experiment 2)");
    for bps in [40_000.0, 80_000.0, 115_200.0, 230_400.0] {
        let mut cfg = Experiment::Exp2.config();
        cfg.sys.serial = cfg.sys.serial.with_effective_bps(bps);
        // Re-derive the minimum feasible levels under the new link speed.
        if let Some(best) = best_partition(&cfg.sys, 2) {
            cfg.shares = best.shares.clone();
            cfg.levels = best.levels.iter().map(|l| l.unwrap()).collect();
        }
        let r = run_pipeline(cfg);
        println!(
            "  {:>7.0} bps: T = {:.2} h, {} deadline misses / {} frames",
            bps,
            r.life_hours(),
            r.deadline_misses,
            r.frames_completed
        );
    }

    println!("Ablation 4 — N-node best partitions (analysis)");
    for n in 1..=4 {
        match best_partition(&sys, n) {
            Some(p) => {
                let levels: Vec<String> = p
                    .levels
                    .iter()
                    .map(|l| format!("{:.1}", l.unwrap().freq_mhz.mhz()))
                    .collect();
                println!(
                    "  N={n}: levels [{}] MHz, power proxy {:.0}",
                    levels.join(", "),
                    p.power_proxy()
                );
            }
            None => println!("  N={n}: no feasible partition"),
        }
    }
}

/// Fig. 1: the ATR block diagram, annotated with the Fig. 6 profile.
fn print_fig1(sys: &SystemConfig) {
    println!("Fig. 1 — Block diagram of the ATR algorithm");
    print!(
        "  [source {:>5.1} KB] -> ",
        sys.profile.input_bytes as f64 / 1024.0
    );
    for b in dles_atr::Block::ALL {
        let p = sys.profile.block(b);
        print!(
            "[{} {:.2}s] -({:.1} KB)-> ",
            b.name(),
            p.peak_secs,
            p.output_bytes as f64 / 1024.0
        );
    }
    println!("[destination]");
}

/// Fig. 5: the star topology over serial/PPP with host IP forwarding.
fn print_fig5() {
    println!(
        "Fig. 5 — Networking multiple Itsy units with a host computer\n\
         \n\
           host (source/destination, IP forwarding)\n\
             ├── ppp0 ── usb/serial ── serial ── itsy node1\n\
             ├── ppp1 ── usb/serial ── serial ── itsy node2\n\
             └── ppp2 ── usb/serial ── serial ── itsy node3\n\
         \n\
           line rate 115.2 kbps, measured ~80 kbps effective;\n\
           50–100 ms startup per transaction; node-to-node traffic\n\
           transits two serial lines via the host's IP forwarding."
    );
}

/// Render a figure timeline by running the experiment config briefly.
fn print_timeline_fig(exp: Experiment, rotation_period: Option<u64>, title: &str) {
    let mut cfg = exp.config();
    let frames = 6;
    if let Some(period) = rotation_period {
        cfg.rotation = Some(RotationConfig::every(period));
    }
    let tl = capture_timeline(cfg, frames);
    println!("{title}");
    print!("{}", render_timeline(&tl, SimTime::from_millis(100)));
}
