//! Re-run the KiBaM calibration that produced the constants in
//! `dles_battery::packs`, and print the fitted parameters and residuals.
//!
//! Anchors are the measured lifetimes the paper publishes, under the load
//! profiles implied by the Fig. 6 performance profile and the Fig. 7 power
//! profile:
//!
//! * pack A (no-I/O battery state): experiments 0A, 0B;
//! * pack B (pipelined-series battery state): experiments 1, 1A, 2, 2C.
//!
//! Usage: `cargo run -p dles-bench --bin calibrate_packs [--iters N]`
#![forbid(unsafe_code)]

use dles_battery::kibam::KibamParams;
use dles_battery::{calibrate_kibam, Anchor, LoadProfile, LoadStep};
use dles_power::{CurrentModel, DvsTable, Mode};

fn main() {
    let iters: usize = std::env::args()
        .skip_while(|a| a != "--iters")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);

    let table = DvsTable::sa1100();
    let model = CurrentModel::itsy();
    let i = |mode: Mode, mhz: f64| {
        model
            .current_ma(
                mode,
                table.by_freq(dles_units::Hertz::from_mhz(mhz)).unwrap(),
            )
            .get()
    };

    // ---------------- pack A: no-I/O experiments ----------------
    let comp206 = i(Mode::Computation, 206.4);
    let comp103 = i(Mode::Computation, 103.2);
    // The low-rate prior pins the nominal capacity near a physically
    // plausible value for Itsy's pack (~900 mAh at a 15 mA trickle);
    // without it the two measured anchors under-determine the fit.
    let pack_a_anchors = vec![
        Anchor::new("0A", LoadProfile::constant(comp206), 3.4),
        Anchor::new("0B", LoadProfile::constant(comp103), 12.9),
        Anchor::new("C-prior", LoadProfile::constant(15.0), 900.0 / 15.0).weighted(0.5),
    ];
    let start_a = KibamParams {
        capacity_mah: dles_units::MilliAmpHours::new(700.0),
        c: 0.5,
        k: 0.2,
    };
    let fit_a = calibrate_kibam(&pack_a_anchors, start_a, iters);
    println!(
        "pack A: {:?}  objective {:.3e}",
        fit_a.params, fit_a.objective
    );
    for (label, pred, meas) in &fit_a.residuals {
        println!("  {label}: predicted {pred:.2} h, measured {meas:.2} h");
    }

    // ---------------- pack B: pipelined I/O-bound series ----------------
    let comm206 = i(Mode::Communication, 206.4);
    let comm103 = i(Mode::Communication, 103.2);
    let comm59 = i(Mode::Communication, 59.0);
    let comp59 = i(Mode::Computation, 59.0);
    let idle59 = i(Mode::Idle, 59.0);
    let idle103 = i(Mode::Idle, 103.2);

    // Experiment 1 — baseline: RECV 1.1 s + PROC 1.1 s + SEND 0.1 s @206.4.
    let exp1 = LoadProfile::repeating(vec![
        LoadStep::from_secs(1.1, comm206),
        LoadStep::from_secs(1.1, comp206),
        LoadStep::from_secs(0.1, comm206),
    ]);
    // Experiment 1A — DVS during I/O: comm at 59 MHz.
    let exp1a = LoadProfile::repeating(vec![
        LoadStep::from_secs(1.1, comm59),
        LoadStep::from_secs(1.1, comp206),
        LoadStep::from_secs(0.1, comm59),
    ]);
    // Experiment 2, Node2 (the first to die): RECV 0.6 KB, PROC at 103.2,
    // SEND 0.1 KB, idle remainder of D = 2.3 s.
    let exp2_node2 = LoadProfile::repeating(vec![
        LoadStep::from_secs(0.136, comm103),
        LoadStep::from_secs(1.876, comp103),
        LoadStep::from_secs(0.085, comm103),
        LoadStep::from_secs(0.203, idle103),
    ]);
    // Experiment 2C — node rotation every 100 frames, with DVS during I/O.
    // Each node alternates 100 Node1-frames with 100 Node2-frames.
    let node1_frame = [
        LoadStep::from_secs(1.11, comm59),
        LoadStep::from_secs(0.567, comp59),
        LoadStep::from_secs(0.136, comm59),
        LoadStep::from_secs(0.487, idle59),
    ];
    let node2_frame = [
        LoadStep::from_secs(0.136, comm59),
        LoadStep::from_secs(1.876, comp103),
        LoadStep::from_secs(0.085, comm59),
        LoadStep::from_secs(0.203, idle103),
    ];
    let mut rotation_steps = Vec::new();
    for _ in 0..100 {
        rotation_steps.extend_from_slice(&node1_frame);
    }
    for _ in 0..100 {
        rotation_steps.extend_from_slice(&node2_frame);
    }
    let exp2c = LoadProfile::repeating(rotation_steps);

    // 1A gets a reduced weight: its measured charge delivery is inconsistent
    // with the rest of the series under any rate-monotone battery model (the
    // battery delivered *less* charge at a *lower* average current than
    // experiment 1), so the fit cannot satisfy it and the others at once.
    let pack_b_anchors = vec![
        Anchor::new("1", exp1, 6.13),
        Anchor::new("1A", exp1a, 7.6).weighted(0.25),
        Anchor::new("2/N2", exp2_node2, 14.1),
        Anchor::new("2C", exp2c, 17.82),
        Anchor::new("C-prior", LoadProfile::constant(15.0), 900.0 / 15.0).weighted(0.5),
    ];
    let start_b = KibamParams {
        capacity_mah: dles_units::MilliAmpHours::new(850.0),
        c: 0.6,
        k: 0.5,
    };
    let fit_b = calibrate_kibam(&pack_b_anchors, start_b, iters);
    println!(
        "pack B: {:?}  objective {:.3e}",
        fit_b.params, fit_b.objective
    );
    for (label, pred, meas) in &fit_b.residuals {
        println!("  {label}: predicted {pred:.2} h, measured {meas:.2} h");
    }
}
