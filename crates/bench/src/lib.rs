//! # dles-bench — benchmark harness and reproduction binaries
//!
//! * `repro` — regenerates every table and figure of the paper
//!   (`cargo run -p dles-bench --bin repro --release`);
//! * `calibrate_packs` — re-runs the battery calibration behind
//!   `dles_battery::packs`;
//! * criterion benches (`cargo bench`) — one target per paper artifact
//!   plus kernel microbenchmarks and ablations; see `benches/`.
//!
//! This library crate only hosts small helpers shared by the benches.
#![forbid(unsafe_code)]

use dles_core::experiment::Experiment;
use dles_core::metrics::ExperimentResult;

/// Run one experiment by label (helper for benches and scripts).
pub fn run_by_label(label: &str) -> Option<ExperimentResult> {
    Experiment::ALL
        .iter()
        .find(|e| e.label().eq_ignore_ascii_case(label))
        .map(|e| dles_core::experiment::run_experiment(&e.config()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_by_label_resolves() {
        assert!(run_by_label("nope").is_none());
        let r = run_by_label("0A").expect("known label");
        assert!(r.frames_completed > 0);
    }
}
