//! Hot-path microbenches backing the D015/D016 dataflow lints: trace
//! emission through the buffered [`JsonlRecorder`] vs the pre-fix
//! per-record allocating renderer, plus raw event-dispatch throughput of
//! the engine loop the lints guard.
//!
//! Besides the usual criterion lines, `main` writes the measured medians
//! and the emission speedup to `BENCH_hotpath.json` at the repo root —
//! the committed baseline the docs quote.

use criterion::{black_box, Criterion};
use dles_sim::{Ctx, Engine, FieldValue, JsonlRecorder, Recorder, SimTime, TraceRecord, World};
use std::io::{self, Write as _};

/// Records rendered per bench iteration.
const RECORDS_PER_ITER: usize = 1_000;
/// Events dispatched per bench iteration.
const EVENTS_PER_ITER: u64 = 20_000;

/// A varied batch shaped like real EXP-2C traffic: state transitions,
/// frame completions, and battery samples with mixed field types.
fn sample_records() -> Vec<TraceRecord> {
    (0..RECORDS_PER_ITER)
        .map(|i| {
            let t = SimTime::from_micros(i as u64 * 1_731);
            match i % 3 {
                0 => TraceRecord::new(t, format!("node{}", i % 4), "state_transition")
                    .with("from", "Idle")
                    .with("to", "Computation")
                    .with("freq_mhz", 206.4),
                1 => TraceRecord::new(t, "host", "frame_complete")
                    .with("frame", i as u64)
                    .with("latency_us", 1_876_000u64)
                    .with("on_time", i % 2 == 0),
                _ => TraceRecord::new(t, format!("node{}", i % 4), "battery_sample")
                    .with("available_mah", 283.1 - i as f64 * 0.01)
                    .with("bound_mah", 56.9)
                    .with("soc", 0.93),
            }
        })
        .collect()
}

/// The pre-fix rendering: one fresh `String` per record assembled with
/// `format!`, plus `FieldValue` temporaries for `component` and `kind` —
/// exactly the churn D015 flagged, kept here as the measured baseline.
fn alloc_render(r: &TraceRecord) -> String {
    let mut line = format!("{{\"t_us\": {}", r.time.as_micros());
    line.push_str(&format!(
        ", \"component\": {}",
        FieldValue::Str(r.component.clone())
    ));
    line.push_str(&format!(
        ", \"kind\": {}",
        FieldValue::Str(r.kind.to_string())
    ));
    for (name, value) in &r.fields {
        line.push_str(&format!(", \"{name}\": {value}"));
    }
    line.push('}');
    line
}

fn bench_trace_emit(c: &mut Criterion) {
    let records = sample_records();
    let mut group = c.benchmark_group("hot_path");
    group.sample_size(20);
    group.bench_function("trace_emit_alloc", |b| {
        let mut sink = io::sink();
        b.iter(|| {
            for r in &records {
                let mut line = alloc_render(black_box(r));
                line.push('\n');
                let _ = sink.write_all(line.as_bytes());
            }
        })
    });
    group.bench_function("trace_emit_buffered", |b| {
        let mut rec = JsonlRecorder::to_writer(Box::new(io::sink()));
        b.iter(|| {
            for r in &records {
                rec.record(black_box(r).clone());
            }
        })
    });
    group.finish();
}

/// Self-rescheduling world: each handled event schedules the next one
/// until the budget runs out, so a run is `EVENTS_PER_ITER` pure
/// pop → advance → dispatch cycles with no model work attached.
struct Ticker {
    remaining: u64,
}

impl World for Ticker {
    type Event = ();
    fn handle(&mut self, ctx: &mut Ctx<()>, _event: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_in(SimTime::from_micros(1), ());
        }
    }
}

fn bench_event_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path");
    group.sample_size(20);
    group.bench_function("event_dispatch", |b| {
        b.iter(|| {
            let mut engine = Engine::new(Ticker {
                remaining: black_box(EVENTS_PER_ITER),
            });
            engine.schedule_at(SimTime::ZERO, ());
            engine.run();
            engine.processed()
        })
    });
    group.finish();
}

fn write_baseline(c: &Criterion) {
    let median_ns = |label: &str| {
        c.results()
            .iter()
            .find(|s| s.label == format!("hot_path/{label}"))
            .map(|s| s.median.as_nanos())
            .unwrap_or(0)
    };
    let alloc = median_ns("trace_emit_alloc");
    let buffered = median_ns("trace_emit_buffered");
    let dispatch = median_ns("event_dispatch");
    let speedup = if buffered > 0 {
        alloc as f64 / buffered as f64
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"bench\": \"hot_path\",\n  \"records_per_iter\": {RECORDS_PER_ITER},\n  \
         \"events_per_iter\": {EVENTS_PER_ITER},\n  \
         \"trace_emit_alloc_median_ns\": {alloc},\n  \
         \"trace_emit_buffered_median_ns\": {buffered},\n  \
         \"event_dispatch_median_ns\": {dispatch},\n  \
         \"trace_emit_speedup\": {speedup:.2}\n}}\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::write(path, &json).expect("write BENCH_hotpath.json");
    println!("wrote {path}:\n{json}");
}

fn main() {
    let mut c = Criterion::default();
    bench_trace_emit(&mut c);
    bench_event_dispatch(&mut c);
    write_baseline(&c);
}
