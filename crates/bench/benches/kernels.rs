//! Microbenchmarks of the computational kernels underlying the
//! reproduction: FFTs, PPP framing, battery stepping, scene generation,
//! and the calibration optimizer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dles_atr::complexnum::Complex;
use dles_atr::fft::{fft2d_in_place, fft_in_place};
use dles_atr::scene::SceneBuilder;
use dles_battery::{simulate_lifetime, Battery, KibamBattery, LoadProfile, LoadStep, NelderMead};
use dles_net::ppp::{decode_frames, encode_frame};
use dles_sim::SimTime;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for log2 in [8u32, 10, 12] {
        let n = 1usize << log2;
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::new("fft_1d", n), &signal, |b, s| {
            b.iter(|| {
                let mut buf = s.clone();
                fft_in_place(black_box(&mut buf), false)
            })
        });
    }
    let (w, h) = (64usize, 64usize);
    let img: Vec<Complex> = (0..w * h)
        .map(|i| Complex::real(((i * 37) % 251) as f64))
        .collect();
    group.bench_function("fft_2d_64x64", |b| {
        b.iter(|| {
            let mut buf = img.clone();
            fft2d_in_place(black_box(&mut buf), w, h, false)
        })
    });
    group.finish();
}

fn bench_ppp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppp");
    // The paper's 7.5 KB intermediate payload.
    let payload: Vec<u8> = (0..7_680u32).map(|i| (i % 253) as u8).collect();
    group.bench_function("encode_7.5k", |b| {
        b.iter(|| encode_frame(black_box(&payload)))
    });
    let wire = encode_frame(&payload);
    group.bench_function("decode_7.5k", |b| {
        b.iter(|| decode_frames(black_box(&wire)))
    });
    group.finish();
}

fn bench_battery(c: &mut Criterion) {
    let mut group = c.benchmark_group("battery");
    group.bench_function("kibam_step", |b| {
        let mut batt = KibamBattery::new(1000.0, 0.6, 0.2);
        b.iter(|| {
            if batt.is_exhausted() {
                batt.reset();
            }
            batt.discharge(
                SimTime::from_secs_f64(2.3),
                black_box(dles_units::MilliAmps::new(80.0)),
            )
        })
    });
    // Full discharge of the experiment-1A frame shape.
    let profile = LoadProfile::repeating(vec![
        LoadStep::from_secs(1.1, 130.0),
        LoadStep::from_secs(1.2, 40.0),
    ]);
    group.bench_function("kibam_lifetime_pulsed", |b| {
        b.iter(|| {
            let mut batt = KibamBattery::new(963.2, 0.6412, 0.1672);
            simulate_lifetime(&mut batt, black_box(&profile))
        })
    });
    group.finish();
}

fn bench_scene(c: &mut Criterion) {
    c.bench_function("scene_gen_128x80", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            SceneBuilder::new(128, 80).seed(seed).targets(1).build()
        })
    });
}

fn bench_optimizer(c: &mut Criterion) {
    c.bench_function("nelder_mead_rosenbrock", |b| {
        let f = |x: &[f64; 3]| {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2) + x[2] * x[2]
        };
        b.iter(|| {
            let mut nm = NelderMead::new(black_box([-1.2, 1.0, 0.5]), 0.5);
            nm.minimize(&f, 500, 1e-12);
            nm.best_value()
        })
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_ppp,
    bench_battery,
    bench_scene,
    bench_optimizer
);
criterion_main!(benches);
