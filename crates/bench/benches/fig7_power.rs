//! Fig. 7 regeneration bench: evaluating the three-mode current model
//! over the full 11-level DVS table, plus the power-state machinery that
//! integrates a node's discharge waveform.
//!
//! The Fig. 7 table itself is printed by `repro --fig7`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dles_power::{CurrentModel, DvsTable, Mode, PowerMonitor, PowerState};
use dles_sim::SimTime;

fn bench_current_model(c: &mut Criterion) {
    let table = DvsTable::sa1100();
    let model = CurrentModel::itsy();
    c.bench_function("fig7_table_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for level in table.iter() {
                for mode in Mode::ALL {
                    acc += model.current_ma(black_box(mode), black_box(level)).get();
                }
            }
            acc
        })
    });
}

fn bench_power_state(c: &mut Criterion) {
    let table = DvsTable::sa1100();
    let model = CurrentModel::itsy();
    c.bench_function("power_state_frame_cycle", |b| {
        // One baseline frame: RECV, PROC, SEND transitions + monitor.
        b.iter(|| {
            let mut ps = PowerState::new(model.clone(), Mode::Idle, table.highest());
            let mut mon = PowerMonitor::new();
            let mut t = SimTime::ZERO;
            for (dur_ms, mode) in [
                (1100u64, Mode::Communication),
                (1100, Mode::Computation),
                (100, Mode::Communication),
            ] {
                t += SimTime::from_millis(dur_ms);
                let (d, i) = ps.transition(t, mode, table.highest());
                mon.record(t, d, i);
            }
            black_box(mon.charge_mah())
        })
    });
}

criterion_group!(benches, bench_current_model, bench_power_state);
criterion_main!(benches);
