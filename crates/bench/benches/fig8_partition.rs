//! Fig. 8 regeneration bench: the partitioning feasibility analysis over
//! all candidate schemes for 1–4 nodes.
//!
//! The Fig. 8 table itself is printed by `repro --fig8`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dles_core::partition::{best_partition, fig8_schemes};
use dles_core::workload::SystemConfig;

fn bench_fig8(c: &mut Criterion) {
    let sys = SystemConfig::paper();
    c.bench_function("fig8_three_schemes", |b| {
        b.iter(|| fig8_schemes(black_box(&sys)))
    });
    let mut group = c.benchmark_group("best_partition");
    for n in 1..=4usize {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| best_partition(black_box(&sys), n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
