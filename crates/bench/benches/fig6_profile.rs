//! Fig. 6 regeneration bench: measure the four real ATR blocks and check
//! (at bench build time) that the measured profile's *shape* — Compute
//! Distance > IFFT > FFT > Target Detection — matches the published one.
//!
//! The actual Fig. 6 table is printed by `repro --fig6`; this bench
//! measures the real implementation that the profile numbers model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dles_atr::detect::{detect_targets, DetectConfig};
use dles_atr::distance::{compute_distance, DEFAULT_SCALES};
use dles_atr::filter::{fft_block, ifft_block, TemplateSpectra};
use dles_atr::scene::SceneBuilder;
use dles_atr::template::Template;

fn bench_blocks(c: &mut Criterion) {
    let scene = SceneBuilder::new(128, 80).seed(5).targets(1).build();
    let spectra = TemplateSpectra::build(&Template::bank());
    let cfg = DetectConfig::default();
    let (rois, _) = detect_targets(&scene.image, &cfg);
    let roi = rois.first().copied().expect("scene 5 has a detection");
    let patch = roi.extract(&scene.image);
    let (filtered, _) = fft_block(&patch, &spectra);
    let (matched, _) = ifft_block(&filtered);

    let mut group = c.benchmark_group("fig6_blocks");
    group.bench_function("target_detection", |b| {
        b.iter(|| detect_targets(black_box(&scene.image), &cfg))
    });
    group.bench_function("fft", |b| b.iter(|| fft_block(black_box(&patch), &spectra)));
    group.bench_function("ifft", |b| b.iter(|| ifft_block(black_box(&filtered))));
    group.bench_function("compute_distance", |b| {
        b.iter(|| compute_distance(black_box(&patch), matched.class, &DEFAULT_SCALES))
    });
    group.finish();
}

fn bench_full_frame(c: &mut Criterion) {
    let pipeline = dles_atr::AtrPipeline::standard();
    let scene = SceneBuilder::new(128, 80).seed(5).targets(1).build();
    c.bench_function("fig6_full_atr_frame", |b| {
        b.iter(|| pipeline.run(black_box(&scene.image)))
    });
}

criterion_group!(benches, bench_blocks, bench_full_frame);
criterion_main!(benches);
