//! Fig. 10 regeneration bench: discrete-event simulation throughput for
//! each §6 system configuration, over a fixed one-simulated-hour horizon
//! (the full runs to battery exhaustion are `repro --fig10`; here we
//! measure how fast the simulator regenerates them).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dles_core::experiment::Experiment;
use dles_core::pipeline::run_pipeline;
use dles_sim::SimTime;

fn bench_fig10_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_sim_1h");
    group.sample_size(10);
    for e in Experiment::FIG10 {
        group.bench_with_input(BenchmarkId::from_parameter(e.label()), &e, |b, &e| {
            b.iter(|| {
                let mut cfg = e.config();
                cfg.horizon = SimTime::from_secs(3600); // one simulated hour
                run_pipeline(cfg)
            })
        });
    }
    group.finish();
}

fn bench_full_baseline_discharge(c: &mut Criterion) {
    // One complete baseline run to battery exhaustion (≈6 simulated hours).
    let mut group = c.benchmark_group("fig10_full_discharge");
    group.sample_size(10);
    group.bench_function("exp1_to_exhaustion", |b| {
        b.iter(|| run_pipeline(Experiment::Exp1.config()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig10_configs, bench_full_baseline_discharge);
criterion_main!(benches);
