//! Sweep-engine scaling bench: the Fig. 10 scaling-study job set pushed
//! through `dles_core::sweep::SweepEngine` serially (`--threads 1`),
//! with one worker per core, and again against a warm cache.
//!
//! Besides printing the usual criterion lines, `main` writes the measured
//! medians and the parallel speedup to `BENCH_sweep.json` at the repo
//! root — the committed baseline the docs quote. Horizons are capped so a
//! sample is one bounded slice of the real pipeline physics rather than a
//! full multi-hour discharge.

use criterion::{black_box, Criterion};
use dles_core::policy::DvsPolicy;
use dles_core::rotation::RotationConfig;
use dles_core::scale::n_node_config;
use dles_core::sweep::SweepEngine;
use dles_core::{PipelineConfig, SystemConfig};
use dles_sim::SimTime;

/// The scaling-study fan-out (1..=4 nodes, static and rotation variants),
/// horizon-capped to keep one serial pass around a second.
fn scaling_jobs() -> Vec<PipelineConfig> {
    let sys = SystemConfig::paper();
    let mut jobs = Vec::new();
    for n in 1..=4 {
        let mut variants = vec![n_node_config(&sys, n, DvsPolicy::DvsDuringIo, None)];
        if n >= 2 {
            variants.push(n_node_config(
                &sys,
                n,
                DvsPolicy::DvsDuringIo,
                Some(RotationConfig::paper()),
            ));
        }
        for (v, cfg) in variants.into_iter().enumerate() {
            let mut cfg = cfg.expect("paper system is feasible at 1..=4 nodes");
            cfg.label = format!("bench {n}-node v{v}");
            cfg.horizon = SimTime::from_secs(1800);
            jobs.push(cfg);
        }
    }
    jobs
}

fn bench_sweep(c: &mut Criterion) {
    let jobs = scaling_jobs();
    let mut group = c.benchmark_group("sweep_parallel");
    group.sample_size(10);
    group.bench_function("serial_1thread", |b| {
        b.iter(|| SweepEngine::new().run(black_box(&jobs), 1))
    });
    group.bench_function("parallel_all_cores", |b| {
        b.iter(|| SweepEngine::new().run(black_box(&jobs), 0))
    });
    let warm = SweepEngine::new();
    warm.run(&jobs, 0); // populate the cache once, outside the timing loop
    group.bench_function("warm_cache", |b| b.iter(|| warm.run(black_box(&jobs), 0)));
    group.finish();
}

fn write_baseline(c: &Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let median_ns = |label: &str| {
        c.results()
            .iter()
            .find(|s| s.label == format!("sweep_parallel/{label}"))
            .map(|s| s.median.as_nanos())
            .unwrap_or(0)
    };
    let serial = median_ns("serial_1thread");
    let parallel = median_ns("parallel_all_cores");
    let warm = median_ns("warm_cache");
    let speedup = if parallel > 0 {
        serial as f64 / parallel as f64
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"bench\": \"sweep_parallel\",\n  \"cores\": {cores},\n  \"jobs\": {jobs},\n  \
         \"serial_1thread_median_ns\": {serial},\n  \"parallel_all_cores_median_ns\": {parallel},\n  \
         \"warm_cache_median_ns\": {warm},\n  \"parallel_speedup\": {speedup:.2}\n}}\n",
        jobs = scaling_jobs().len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, &json).expect("write BENCH_sweep.json");
    println!("wrote {path}:\n{json}");
}

fn main() {
    let mut c = Criterion::default();
    bench_sweep(&mut c);
    write_baseline(&c);
}
