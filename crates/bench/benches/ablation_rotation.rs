//! Ablation benches for the design choices DESIGN.md calls out:
//! rotation period, battery model, and serial-link speed — each over a
//! fixed simulated horizon so criterion measures comparable work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dles_battery::packs::itsy_pack_b;
use dles_core::experiment::Experiment;
use dles_core::node::BatterySpec;
use dles_core::pipeline::run_pipeline;
use dles_core::rotation::RotationConfig;
use dles_sim::SimTime;

const HORIZON: SimTime = SimTime(3600 * 1_000_000); // one simulated hour

fn bench_rotation_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rotation_period");
    group.sample_size(10);
    for period in [1u64, 10, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(period),
            &period,
            |b, &period| {
                b.iter(|| {
                    let mut cfg = Experiment::Exp2C.config();
                    cfg.rotation = Some(RotationConfig::every(period));
                    cfg.horizon = HORIZON;
                    run_pipeline(cfg)
                })
            },
        );
    }
    group.finish();
}

fn bench_battery_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_battery_model");
    group.sample_size(10);
    let cap = itsy_pack_b().kibam.capacity_mah;
    let specs: [(&str, BatterySpec); 3] = [
        ("kibam", BatterySpec::Kibam(itsy_pack_b().kibam)),
        ("ideal", BatterySpec::Ideal { capacity_mah: cap }),
        (
            "peukert",
            BatterySpec::Peukert {
                capacity_mah: cap,
                reference_ma: dles_units::MilliAmps::new(60.0),
                exponent: 1.2,
            },
        ),
    ];
    for (name, spec) in specs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| {
                let mut cfg = Experiment::Exp2.config();
                cfg.battery = *spec;
                cfg.horizon = HORIZON;
                run_pipeline(cfg)
            })
        });
    }
    group.finish();
}

fn bench_link_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_link_speed");
    group.sample_size(10);
    for bps in [40_000u64, 80_000, 230_400] {
        group.bench_with_input(BenchmarkId::from_parameter(bps), &bps, |b, &bps| {
            b.iter(|| {
                let mut cfg = Experiment::Exp1.config();
                cfg.sys.serial = cfg.sys.serial.with_effective_bps(bps as f64);
                cfg.horizon = HORIZON;
                run_pipeline(cfg)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rotation_period,
    bench_battery_models,
    bench_link_speed
);
criterion_main!(benches);
