//! §6 battery-lifetime regeneration bench: full discharge of the
//! calibrated Itsy packs under the per-experiment load profiles derived
//! from the Fig. 6/7 models (the analytic counterpart of the
//! discrete-event runs `repro --fig10` performs).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dles_battery::packs::{itsy_pack_a, itsy_pack_b};
use dles_battery::{simulate_lifetime, LoadProfile, LoadStep};
use dles_power::{CurrentModel, DvsTable, Mode};

/// The analytic per-frame load profiles of the §6 experiments.
fn profiles() -> Vec<(&'static str, bool, LoadProfile)> {
    let table = DvsTable::sa1100();
    let model = CurrentModel::itsy();
    let i = |mode: Mode, mhz: f64| {
        model
            .current_ma(
                mode,
                table.by_freq(dles_units::Hertz::from_mhz(mhz)).unwrap(),
            )
            .get()
    };
    let comp206 = i(Mode::Computation, 206.4);
    let comp103 = i(Mode::Computation, 103.2);
    let comm206 = i(Mode::Communication, 206.4);
    let comm103 = i(Mode::Communication, 103.2);
    let comm59 = i(Mode::Communication, 59.0);
    let idle103 = i(Mode::Idle, 103.2);
    vec![
        ("0A", true, LoadProfile::constant(comp206)),
        ("0B", true, LoadProfile::constant(comp103)),
        (
            "1",
            false,
            LoadProfile::repeating(vec![
                LoadStep::from_secs(1.1, comm206),
                LoadStep::from_secs(1.1, comp206),
                LoadStep::from_secs(0.1, comm206),
            ]),
        ),
        (
            "1A",
            false,
            LoadProfile::repeating(vec![
                LoadStep::from_secs(1.1, comm59),
                LoadStep::from_secs(1.1, comp206),
                LoadStep::from_secs(0.1, comm59),
            ]),
        ),
        (
            "2/node2",
            false,
            LoadProfile::repeating(vec![
                LoadStep::from_secs(0.136, comm103),
                LoadStep::from_secs(1.876, comp103),
                LoadStep::from_secs(0.085, comm103),
                LoadStep::from_secs(0.203, idle103),
            ]),
        ),
    ]
}

fn bench_lifetimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_battery_life");
    for (label, pack_a, profile) in profiles() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &profile, |b, p| {
            b.iter(|| {
                let mut batt = if pack_a {
                    itsy_pack_a().fresh()
                } else {
                    itsy_pack_b().fresh()
                };
                simulate_lifetime(&mut batt, black_box(p))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lifetimes);
criterion_main!(benches);
