//! Cross-module property tests for the simulation kernel.

#![cfg(test)]

use crate::engine::{Ctx, Engine, World};
use crate::event::EventQueue;
use crate::time::SimTime;
use proptest::prelude::*;

proptest! {
    /// The queue pops every pushed (non-cancelled) event exactly once, in
    /// non-decreasing time order, with ties in insertion order.
    #[test]
    fn queue_pops_sorted_and_complete(
        times in prop::collection::vec(0u64..1_000_000, 1..200),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push((q.push(SimTime::from_micros(t), i), i, t));
        }
        let mut cancelled = Vec::new();
        for ((id, i, _), &c) in ids.iter().zip(cancel_mask.iter().cycle()) {
            if c {
                prop_assert!(q.cancel(*id));
                cancelled.push(*i);
            }
        }
        let mut popped = Vec::new();
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(entry) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(entry.time > lt || (entry.time == lt && entry.event > li),
                    "order violated");
            }
            last = Some((entry.time, entry.event));
            popped.push(entry.event);
        }
        let mut expect: Vec<usize> = (0..times.len())
            .filter(|i| !cancelled.contains(i))
            .collect();
        let mut got = popped.clone();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// SimTime arithmetic: conversions are monotone and sub saturates.
    #[test]
    fn simtime_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = SimTime::from_micros(a);
        let tb = SimTime::from_micros(b);
        prop_assert_eq!((ta + tb).as_micros(), a + b);
        prop_assert_eq!((ta - tb).as_micros(), a.saturating_sub(b));
        prop_assert_eq!(ta.max(tb).as_micros(), a.max(b));
        prop_assert_eq!(ta.min(tb).as_micros(), a.min(b));
        // Seconds roundtrip within 1 µs of rounding (for spans inside
        // f64's exact-integer range; experiments live well inside it).
        if a < (1u64 << 52) {
            let rt = SimTime::from_secs_f64(ta.as_secs_f64());
            prop_assert!(rt.as_micros().abs_diff(a) <= 1);
        }
    }

    /// The engine's clock never runs backwards regardless of the schedule.
    #[test]
    fn engine_clock_monotone(delays in prop::collection::vec(0u64..10_000, 1..100)) {
        struct Chain {
            delays: Vec<u64>,
            idx: usize,
            times: Vec<SimTime>,
        }
        impl World for Chain {
            type Event = ();
            fn handle(&mut self, ctx: &mut Ctx<()>, _: ()) {
                self.times.push(ctx.now());
                if self.idx < self.delays.len() {
                    let d = self.delays[self.idx];
                    self.idx += 1;
                    ctx.schedule_in(SimTime::from_micros(d), ());
                }
            }
        }
        let mut engine = Engine::new(Chain { delays, idx: 0, times: vec![] });
        engine.schedule_at(SimTime::ZERO, ());
        engine.run();
        let times = &engine.world().times;
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(times.len() as u64, engine.processed());
    }
}
