//! Cross-module randomized tests for the simulation kernel (seeded, so
//! deterministic — no external property-testing framework).

#![cfg(test)]

use crate::engine::{Ctx, Engine, World};
use crate::event::EventQueue;
use crate::rng::SimRng;
use crate::time::SimTime;

/// The queue pops every pushed (non-cancelled) event exactly once, in
/// non-decreasing time order, with ties in insertion order.
#[test]
fn queue_pops_sorted_and_complete() {
    let mut rng = SimRng::seed_from_u64(0xD1CE);
    for round in 0..64 {
        let n = rng.uniform_u64(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 999_999)).collect();
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push((q.push(SimTime::from_micros(t), i), i));
        }
        let mut cancelled = Vec::new();
        for (id, i) in &ids {
            if rng.chance(0.3) {
                assert!(q.cancel(*id), "round {round}");
                cancelled.push(*i);
            }
        }
        let mut popped = Vec::new();
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(entry) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(
                    entry.time > lt || (entry.time == lt && entry.event > li),
                    "round {round}: order violated"
                );
            }
            last = Some((entry.time, entry.event));
            popped.push(entry.event);
        }
        let mut expect: Vec<usize> = (0..n).filter(|i| !cancelled.contains(i)).collect();
        expect.sort_unstable();
        popped.sort_unstable();
        assert_eq!(popped, expect, "round {round}");
    }
}

/// SimTime arithmetic: conversions are monotone and sub saturates.
#[test]
fn simtime_arithmetic() {
    let mut rng = SimRng::seed_from_u64(0x71AE);
    for _ in 0..512 {
        let a = rng.uniform_u64(0, u64::MAX / 4);
        let b = rng.uniform_u64(0, u64::MAX / 4);
        let ta = SimTime::from_micros(a);
        let tb = SimTime::from_micros(b);
        assert_eq!((ta + tb).as_micros(), a + b);
        assert_eq!((ta - tb).as_micros(), a.saturating_sub(b));
        assert_eq!(ta.max(tb).as_micros(), a.max(b));
        assert_eq!(ta.min(tb).as_micros(), a.min(b));
        // Seconds roundtrip within 1 µs of rounding (for spans inside
        // f64's exact-integer range; experiments live well inside it).
        let small = rng.uniform_u64(0, (1 << 52) - 1);
        let ts = SimTime::from_micros(small);
        let rt = SimTime::from_secs_f64(ts.as_secs_f64());
        assert!(rt.as_micros().abs_diff(small) <= 1);
    }
}

/// The engine's clock never runs backwards regardless of the schedule.
#[test]
fn engine_clock_monotone() {
    struct Chain {
        delays: Vec<u64>,
        idx: usize,
        times: Vec<SimTime>,
    }
    impl World for Chain {
        type Event = ();
        fn handle(&mut self, ctx: &mut Ctx<()>, _: ()) {
            self.times.push(ctx.now());
            if self.idx < self.delays.len() {
                let d = self.delays[self.idx];
                self.idx += 1;
                ctx.schedule_in(SimTime::from_micros(d), ());
            }
        }
    }
    let mut rng = SimRng::seed_from_u64(0xC10C);
    for _ in 0..64 {
        let n = rng.uniform_u64(1, 100) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 9_999)).collect();
        let mut engine = Engine::new(Chain {
            delays,
            idx: 0,
            times: vec![],
        });
        engine.schedule_at(SimTime::ZERO, ());
        engine.run();
        let times = &engine.world().times;
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(times.len() as u64, engine.processed());
    }
}
