//! The simulation engine: clock + event queue + world dispatch loop.

use crate::event::{EventId, EventQueue};
use crate::time::SimTime;
use crate::trace::{NullRecorder, Recorder, TraceRecord};

/// Model state driven by the engine.
///
/// The engine pops the next event, advances the clock, and calls
/// [`World::handle`]; the handler may schedule further events through the
/// [`Ctx`].
pub trait World {
    type Event;
    fn handle(&mut self, ctx: &mut Ctx<Self::Event>, event: Self::Event);
}

/// Scheduling context passed to event handlers.
///
/// Borrows the engine's queue and clock so handlers can schedule or cancel
/// events without owning the engine.
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
    recorder: &'a mut dyn Recorder,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// model bug; it panics rather than silently reordering causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "attempted to schedule an event in the past: at={at:?} now={:?}",
            self.now
        );
        self.queue.push(at, event)
    }

    /// Schedule `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation time overflow");
        self.queue.push(at, event)
    }

    /// Cancel a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Ask the engine to stop after the current handler returns (e.g. the
    /// terminating condition — a dead battery — has been reached).
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Whether the engine's recorder wants records at all. Handlers should
    /// guard record construction behind this so tracing is free when off.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.recorder.enabled()
    }

    /// Submit a trace record to the engine's recorder.
    pub fn emit(&mut self, record: TraceRecord) {
        self.recorder.record(record);
    }

    /// Direct access to the recorder (for bulk emitters).
    pub fn recorder(&mut self) -> &mut dyn Recorder {
        self.recorder
    }
}

/// Why a [`Engine::run_until`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained.
    QueueEmpty,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// A handler called [`Ctx::request_stop`].
    Stopped,
}

/// The discrete-event engine.
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    processed: u64,
    recorder: Box<dyn Recorder>,
}

impl<W: World> Engine<W> {
    pub fn new(world: W) -> Self {
        Self::with_recorder(world, Box::new(NullRecorder))
    }

    /// Build an engine whose handlers emit trace records into `recorder`.
    pub fn with_recorder(world: W, recorder: Box<dyn Recorder>) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            recorder,
        }
    }

    /// Swap the recorder (e.g. to start tracing mid-run), returning the
    /// previous one.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) -> Box<dyn Recorder> {
        std::mem::replace(&mut self.recorder, recorder)
    }

    /// Access the recorder, e.g. to drain a memory recorder's records.
    pub fn recorder_mut(&mut self) -> &mut dyn Recorder {
        &mut *self.recorder
    }

    /// Current simulation time (time of the most recently handled event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Immutable access to the model.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the model (for setup and inspection between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the engine, returning the model.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule an event from outside a handler (setup phase).
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) -> EventId {
        assert!(at >= self.now, "schedule_at in the past");
        self.queue.push(at, event)
    }

    /// Schedule an event after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: W::Event) -> EventId {
        let at = self.now.checked_add(delay).expect("time overflow");
        self.queue.push(at, event)
    }

    /// Handle exactly one event. Returns `false` if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        self.processed += 1;
        let mut stop = false;
        let mut ctx = Ctx {
            now: self.now,
            queue: &mut self.queue,
            stop_requested: &mut stop,
            recorder: &mut *self.recorder,
        };
        self.world.handle(&mut ctx, entry.event);
        true
    }

    /// Run until the queue drains.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Run until the queue drains, a handler requests a stop, or the next
    /// event would be strictly after `horizon` (the clock then rests at the
    /// last handled event; pending events stay queued).
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            let Some(next) = self.queue.peek_time() else {
                return RunOutcome::QueueEmpty;
            };
            if next > horizon {
                return RunOutcome::HorizonReached;
            }
            let Some(entry) = self.queue.pop() else {
                // Unreachable — peek_time just saw an event — but a drained
                // queue is exactly the QueueEmpty outcome, not a panic.
                return RunOutcome::QueueEmpty;
            };
            self.now = entry.time;
            self.processed += 1;
            let mut stop = false;
            let mut ctx = Ctx {
                now: self.now,
                queue: &mut self.queue,
                stop_requested: &mut stop,
                recorder: &mut *self.recorder,
            };
            self.world.handle(&mut ctx, entry.event);
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        seen: Vec<(SimTime, u32)>,
        respawn: bool,
    }

    impl World for Probe {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            self.seen.push((ctx.now(), ev));
            if self.respawn && ev < 5 {
                ctx.schedule_in(SimTime::from_micros(10), ev + 1);
            }
        }
    }

    #[test]
    fn events_fire_in_order_and_advance_clock() {
        let mut e = Engine::new(Probe {
            seen: vec![],
            respawn: false,
        });
        e.schedule_at(SimTime::from_micros(5), 1);
        e.schedule_at(SimTime::from_micros(3), 2);
        assert_eq!(e.run(), RunOutcome::QueueEmpty);
        assert_eq!(
            e.world().seen,
            vec![(SimTime::from_micros(3), 2), (SimTime::from_micros(5), 1)]
        );
        assert_eq!(e.now(), SimTime::from_micros(5));
        assert_eq!(e.processed(), 2);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut e = Engine::new(Probe {
            seen: vec![],
            respawn: true,
        });
        e.schedule_at(SimTime::ZERO, 0);
        e.run();
        assert_eq!(e.world().seen.len(), 6);
        assert_eq!(e.now(), SimTime::from_micros(50));
    }

    #[test]
    fn horizon_pauses_without_dropping_events() {
        let mut e = Engine::new(Probe {
            seen: vec![],
            respawn: false,
        });
        e.schedule_at(SimTime::from_micros(10), 1);
        e.schedule_at(SimTime::from_micros(30), 2);
        assert_eq!(
            e.run_until(SimTime::from_micros(20)),
            RunOutcome::HorizonReached
        );
        assert_eq!(e.world().seen.len(), 1);
        // Resume: the pending event is still there.
        assert_eq!(e.run(), RunOutcome::QueueEmpty);
        assert_eq!(e.world().seen.len(), 2);
    }

    struct Stopper {
        count: u32,
    }
    impl World for Stopper {
        type Event = ();
        fn handle(&mut self, ctx: &mut Ctx<()>, _: ()) {
            self.count += 1;
            if self.count == 3 {
                ctx.request_stop();
            } else {
                ctx.schedule_in(SimTime::from_micros(1), ());
            }
        }
    }

    #[test]
    fn request_stop_halts_the_loop() {
        let mut e = Engine::new(Stopper { count: 0 });
        e.schedule_at(SimTime::ZERO, ());
        assert_eq!(e.run(), RunOutcome::Stopped);
        assert_eq!(e.world().count, 3);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut Ctx<()>, _: ()) {
                ctx.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut e = Engine::new(Bad);
        e.schedule_at(SimTime::from_micros(10), ());
        e.run();
    }

    #[test]
    fn handlers_emit_through_the_engine_recorder() {
        use crate::trace::MemoryRecorder;
        struct Emitter;
        impl World for Emitter {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
                if ctx.tracing() {
                    let rec = TraceRecord::new(ctx.now(), "emitter", "tick").with("ev", ev as u64);
                    ctx.emit(rec);
                }
            }
        }
        // Default engine: NullRecorder → tracing() is false, nothing kept.
        let mut off = Engine::new(Emitter);
        off.schedule_at(SimTime::ZERO, 1);
        off.run();
        assert!(off.recorder_mut().take_records().is_empty());

        // Memory recorder: records come back out in order.
        let mut on = Engine::with_recorder(Emitter, Box::new(MemoryRecorder::new()));
        on.schedule_at(SimTime::from_micros(3), 7);
        on.schedule_at(SimTime::from_micros(9), 8);
        on.run();
        let records = on.recorder_mut().take_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].u64_field("ev"), Some(7));
        assert_eq!(records[1].u64_field("ev"), Some(8));
        assert_eq!(records[1].time, SimTime::from_micros(9));
    }

    #[test]
    fn same_time_events_dispatch_fifo_not_by_discriminant() {
        // Regression pin for the parallel-sweep audit: three events at the
        // same instant must fire in *scheduling* order, not in enum
        // discriminant (or any other value-dependent) order. Seed goldens
        // and N-thread sweep comparisons rely on this.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        enum Ev {
            High = 2,
            Low = 0,
            Mid = 1,
        }
        struct Order {
            seen: Vec<Ev>,
        }
        impl World for Order {
            type Event = Ev;
            fn handle(&mut self, _ctx: &mut Ctx<Ev>, ev: Ev) {
                self.seen.push(ev);
            }
        }
        let mut e = Engine::new(Order { seen: vec![] });
        let t = SimTime::from_micros(77);
        // Scheduled High, Low, Mid — discriminant order would yield
        // Low, Mid, High; reverse-discriminant would yield High, Mid, Low
        // only by accident of this insertion, hence the third probe below.
        e.schedule_at(t, Ev::High);
        e.schedule_at(t, Ev::Low);
        e.schedule_at(t, Ev::Mid);
        e.schedule_at(t, Ev::Low);
        assert_eq!(e.run(), RunOutcome::QueueEmpty);
        assert_eq!(e.world().seen, vec![Ev::High, Ev::Low, Ev::Mid, Ev::Low]);
    }

    #[test]
    fn step_handles_one_event() {
        let mut e = Engine::new(Probe {
            seen: vec![],
            respawn: false,
        });
        e.schedule_at(SimTime::from_micros(1), 7);
        assert!(e.step());
        assert!(!e.step());
        assert_eq!(e.world().seen, vec![(SimTime::from_micros(1), 7)]);
    }
}
