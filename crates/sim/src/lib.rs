//! # dles-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the `dles` workspace: a minimal, fully deterministic
//! discrete-event simulator used to reproduce the battery-lifetime
//! experiments of Liu & Chou, *"Distributed Embedded Systems for Low Power:
//! A Case Study"* (IPPS 2004).
//!
//! Design goals:
//!
//! * **Determinism.** Same seed + same configuration ⇒ bit-identical event
//!   order and results. Ties in event time are broken by insertion order.
//! * **Microsecond resolution.** [`SimTime`] wraps a `u64` count of
//!   microseconds; experiments run for tens of simulated hours without
//!   precision loss (u64 µs covers ~584 000 years).
//! * **No hidden global state.** The engine owns the clock and queue; the
//!   world (model state) is a user type implementing [`World`].
//!
//! ```
//! use dles_sim::{Engine, SimTime, World, Ctx};
//!
//! struct Counter { fired: u32 }
//! #[derive(Debug)]
//! enum Ev { Tick }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Ctx<Ev>, _ev: Ev) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             ctx.schedule_in(SimTime::from_millis(100), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.schedule_at(SimTime::ZERO, Ev::Tick);
//! engine.run();
//! assert_eq!(engine.world().fired, 10);
//! assert_eq!(engine.now(), SimTime::from_millis(900));
//! ```
#![forbid(unsafe_code)]

pub mod engine;
pub mod event;
pub mod par;
#[cfg(test)]
mod proptests;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Ctx, Engine, RunOutcome, World};
pub use event::{EventEntry, EventId, EventQueue};
pub use par::{par_map, par_map_slice, resolve_workers};
pub use rng::SimRng;
pub use stats::{Counter, CounterSet, DistSummary, Histogram, TimeWeighted};
pub use time::SimTime;
pub use trace::{FieldValue, JsonlRecorder, MemoryRecorder, NullRecorder, Recorder, TraceRecord};
