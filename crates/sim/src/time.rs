//! Simulation time: a `u64` microsecond counter with ergonomic conversions.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in whole microseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic operators treat it as a plain count. Subtraction saturates at
/// zero rather than panicking so that defensive "time remaining" computations
/// are safe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub const MICROS_PER_MILLI: u64 = 1_000;
    pub const MICROS_PER_SEC: u64 = 1_000_000;
    pub const MICROS_PER_HOUR: u64 = 3_600_000_000;

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * Self::MICROS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * Self::MICROS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * Self::MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from fractional hours (the paper reports battery lifetimes
    /// in hours).
    #[inline]
    pub fn from_hours_f64(h: f64) -> Self {
        Self::from_secs_f64(h * 3600.0)
    }

    /// Whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / Self::MICROS_PER_SEC as f64
    }

    /// Fractional hours.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / Self::MICROS_PER_HOUR as f64
    }

    /// Saturating subtraction (`self - other`, floored at zero).
    #[inline]
    pub const fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, other: SimTime) -> Option<SimTime> {
        match self.0.checked_add(other.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// Scale a duration by a dimensionless factor (e.g. a slowdown ratio),
    /// rounding to the nearest microsecond. Negative factors clamp to zero.
    #[inline]
    pub fn scale_f64(self, factor: f64) -> SimTime {
        if !factor.is_finite() || factor <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating: simulation code frequently computes "remaining" spans.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    /// Human-friendly: chooses µs / ms / s / h scale.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us < Self::MICROS_PER_MILLI {
            write!(f, "{us}µs")
        } else if us < Self::MICROS_PER_SEC {
            write!(f, "{:.3}ms", us as f64 / 1e3)
        } else if us < Self::MICROS_PER_HOUR {
            write!(f, "{:.3}s", us as f64 / 1e6)
        } else {
            write!(f, "{:.3}h", self.as_hours_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_millis(2300).as_secs_f64(), 2.3);
        assert_eq!(SimTime::from_secs(3600).as_hours_f64(), 1.0);
        assert_eq!(SimTime::from_secs_f64(2.3).as_micros(), 2_300_000);
        assert_eq!(SimTime::from_hours_f64(6.13).as_hours_f64(), 6.13);
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_secs(1));
    }

    #[test]
    fn scale_rounds_and_clamps() {
        let d = SimTime::from_secs(1);
        assert_eq!(d.scale_f64(0.5), SimTime::from_millis(500));
        assert_eq!(d.scale_f64(-3.0), SimTime::ZERO);
        assert_eq!(d.scale_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", SimTime::from_micros(10)), "10µs");
        assert_eq!(format!("{}", SimTime::from_millis(10)), "10.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(10)), "10.000s");
        assert_eq!(format!("{}", SimTime::from_secs(7200)), "2.000h");
    }

    #[test]
    fn mul_div_scalars() {
        let d = SimTime::from_secs(3);
        assert_eq!(d * 2, SimTime::from_secs(6));
        assert_eq!(d / 3, SimTime::from_secs(1));
    }
}
