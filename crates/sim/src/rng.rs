//! Deterministic randomness for simulations.
//!
//! Every stochastic quantity in the workspace (serial-transaction startup
//! jitter, synthetic-scene noise) draws from a [`SimRng`] seeded explicitly,
//! so experiment runs are reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable RNG with convenience samplers used across the workspace.
///
/// Wraps [`StdRng`] (ChaCha-based, portable across platforms and releases
/// within the pinned `rand` version).
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this RNG was created with (for report provenance).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child RNG; `salt` distinguishes siblings.
    ///
    /// Used to give each simulated component its own stream so adding a
    /// component does not perturb the draws of the others.
    pub fn fork(&self, salt: u64) -> SimRng {
        // SplitMix64 finalizer over (seed, salt) — cheap, well distributed.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(salt.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Uniform `f64` in `[lo, hi)`. `lo == hi` returns `lo`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_f64 with lo > hi");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `u64` in `[lo, hi]` inclusive.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 with lo > hi");
        self.inner.gen_range(lo..=hi)
    }

    /// Standard normal via Box–Muller (no extra dependency on
    /// `rand_distr`).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = self.inner.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let v = r * (std::f64::consts::TAU * u2).cos();
            if v.is_finite() {
                return v;
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_salted() {
        let parent = SimRng::seed_from_u64(99);
        let mut c1 = parent.fork(0);
        let mut c1b = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.uniform_f64(0.05, 0.1);
            assert!((0.05..0.1).contains(&v));
            let u = r.uniform_u64(10, 12);
            assert!((10..=12).contains(&u));
        }
        assert_eq!(r.uniform_f64(4.0, 4.0), 4.0);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }
}
