//! Deterministic randomness for simulations.
//!
//! Every stochastic quantity in the workspace (serial-transaction startup
//! jitter, synthetic-scene noise) draws from a [`SimRng`] seeded explicitly,
//! so experiment runs are reproducible bit-for-bit.

/// A seedable RNG with convenience samplers used across the workspace.
///
/// Implements xoshiro256++ (Blackman & Vigna) with SplitMix64 state
/// expansion — dependency-free, portable, and stable across platforms, so
/// recorded traces stay byte-identical wherever they are regenerated.
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 step: advances `x` and returns the next output.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let state = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        SimRng { state, seed }
    }

    /// The seed this RNG was created with (for report provenance).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child RNG; `salt` distinguishes siblings.
    ///
    /// Used to give each simulated component its own stream so adding a
    /// component does not perturb the draws of the others.
    pub fn fork(&self, salt: u64) -> SimRng {
        // SplitMix64 finalizer over (seed, salt) — cheap, well distributed.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(salt.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Next raw 32-bit output (upper bits of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. `lo == hi` returns `lo`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_f64 with lo > hi");
        if lo == hi {
            return lo;
        }
        // lo + u·(hi−lo) can round up to hi for u just below 1; clamp to
        // keep the documented half-open interval.
        let v = lo + self.unit_f64() * (hi - lo);
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }

    /// Uniform `u64` in `[lo, hi]` inclusive.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 with lo > hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Rejection sampling over the largest multiple of span+1 ≤ 2^64
        // for an unbiased draw.
        let n = span + 1;
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % n;
            }
        }
    }

    /// Standard normal via Box–Muller (no distribution crate needed).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u1 = self.unit_f64().max(f64::MIN_POSITIVE);
            let u2 = self.unit_f64();
            let r = (-2.0 * u1.ln()).sqrt();
            let v = r * (std::f64::consts::TAU * u2).cos();
            if v.is_finite() {
                return v;
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn matches_xoshiro256plusplus_reference() {
        // State {1, 2, 3, 4} — first outputs of the reference C
        // implementation (prng.di.unimi.it), guarding the generator
        // against accidental drift that would invalidate golden traces.
        let mut r = SimRng {
            state: [1, 2, 3, 4],
            seed: 0,
        };
        let expect = [
            41943041u64,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expect {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_salted() {
        let parent = SimRng::seed_from_u64(99);
        let mut c1 = parent.fork(0);
        let mut c1b = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.uniform_f64(0.05, 0.1);
            assert!((0.05..0.1).contains(&v));
            let u = r.uniform_u64(10, 12);
            assert!((10..=12).contains(&u));
        }
        assert_eq!(r.uniform_f64(4.0, 4.0), 4.0);
    }

    #[test]
    fn uniform_u64_covers_range() {
        let mut r = SimRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(r.uniform_u64(10, 12) - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = SimRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03, "hits {hits}");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
