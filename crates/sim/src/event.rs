//! The pending-event set: a priority queue ordered by (time, insertion seq).
//!
//! Insertion order breaks ties so that two events scheduled for the same
//! instant always fire in the order they were scheduled — the property that
//! makes the whole simulator deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet}; // lint: allow(D003) — tombstone set below is membership-only

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub(crate) u64);

/// A scheduled occurrence: fire `event` at `time`.
#[derive(Debug)]
pub struct EventEntry<E> {
    pub time: SimTime,
    pub id: EventId,
    pub event: E,
}

/// Internal heap node. Reverse ordering turns `BinaryHeap` (a max-heap) into
/// a min-heap on (time, seq).
struct HeapNode<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    event: E,
}

impl<E> PartialEq for HeapNode<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapNode<E> {}
impl<E> PartialOrd for HeapNode<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapNode<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest (time, seq) is the heap maximum.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic pending-event queue with O(log n) push/pop and O(1)
/// cancellation (lazy tombstoning).
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapNode<E>>,
    cancelled: HashSet<EventId>, // lint: allow(D003) — contains/remove only; iteration order never observed
    next_seq: u64,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(), // lint: allow(D003) — keeps O(1) cancellation on the hot path
            next_seq: 0,
            live: 0,
        }
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `event` at absolute time `time`; returns a cancellation
    /// handle.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(HeapNode {
            time,
            seq,
            id,
            event,
        });
        self.live += 1;
        id
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed not to fire).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // An id is pending iff it was issued, has not been popped, and has
        // not already been cancelled. Popped ids are removed from `cancelled`
        // lazily at pop time, so membership there means "cancelled, pending".
        if id.0 >= self.next_seq || self.cancelled.contains(&id) {
            return false;
        }
        // We cannot cheaply test "already popped"; track live ids instead by
        // attempting insertion and letting pop() skip tombstones. To keep
        // cancel() truthful we maintain the invariant that popped ids are
        // never re-cancelled by callers (ids are unique and callers hold at
        // most one handle). Defensively, inserting a popped id only wastes a
        // set slot until drained.
        self.cancelled.insert(id);
        self.live = self.live.saturating_sub(1);
        true
    }

    /// Time of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_tombstones();
        self.heap.peek().map(|n| n.time)
    }

    /// Pop the next live event in deterministic order.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        self.skip_tombstones();
        let node = self.heap.pop()?;
        self.live = self.live.saturating_sub(1);
        Some(EventEntry {
            time: node.time,
            id: node.id,
            event: node.event,
        })
    }

    fn skip_tombstones(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), "c");
        q.push(SimTime::from_micros(10), "a");
        q.push(SimTime::from_micros(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn cancellation_suppresses_event() {
        let mut q = EventQueue::new();
        let _a = q.push(SimTime::from_micros(1), "a");
        let b = q.push(SimTime::from_micros(2), "b");
        let _c = q.push(SimTime::from_micros(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double-cancel must report false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_micros(1), "a");
        q.push(SimTime::from_micros(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
