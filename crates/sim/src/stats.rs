//! Online statistics for simulation outputs: counters, time-weighted means
//! (for currents/power levels), and fixed-bin histograms (for latencies).

use crate::time::SimTime;

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    count: u64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn incr(&mut self) {
        self.count += 1;
    }
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }
    pub fn get(&self) -> u64 {
        self.count
    }
}

/// A named family of monotonic counters, kept in first-increment order so
/// reports render deterministically. Lookups are linear — the simulator
/// maintains a few dozen counters at most, far below the point where a map
/// would win.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CounterSet {
    counters: Vec<(String, u64)>,
}

impl CounterSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the named counter, creating it at zero first if needed.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some((_, v)) = self.counters.iter_mut().find(|(k, _)| k == name) {
            *v += n;
        } else {
            self.counters.push((name.to_owned(), n));
        }
    }

    /// Increment the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value (0 for a counter never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Counters in first-increment order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Fold another set into this one (summing shared names).
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, v) in other.iter() {
            self.add(name, v);
        }
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. the current
/// drawn by a node: each value holds from the time it was set until the next
/// `set`. This is exactly how Itsy's on-board power monitor integrates.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64, // ∫ value dt, in value·seconds
    total_time: f64,   // seconds of observation
    min: f64,
    max: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            weighted_sum: 0.0,
            total_time: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            started: false,
        }
    }

    /// Record that the signal takes `value` from time `now` onward.
    pub fn set(&mut self, now: SimTime, value: f64) {
        if self.started {
            self.accumulate_until(now);
        }
        self.started = true;
        self.last_time = now;
        self.last_value = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Close the observation window at `now` without changing the value.
    pub fn finish(&mut self, now: SimTime) {
        if self.started {
            self.accumulate_until(now);
            self.last_time = now;
        }
    }

    fn accumulate_until(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.last_time).as_secs_f64();
        self.weighted_sum += self.last_value * dt;
        self.total_time += dt;
    }

    /// Time-weighted mean over the observed window (0 if nothing observed).
    pub fn mean(&self) -> f64 {
        if self.total_time > 0.0 {
            self.weighted_sum / self.total_time
        } else {
            0.0
        }
    }

    /// ∫ value dt in value·seconds (e.g. mA·s if values are mA).
    pub fn integral(&self) -> f64 {
        self.weighted_sum
    }

    /// Total observed span in seconds.
    pub fn observed_secs(&self) -> f64 {
        self.total_time
    }

    pub fn min(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            0.0
        }
    }

    pub fn max(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            0.0
        }
    }
}

/// A fixed-width-bin histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    sum_sq: f64,
}

impl Histogram {
    /// `nbins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((v - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum / self.count as f64
        } else {
            0.0
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0).sqrt()
    }

    /// Approximate quantile from bin midpoints (`q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target && self.underflow > 0 {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            seen += b;
            if seen >= target {
                return self.lo + (i as f64 + 0.5) * width;
            }
        }
        self.hi
    }

    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

/// Summary statistics of a batch of samples (one Monte Carlo metric):
/// exact mean/std/extrema plus histogram-approximated percentiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSummary {
    pub mean: f64,
    pub std_dev: f64,
    pub p05: f64,
    pub p50: f64,
    pub p95: f64,
    pub min: f64,
    pub max: f64,
}

impl DistSummary {
    /// Summarize a non-empty batch. Percentiles come from a 256-bin
    /// [`Histogram`] spanning the observed range, so the summary is a pure
    /// function of the values — independent of how they were produced.
    /// Non-finite values are tolerated deterministically: `f64::min`/`max`
    /// ignore NaN, and an all-NaN batch falls back to a unit range instead
    /// of panicking on inverted histogram bounds.
    pub fn from_values(values: &[f64]) -> DistSummary {
        assert!(!values.is_empty(), "cannot summarize an empty batch");
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Histogram bounds must be finite and ordered; a batch with no
        // finite values (all NaN/±inf) falls back to a unit range so the
        // summary stays deterministic instead of panicking.
        let (lo, top) = if min.is_finite() && max.is_finite() {
            (min, max)
        } else {
            (0.0, 1.0)
        };
        // Histogram bins are half-open; pad the top so `max` lands inside.
        let hi = if top > lo {
            top + (top - lo) * 1e-9
        } else {
            lo + 1.0
        };
        let mut h = Histogram::new(lo, hi, 256);
        for &v in values {
            h.record(v);
        }
        DistSummary {
            mean: h.mean(),
            std_dev: h.std_dev(),
            p05: h.quantile(0.05),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn counter_set_preserves_insertion_order() {
        let mut cs = CounterSet::new();
        cs.incr("frames");
        cs.add("bytes", 100);
        cs.incr("frames");
        assert_eq!(cs.get("frames"), 2);
        assert_eq!(cs.get("bytes"), 100);
        assert_eq!(cs.get("never"), 0);
        let names: Vec<&str> = cs.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["frames", "bytes"]);
    }

    #[test]
    fn counter_set_merge_sums_shared_names() {
        let mut a = CounterSet::new();
        a.add("x", 2);
        a.add("y", 1);
        let mut b = CounterSet::new();
        b.add("y", 3);
        b.add("z", 5);
        a.merge(&b);
        assert_eq!(a.get("x"), 2);
        assert_eq!(a.get("y"), 4);
        assert_eq!(a.get("z"), 5);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn time_weighted_mean_of_square_wave() {
        let mut tw = TimeWeighted::new();
        // 1s at 100, then 1s at 0 → mean 50.
        tw.set(SimTime::ZERO, 100.0);
        tw.set(SimTime::from_secs(1), 0.0);
        tw.finish(SimTime::from_secs(2));
        assert!((tw.mean() - 50.0).abs() < 1e-9);
        assert!((tw.integral() - 100.0).abs() < 1e-9);
        assert_eq!(tw.min(), 0.0);
        assert_eq!(tw.max(), 100.0);
        assert!((tw.observed_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_empty_is_zero() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean(), 0.0);
        assert_eq!(tw.min(), 0.0);
        assert_eq!(tw.max(), 0.0);
    }

    #[test]
    fn time_weighted_ignores_prestart_finish() {
        let mut tw = TimeWeighted::new();
        tw.finish(SimTime::from_secs(5));
        assert_eq!(tw.observed_secs(), 0.0);
    }

    #[test]
    fn histogram_basic_moments() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert!((h.std_dev() - (1.25f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn histogram_overflow_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.5);
        h.record(2.0);
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins().iter().sum::<u64>(), 1);
    }

    #[test]
    fn histogram_quantile_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q75 = h.quantile(0.75);
        assert!(q25 <= q50 && q50 <= q75);
        assert!((q50 - 50.0).abs() < 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid histogram bounds")]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn dist_summary_moments_and_percentiles() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = DistSummary::from_values(&values);
        assert!((s.mean - 49.5).abs() < 1e-9, "mean {}", s.mean);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 99.0);
        assert!(s.p05 <= s.p50 && s.p50 <= s.p95);
        assert!((s.p50 - 49.5).abs() < 2.0, "p50 {}", s.p50);
    }

    #[test]
    fn dist_summary_tolerates_nan_values() {
        // Pre-D004-audit an all-NaN batch panicked on inverted histogram
        // bounds; now every field is a deterministic value.
        let s = DistSummary::from_values(&[f64::NAN, f64::NAN]);
        assert!(s.mean.is_nan());
        assert!(s.p50.is_finite());
        // A NaN mixed into a finite batch keeps the finite extrema.
        let s = DistSummary::from_values(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.p50.is_finite());
    }

    #[test]
    fn dist_summary_of_constant_batch() {
        let s = DistSummary::from_values(&[4.2; 8]);
        assert!((s.mean - 4.2).abs() < 1e-12);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, s.max);
        assert!((s.p50 - 4.2).abs() < 0.1);
    }
}
