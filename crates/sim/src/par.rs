//! Deterministic parallel map: the scoped-thread work-pull pattern.
//!
//! Workers pull job indices from a shared atomic counter and write each
//! result into its job's slot, so the output vector is **in job order and
//! byte-identical for any worker count** — the property the Monte Carlo
//! harness pioneered, generalized here for any fan-out (config sweeps,
//! calibration anchors, experiment batches).
//!
//! Determinism contract: `f` must be a pure function of its index (no
//! shared mutable state, no wall clock, no unseeded randomness). The
//! scheduler then only decides *when* each `f(i)` runs, never *what* it
//! returns, and `par_map(n, t, f) == (0..n).map(f)` for every `t`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a `--threads`-style worker count: `0` means one worker per
/// available core; the result is clamped to `[1, jobs]` so no worker ever
/// starts without work.
pub fn resolve_workers(threads: usize, jobs: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    t.max(1).min(jobs.max(1))
}

/// Map `f` over `0..n` with `threads` scoped workers (`0` = one per core).
///
/// Results come back in index order regardless of scheduling; a single
/// worker degenerates to a plain serial loop with no thread spawned.
// lint: allow(D009) — slot invariant: the work-pull loop writes every index in 0..n exactly once before scope join, so the final expect cannot fire
pub fn par_map<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = resolve_workers(threads, n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                // Poison recovery: a panic in another worker's `f` must
                // not cascade into secondary lock panics here — the slot
                // data is index-owned, never half-written.
                slots
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("every job filled its slot"))
        .collect()
}

/// [`par_map`] over the items of a slice: `f` receives `(index, &item)`.
pub fn par_map_slice<'a, T, R, F>(items: &'a [T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'a T) -> R + Sync,
{
    par_map(items.len(), threads, |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = par_map(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_is_empty() {
        let out: Vec<u64> = par_map(0, 4, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_slice_hands_out_items() {
        let items = vec!["a", "bb", "ccc"];
        let out = par_map_slice(&items, 2, |i, s| (i, s.len()));
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn worker_resolution_clamps_to_jobs() {
        assert_eq!(resolve_workers(8, 3), 3);
        assert_eq!(resolve_workers(2, 100), 2);
        assert_eq!(resolve_workers(5, 0), 1);
        assert!(resolve_workers(0, 64) >= 1);
    }

    #[test]
    fn more_workers_than_cores_still_complete() {
        let out = par_map(5, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }
}
