//! Structured simulation tracing.
//!
//! A [`Tracer`] collects timestamped, component-tagged records that the
//! report generators turn into the timing-vs-power diagrams of the paper
//! (Figs. 2, 3 and 9). Tracing can be disabled wholesale for long
//! battery-discharge runs, in which case `record` is a no-op.

use crate::time::SimTime;
use serde::Serialize;
use std::fmt;

/// Severity / verbosity of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum TraceLevel {
    /// Per-phase transitions (RECV/PROC/SEND boundaries) — verbose.
    Phase,
    /// Per-frame milestones (frame produced, rotation performed).
    Frame,
    /// System-level events (node death, recovery, experiment end).
    System,
}

/// One trace record.
#[derive(Debug, Clone, Serialize)]
pub struct TraceEvent {
    pub time: SimTime,
    pub level: TraceLevel,
    /// Component tag, e.g. `"node1"`, `"host"`, `"link0"`.
    pub component: String,
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<8} {}",
            format!("{}", self.time),
            self.component,
            self.message
        )
    }
}

/// Trace collector with a minimum level filter.
#[derive(Debug)]
pub struct Tracer {
    min_level: Option<TraceLevel>,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// Collect records at `min_level` and above.
    pub fn enabled(min_level: TraceLevel) -> Self {
        Tracer {
            min_level: Some(min_level),
            events: Vec::new(),
        }
    }

    /// Collect nothing (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        Tracer {
            min_level: None,
            events: Vec::new(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.min_level.is_some()
    }

    /// Record an event if the tracer is enabled at this level.
    pub fn record(
        &mut self,
        time: SimTime,
        level: TraceLevel,
        component: &str,
        message: impl FnOnce() -> String,
    ) {
        if let Some(min) = self.min_level {
            if level >= min {
                self.events.push(TraceEvent {
                    time,
                    level,
                    component: component.to_owned(),
                    message: message(),
                });
            }
        }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Records for a single component, in time order.
    pub fn for_component<'a>(&'a self, component: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.component == component)
    }

    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_collects_nothing() {
        let mut t = Tracer::disabled();
        t.record(SimTime::ZERO, TraceLevel::System, "node1", || "dead".into());
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn level_filter_applies() {
        let mut t = Tracer::enabled(TraceLevel::Frame);
        t.record(SimTime::ZERO, TraceLevel::Phase, "n", || "p".into());
        t.record(SimTime::ZERO, TraceLevel::Frame, "n", || "f".into());
        t.record(SimTime::ZERO, TraceLevel::System, "n", || "s".into());
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn lazy_message_not_built_when_disabled() {
        let mut t = Tracer::disabled();
        let mut built = false;
        t.record(SimTime::ZERO, TraceLevel::System, "n", || {
            built = true;
            String::new()
        });
        assert!(!built);
    }

    #[test]
    fn component_filter() {
        let mut t = Tracer::enabled(TraceLevel::Phase);
        t.record(SimTime::ZERO, TraceLevel::Phase, "a", || "1".into());
        t.record(SimTime::ZERO, TraceLevel::Phase, "b", || "2".into());
        t.record(SimTime::ZERO, TraceLevel::Phase, "a", || "3".into());
        assert_eq!(t.for_component("a").count(), 2);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            time: SimTime::from_secs(1),
            level: TraceLevel::System,
            component: "node1".into(),
            message: "battery exhausted".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("node1") && s.contains("battery exhausted"));
    }
}
