//! Structured observability: typed event records and pluggable recorders.
//!
//! Every instrumented component (power monitor, serial transactions, node
//! state machines, the pipeline itself) emits [`TraceRecord`]s through a
//! [`Recorder`]. Three implementations cover the workspace's needs:
//!
//! * [`NullRecorder`] — the default; `enabled()` is `false`, so emit sites
//!   skip even building the record (zero overhead on long discharge runs);
//! * [`MemoryRecorder`] — collects records in memory; the timeline
//!   generator rebuilds the paper's Figs. 2/3/9 from this stream;
//! * [`JsonlRecorder`] — streams one JSON object per line to a writer;
//!   with a fixed seed the byte stream is identical run-to-run, making
//!   traces golden artifacts for regression testing.
//!
//! The JSONL schema per line, keys always in this order:
//!
//! ```json
//! {"t_us": 2300000, "component": "node1", "kind": "state_transition",
//!  "mode": "computation", "freq_mhz": 103.2, "current_ma": 67.9}
//! ```
//!
//! `t_us` is the simulation clock in microseconds; `component` tags the
//! emitter (`node0`, `link0→1`, `pipeline`); `kind` names the event type;
//! every following key is event-specific, written in emit order.

use crate::time::SimTime;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A single typed field value in a trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<SimTime> for FieldValue {
    fn from(v: SimTime) -> Self {
        FieldValue::U64(v.as_micros())
    }
}

impl fmt::Display for FieldValue {
    /// JSON-compatible rendering (strings escaped and quoted).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) if v.is_finite() => write!(f, "{v}"),
            FieldValue::F64(_) => write!(f, "null"),
            FieldValue::Str(s) => write_json_str(f, s),
            FieldValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Write `s` as a JSON string literal into any [`fmt::Write`] sink —
/// `Formatter`s (the `Display` impls) and plain `String` buffers (the
/// buffered [`JsonlRecorder`] path) alike, with no intermediate
/// allocation.
fn write_json_str<W: fmt::Write + ?Sized>(f: &mut W, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// One structured trace record: when, who, what, plus typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub time: SimTime,
    /// Component tag, e.g. `"node1"`, `"host"`, `"link0→1"`.
    pub component: String,
    /// Event type, e.g. `"state_transition"`, `"frame_complete"`.
    pub kind: &'static str,
    /// Event-specific fields, serialized in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceRecord {
    pub fn new(time: SimTime, component: impl Into<String>, kind: &'static str) -> Self {
        TraceRecord {
            time,
            component: component.into(),
            kind,
            fields: Vec::new(),
        }
    }

    /// Append a field (builder style; order is preserved in the output).
    pub fn with(mut self, name: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((name, value.into()));
        self
    }

    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// Field as u64 if present and numeric.
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        match self.field(name)? {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Field as str if present and textual.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        match self.field(name)? {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Field as bool if present and boolean.
    pub fn bool_field(&self, name: &str) -> Option<bool> {
        match self.field(name)? {
            FieldValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Write the canonical single-line JSON rendering (what
    /// [`JsonlRecorder`] writes) into a caller-supplied buffer. Keys in
    /// fixed order: `t_us`, `component`, `kind`, then the fields in emit
    /// order — so byte-identical inputs yield byte-identical lines. No
    /// intermediate `String`s: `component` and `kind` are escaped straight
    /// into `out`, which a streaming recorder reuses across records.
    pub fn write_jsonl<W: fmt::Write + ?Sized>(&self, out: &mut W) -> fmt::Result {
        write!(out, "{{\"t_us\": {}", self.time.as_micros())?;
        out.write_str(", \"component\": ")?;
        write_json_str(out, &self.component)?;
        out.write_str(", \"kind\": ")?;
        write_json_str(out, self.kind)?;
        for (name, value) in &self.fields {
            write!(out, ", \"{name}\": {value}")?;
        }
        out.write_str("}")
    }

    /// [`Self::write_jsonl`] into a fresh `String`, for one-off callers.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + 24 * self.fields.len());
        let _ = self.write_jsonl(&mut out);
        out
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<8} {}",
            format!("{}", self.time),
            self.component,
            self.kind
        )?;
        for (name, value) in &self.fields {
            write!(f, " {name}={value}")?;
        }
        Ok(())
    }
}

/// Sink for trace records.
///
/// Emit sites guard with [`Recorder::enabled`] so a disabled recorder costs
/// one branch, not a record allocation.
pub trait Recorder {
    /// Whether records should be built and submitted at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one record.
    fn record(&mut self, record: TraceRecord);

    /// Drain buffered records, if this recorder keeps any (memory
    /// recorders do; streaming and null recorders return nothing).
    fn take_records(&mut self) -> Vec<TraceRecord> {
        Vec::new()
    }
}

/// The default recorder: drops everything, reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _record: TraceRecord) {}
}

/// Collects records in memory, in emission order.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    records: Vec<TraceRecord>,
}

impl MemoryRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    fn take_records(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }
}

/// Streams records as JSON Lines to any writer (file, `Vec<u8>`, stdout).
pub struct JsonlRecorder {
    out: BufWriter<Box<dyn Write>>,
    /// Line buffer reused across records: each record is rendered into it
    /// with [`TraceRecord::write_jsonl`] and flushed as one `write_all`,
    /// so the per-record cost is formatting only, not allocation.
    buf: String,
    lines: u64,
}

impl JsonlRecorder {
    /// Create (truncating) a JSONL trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Stream to an arbitrary writer.
    pub fn to_writer(writer: Box<dyn Write>) -> Self {
        JsonlRecorder {
            out: BufWriter::new(writer),
            buf: String::new(),
            lines: 0,
        }
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

impl Recorder for JsonlRecorder {
    fn record(&mut self, record: TraceRecord) {
        self.buf.clear();
        let _ = record.write_jsonl(&mut self.buf);
        self.buf.push('\n');
        // I/O errors on a trace sink should not abort a multi-hour
        // simulation; the line count lets callers detect short writes.
        if self.out.write_all(self.buf.as_bytes()).is_ok() {
            self.lines += 1;
        }
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecord {
        TraceRecord::new(SimTime::from_secs(2), "node1", "state_transition")
            .with("mode", "computation")
            .with("freq_mhz", 103.2)
            .with("frame", 7u64)
            .with("alive", true)
    }

    #[test]
    fn jsonl_has_fixed_key_order() {
        let line = sample().to_jsonl();
        assert_eq!(
            line,
            "{\"t_us\": 2000000, \"component\": \"node1\", \"kind\": \"state_transition\", \
             \"mode\": \"computation\", \"freq_mhz\": 103.2, \"frame\": 7, \"alive\": true}"
        );
    }

    #[test]
    fn string_fields_are_escaped() {
        let r = TraceRecord::new(SimTime::ZERO, "a\"b", "k").with("s", "x\ny\\");
        let line = r.to_jsonl();
        assert!(line.contains("\"a\\\"b\""));
        assert!(line.contains("\"x\\ny\\\\\""));
    }

    #[test]
    fn field_lookup() {
        let r = sample();
        assert_eq!(r.u64_field("frame"), Some(7));
        assert_eq!(r.str_field("mode"), Some("computation"));
        assert!(r.field("missing").is_none());
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(sample());
        assert!(r.take_records().is_empty());
    }

    #[test]
    fn memory_recorder_collects_and_drains() {
        let mut r = MemoryRecorder::new();
        assert!(r.enabled());
        r.record(sample());
        r.record(sample());
        assert_eq!(r.records().len(), 2);
        assert_eq!(r.take_records().len(), 2);
        assert!(r.records().is_empty());
    }

    #[test]
    fn jsonl_recorder_streams_lines() {
        // Write into a shared buffer via a small adapter.
        use std::sync::{Arc, Mutex};
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        {
            let mut rec = JsonlRecorder::to_writer(Box::new(buf.clone()));
            rec.record(sample());
            rec.record(sample());
            assert_eq!(rec.lines(), 2);
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], lines[1]);
        assert!(lines[0].starts_with("{\"t_us\": 2000000"));
    }

    #[test]
    fn display_formats() {
        let s = format!("{}", sample());
        assert!(s.contains("node1") && s.contains("state_transition") && s.contains("frame=7"));
    }

    /// The pre-buffering rendering: a fresh `String` per record with the
    /// `component`/`kind` escaping routed through temporary [`FieldValue`]s
    /// — kept here as the byte-for-byte reference the buffered path must
    /// match.
    fn reference_jsonl(r: &TraceRecord) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"t_us\": {}", r.time.as_micros());
        let _ = write!(
            out,
            ", \"component\": {}",
            FieldValue::from(r.component.as_str())
        );
        let _ = write!(out, ", \"kind\": {}", FieldValue::from(r.kind));
        for (name, value) in &r.fields {
            let _ = write!(out, ", \"{name}\": {value}");
        }
        out.push('}');
        out
    }

    #[test]
    fn buffered_rendering_matches_reference_on_randomized_records() {
        use crate::rng::SimRng;
        // Pools exercising every value class and the string escapes, plus
        // the non-finite floats that must render as `null`.
        const KINDS: [&str; 4] = ["state_transition", "power_segment", "tx", "a\"b\\c"];
        const STRS: [&str; 5] = ["computation", "x\ny\\", "\"", "\t\r", ""];
        const FLOATS: [f64; 7] = [
            0.0,
            -1.5,
            103.2,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e-12,
        ];
        let mut rng = SimRng::seed_from_u64(0xD015_D016);
        let mut buf = String::new();
        for i in 0..500 {
            let mut r = TraceRecord::new(
                SimTime::from_micros(rng.uniform_u64(0, 1 << 40)),
                STRS[rng.uniform_u64(0, STRS.len() as u64 - 1) as usize],
                KINDS[rng.uniform_u64(0, KINDS.len() as u64 - 1) as usize],
            );
            // 0..=6 fields — iteration 0 pins the empty-field-list case.
            let n_fields = if i == 0 { 0 } else { rng.uniform_u64(0, 6) };
            for _ in 0..n_fields {
                r = match rng.uniform_u64(0, 4) {
                    0 => r.with("u", rng.next_u64()),
                    1 => r.with("i", -(rng.uniform_u64(0, 1 << 32) as i64)),
                    2 => r.with(
                        "f",
                        FLOATS[rng.uniform_u64(0, FLOATS.len() as u64 - 1) as usize],
                    ),
                    3 => r.with(
                        "s",
                        STRS[rng.uniform_u64(0, STRS.len() as u64 - 1) as usize],
                    ),
                    _ => r.with("b", rng.uniform_u64(0, 1) == 1),
                };
            }
            buf.clear();
            r.write_jsonl(&mut buf).unwrap();
            assert_eq!(buf, reference_jsonl(&r), "record #{i}: {r:?}");
            assert_eq!(r.to_jsonl(), buf, "to_jsonl delegates, record #{i}");
        }
    }
}
