//! Pass 1 of the interprocedural analysis: a lightweight per-file item
//! model built on the token stream.
//!
//! For every `.rs` file this extracts the function definitions (with
//! enclosing `impl`/`trait` type, source line, and `#[cfg(test)]` scope),
//! and for each function body: the call sites (free, path-qualified and
//! method calls), the determinism *sinks* D009 chases transitively
//! (wall-clock reads, entropy sources, `unwrap`/`expect`), the
//! `Mutex`/`RwLock` acquisition sites with a same-function
//! held-simultaneously approximation for D011, and the `CounterSet`
//! increment sites with their string-literal keys for D010.
//!
//! The model is deliberately *name-resolution-lite*: it never type-checks.
//! [`crate::graph`] merges the per-file models into a workspace symbol
//! table and resolves calls conservatively (ambiguity drops the edge, so
//! the reachability rules under-approximate rather than false-positive).

use crate::lexer::{Token, TokenKind};

/// One parsed `.rs` file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Workspace-relative path.
    pub path: String,
    /// Owning crate (`crates/<name>/…` → `<name>`; otherwise the first
    /// path segment, so `tests/` and `examples/` each form a pseudo-crate).
    pub krate: String,
    /// File-stem module name (`pipeline.rs` → `pipeline`; `lib.rs` → "").
    pub module: String,
    pub fns: Vec<FnItem>,
}

/// One `fn` definition.
#[derive(Debug, Default)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (`SweepEngine::run`).
    pub impl_type: Option<String>,
    /// Line of the `fn` keyword — D009 allow comments attach here.
    pub line: u32,
    /// Inside a `#[cfg(test)]` module.
    pub is_test: bool,
    pub calls: Vec<CallSite>,
    pub sinks: Vec<Sink>,
    pub locks: Vec<LockSite>,
    pub counters: Vec<CounterSite>,
    /// Indices into `locks`: (outer, inner) acquired while outer held.
    pub lock_pairs: Vec<(usize, usize)>,
    /// (lock index, call index): calls made while the lock is held.
    pub calls_under_lock: Vec<(usize, usize)>,
    /// Pass-4 CFG/dataflow facts: loop-region alloc sinks (D015) and
    /// loop-invariant rebuild candidates (D016).
    pub flow: crate::dataflow::FnFlow,
}

impl FnItem {
    /// Display name for chains and dumps (`SweepEngine::run` or `run`).
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Called name (last path segment / method name).
    pub name: String,
    /// Leading path segments (`dles_sim::par_map` → `["dles_sim"]`;
    /// `Self::emit` has its `Self` already replaced by the impl type).
    pub path: Vec<String>,
    pub line: u32,
    /// `recv.name(…)` rather than `name(…)`.
    pub method: bool,
}

/// What kind of determinism sink a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// `Instant` / `SystemTime` (D001's ban, chased transitively).
    WallClock,
    /// `thread_rng`, `OsRng`, … (D002's ban, chased transitively).
    Entropy,
    /// `.unwrap()` / `.expect(…)` (D005's ban, chased transitively).
    UnwrapPanic,
}

/// One sink occurrence.
#[derive(Debug)]
pub struct Sink {
    pub kind: SinkKind,
    /// The offending identifier (`Instant`, `unwrap`, …).
    pub what: String,
    pub line: u32,
}

/// One `Mutex`/`RwLock` acquisition (`x.lock()`, `x.read()`, `x.write()`
/// with empty argument lists).
#[derive(Debug)]
pub struct LockSite {
    /// Canonical lock name: the dotted receiver chain with a leading
    /// `self.` stripped (`self.cache.lock()` → `cache`).
    pub name: String,
    pub line: u32,
}

/// One `CounterSet` emit site (`counters.incr("k")` / `counters.add("k", n)`).
#[derive(Debug)]
pub struct CounterSite {
    /// Literal keys this site can emit (several for a `match` argument).
    pub keys: Vec<String>,
    pub line: u32,
    /// `.incr(expr)` whose key is not a string literal.
    pub non_literal: bool,
}

/// Crate name from a workspace-relative path.
fn crate_of(path: &str) -> String {
    let segs: Vec<&str> = path.split('/').collect();
    for (i, s) in segs.iter().enumerate() {
        if *s == "crates" && i + 1 < segs.len() {
            return segs[i + 1].to_owned();
        }
    }
    segs.first().copied().unwrap_or("").to_owned()
}

/// File-stem module name (`lib.rs`/`main.rs`/`mod.rs` → "").
fn module_of(path: &str) -> String {
    let stem = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs");
    match stem {
        "lib" | "main" | "mod" => String::new(),
        s => s.to_owned(),
    }
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "let", "ref", "box",
    "where", "await",
];

/// Method names that are modeled specially, not as call edges.
const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Build the item model for one file. `tokens` is the full lexed stream,
/// `sig` the indices of non-comment tokens, `in_test` the per-token
/// `#[cfg(test)]` marking (see `mark_test_mods` in `rules.rs`).
pub fn build_model(rel_path: &str, tokens: &[Token], sig: &[usize], in_test: &[bool]) -> FileModel {
    let mut model = FileModel {
        path: rel_path.to_owned(),
        krate: crate_of(rel_path),
        module: module_of(rel_path),
        fns: Vec::new(),
    };

    let impl_types = mark_impl_types(tokens, sig);
    let punct_at = |k: usize, c: char| sig.get(k).is_some_and(|&ti| tokens[ti].is_punct(c));
    let ident_at = |k: usize| {
        sig.get(k)
            .map(|&ti| &tokens[ti])
            .filter(|t| t.kind == TokenKind::Ident)
    };

    let mut si = 0;
    while si < sig.len() {
        let tok = &tokens[sig[si]];
        if !tok.is_ident("fn") {
            si += 1;
            continue;
        }
        // `fn(usize) -> R` pointer types have no name; skip them.
        let Some(name_tok) = ident_at(si + 1) else {
            si += 1;
            continue;
        };
        // Find the parameter list, skipping generics `<…>`.
        let mut j = si + 2;
        while j < sig.len() && !punct_at(j, '(') && !punct_at(j, '{') && !punct_at(j, ';') {
            j += 1;
        }
        if !punct_at(j, '(') {
            si += 1;
            continue;
        }
        let params_end = match_delim(tokens, sig, j, '(', ')');
        // Find the body `{`, unless the item is a bodyless trait method.
        let mut k = params_end + 1;
        while k < sig.len() && !punct_at(k, '{') && !punct_at(k, ';') {
            k += 1;
        }
        if !punct_at(k, '{') {
            si = k.max(si + 1);
            continue;
        }
        let body_end = match_delim(tokens, sig, k, '{', '}');
        let mut item = FnItem {
            name: name_tok.text.clone(),
            impl_type: impl_types[sig[si]].clone(),
            line: tok.line,
            is_test: in_test[sig[si]],
            ..FnItem::default()
        };
        scan_body(tokens, sig, k, body_end, &mut item);
        item.flow = crate::dataflow::analyze_body(tokens, sig, k, body_end);
        model.fns.push(item);
        si = body_end.max(si + 1);
    }
    model
}

/// Sig index of the delimiter matching the opener at `open` (or the last
/// sig index if the file is truncated).
pub(crate) fn match_delim(tokens: &[Token], sig: &[usize], open: usize, o: char, c: char) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < sig.len() {
        let t = &tokens[sig[k]];
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    sig.len().saturating_sub(1)
}

/// For every token, the name of the enclosing `impl`/`trait` type, if any.
pub(crate) fn mark_impl_types(tokens: &[Token], sig: &[usize]) -> Vec<Option<String>> {
    let mut out: Vec<Option<String>> = vec![None; tokens.len()];
    let punct_at = |k: usize, c: char| sig.get(k).is_some_and(|&ti| tokens[ti].is_punct(c));
    let mut si = 0;
    while si < sig.len() {
        let tok = &tokens[sig[si]];
        if !(tok.is_ident("impl") || tok.is_ident("trait")) {
            si += 1;
            continue;
        }
        // Collect idents up to the block `{` (or give up at `;`, e.g.
        // `impl Trait` in return position never opens a block here).
        let mut j = si + 1;
        let mut idents: Vec<&str> = Vec::new();
        let mut after_for: Option<&str> = None;
        let mut saw_for = false;
        let mut angle = 0i32;
        while j < sig.len() && !punct_at(j, '{') && !punct_at(j, ';') && j < si + 40 {
            let t = &tokens[sig[j]];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if t.kind == TokenKind::Ident && angle == 0 {
                if t.text == "for" {
                    saw_for = true;
                } else if saw_for && after_for.is_none() {
                    after_for = Some(&t.text);
                } else if !saw_for {
                    idents.push(&t.text);
                }
            }
            j += 1;
        }
        if !punct_at(j, '{') {
            si += 1;
            continue;
        }
        // `impl Trait for Type {…}` → Type; `impl Type {…}` / `trait
        // Name {…}` → the last pre-brace ident (skips `dyn`, generics).
        let ty = after_for.or(idents.last().copied());
        let close = match_delim(tokens, sig, j, '{', '}');
        if let Some(ty) = ty {
            for k in (j + 1)..close {
                out[sig[k]] = Some(ty.to_owned());
            }
        }
        si = j + 1; // descend into the block (nested impls overwrite)
    }
    out
}

/// Walk a function body `(open, close)` collecting calls, sinks, locks
/// and counter sites, with a brace-depth approximation of lock-guard
/// lifetimes: a `let`-bound guard lives to the end of its block, a
/// temporary guard to the end of its statement.
fn scan_body(tokens: &[Token], sig: &[usize], open: usize, close: usize, item: &mut FnItem) {
    let punct_at = |k: usize, c: char| sig.get(k).is_some_and(|&ti| tokens[ti].is_punct(c));
    let mut depth = 0usize; // brace depth relative to the body
    let mut active: Vec<ActiveLock> = Vec::new();
    let mut stmt_is_let = false;

    let mut k = open;
    while k <= close {
        let tok = &tokens[sig[k]];
        match tok.kind {
            TokenKind::Punct => {
                let c = tok.text.as_bytes().first().copied().unwrap_or(0) as char;
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        active.retain(|l| l.depth <= depth);
                    }
                    ';' => {
                        // Temporary guards die at the end of the statement.
                        active.retain(|l| l.is_let || l.depth < depth);
                        stmt_is_let = false;
                    }
                    _ => {}
                }
            }
            TokenKind::Ident => {
                let name = tok.text.as_str();
                if name == "let" {
                    stmt_is_let = true;
                } else if name == "Instant" || name == "SystemTime" {
                    item.sinks.push(Sink {
                        kind: SinkKind::WallClock,
                        what: name.to_owned(),
                        line: tok.line,
                    });
                } else if crate::rules::D002_IDENTS.contains(&name) {
                    item.sinks.push(Sink {
                        kind: SinkKind::Entropy,
                        what: name.to_owned(),
                        line: tok.line,
                    });
                }
                let is_call = punct_at(k + 1, '(');
                let is_method = k > 0 && punct_at(k - 1, '.');
                if is_call && is_method {
                    match name {
                        "unwrap" | "expect" => {
                            item.sinks.push(Sink {
                                kind: SinkKind::UnwrapPanic,
                                what: name.to_owned(),
                                line: tok.line,
                            });
                        }
                        _ if LOCK_METHODS.contains(&name) && punct_at(k + 2, ')') => {
                            let lock = LockSite {
                                name: receiver_chain(tokens, sig, k),
                                line: tok.line,
                            };
                            let idx = item.locks.len();
                            for l in &active {
                                item.lock_pairs.push((l.idx, idx));
                            }
                            item.locks.push(lock);
                            active.push(ActiveLock {
                                idx,
                                depth,
                                is_let: stmt_is_let,
                            });
                        }
                        "incr" | "add" => {
                            if let Some(site) = counter_site(tokens, sig, k, name) {
                                item.counters.push(site);
                            } else if name == "add" {
                                // Non-literal `.add` is some other type's
                                // method (EnergyMeter, BTreeMap…): a call.
                                push_call(tokens, sig, k, true, item, &active);
                            }
                        }
                        _ => push_call(tokens, sig, k, true, item, &active),
                    }
                } else if is_call
                    && !NON_CALL_KEYWORDS.contains(&name)
                    && !(k > 0 && tokens[sig[k - 1]].is_ident("fn"))
                {
                    push_call(tokens, sig, k, false, item, &active);
                }
            }
            _ => {}
        }
        k += 1;
    }
    // Nested fn items inside a body are rare; their calls are attributed
    // to the enclosing fn, which over-approximates reachability safely.
}

/// A lock guard currently live during the body walk.
struct ActiveLock {
    idx: usize,
    depth: usize,
    is_let: bool,
}

/// Record a call site (and which locks are held at it).
fn push_call(
    tokens: &[Token],
    sig: &[usize],
    k: usize,
    method: bool,
    item: &mut FnItem,
    active: &[ActiveLock],
) {
    let name = tokens[sig[k]].text.clone();
    // Skip macros: `name!(…)` — `(` is at k+1 only for calls, macros have
    // `!` first, so a macro never reaches here; but `name !(…)` with the
    // bang as the k+1 token does not match the `(` guard anyway.
    let mut path = Vec::new();
    if !method {
        // Walk back through `seg ::` pairs.
        let mut p = k;
        while p >= 2
            && sig.get(p - 1).is_some_and(|&ti| tokens[ti].is_punct(':'))
            && sig.get(p - 2).is_some_and(|&ti| tokens[ti].is_punct(':'))
        {
            if p >= 3 && tokens[sig[p - 3]].kind == TokenKind::Ident {
                path.insert(0, tokens[sig[p - 3]].text.clone());
                p -= 3;
            } else {
                break;
            }
        }
        // `Self::helper(…)` resolves within the enclosing impl type.
        if path.first().is_some_and(|s| s == "Self") {
            if let Some(t) = &item.impl_type {
                path[0] = t.clone();
            }
        }
    }
    let call = CallSite {
        name,
        path,
        line: tokens[sig[k]].line,
        method,
    };
    let idx = item.calls.len();
    for l in active {
        item.calls_under_lock.push((l.idx, idx));
    }
    item.calls.push(call);
}

/// The dotted receiver chain before a method call at sig index `k`
/// (`self.cache.lock` → `cache`): idents joined by `.`, `self.` stripped.
fn receiver_chain(tokens: &[Token], sig: &[usize], k: usize) -> String {
    let mut segs: Vec<String> = Vec::new();
    let mut p = k;
    while p >= 2
        && sig.get(p - 1).is_some_and(|&ti| tokens[ti].is_punct('.'))
        && sig
            .get(p - 2)
            .is_some_and(|&ti| tokens[ti].kind == TokenKind::Ident)
    {
        segs.insert(0, tokens[sig[p - 2]].text.clone());
        p -= 2;
    }
    if segs.first().is_some_and(|s| s == "self") {
        segs.remove(0);
    }
    if segs.is_empty() {
        segs.push("<expr>".to_owned());
    }
    segs.join(".")
}

/// Parse a `.incr(…)`/`.add(…)` call at sig index `k` into a counter
/// site, or `None` when it is not counter-shaped (`Counter::incr()` with
/// no key, `EnergyMeter::add(mode, …)` with a non-literal first arg).
fn counter_site(tokens: &[Token], sig: &[usize], k: usize, method: &str) -> Option<CounterSite> {
    let open = k + 1;
    let close = match_delim(tokens, sig, open, '(', ')');
    if close <= open + 1 {
        return None; // `.incr()` — the single-Counter method, not keyed.
    }
    let first = &tokens[sig[open + 1]];
    if first.kind == TokenKind::Str {
        return Some(CounterSite {
            keys: vec![first.text.clone()],
            line: first.line,
            non_literal: false,
        });
    }
    if first.is_ident("match") {
        // `counters.incr(match kind { A => "a", B => "b" })`: every arm's
        // literal is a key this site can emit.
        let keys: Vec<String> = ((open + 1)..close)
            .filter_map(|i| {
                let t = &tokens[sig[i]];
                (t.kind == TokenKind::Str).then(|| t.text.clone())
            })
            .collect();
        if !keys.is_empty() {
            return Some(CounterSite {
                keys,
                line: first.line,
                non_literal: false,
            });
        }
    }
    if method == "incr" {
        // A keyed-counter increment whose key the registry cannot see.
        return Some(CounterSite {
            keys: Vec::new(),
            line: tokens[sig[k]].line,
            non_literal: true,
        });
    }
    None
}

/// Indices of non-comment tokens (the "significant" stream the item
/// scanners walk).
pub fn sig_indices(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect()
}

/// Convenience: lex + model in one step (tests, graph dumps).
pub fn model_of(rel_path: &str, src: &str) -> FileModel {
    let tokens = crate::lexer::lex(src);
    let sig = sig_indices(&tokens);
    let in_test = crate::rules::mark_test_mods(&tokens, &sig);
    build_model(rel_path, &tokens, &sig, &in_test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_with_impl_types_and_test_marking() {
        let src = "impl SweepEngine { pub fn run(&self) {} }\n\
                   fn free() {}\n\
                   trait World { fn handle(&mut self) { self.run(); } }\n\
                   #[cfg(test)]\nmod tests { fn t() {} }\n";
        let m = model_of("crates/core/src/sweep.rs", src);
        let names: Vec<(String, bool)> = m.fns.iter().map(|f| (f.display(), f.is_test)).collect();
        assert_eq!(
            names,
            vec![
                ("SweepEngine::run".to_owned(), false),
                ("free".to_owned(), false),
                ("World::handle".to_owned(), false),
                ("t".to_owned(), true),
            ]
        );
        assert_eq!(m.krate, "core");
        assert_eq!(m.module, "sweep");
    }

    #[test]
    fn impl_trait_for_type_attributes_to_the_type() {
        let src = "impl World for Pipeline { fn handle(&mut self) {} }";
        let m = model_of("crates/core/src/pipeline.rs", src);
        assert_eq!(m.fns[0].display(), "Pipeline::handle");
    }

    #[test]
    fn calls_free_path_method_and_self() {
        let src = "impl P { fn f(&self) { helper(); crate::report::render(1); \
                   dles_sim::par_map(1, 0, |i| i); self.g(); Self::h(); x.unwrap(); } }";
        let m = model_of("crates/core/src/x.rs", src);
        let f = &m.fns[0];
        let calls: Vec<(String, Vec<String>, bool)> = f
            .calls
            .iter()
            .map(|c| (c.name.clone(), c.path.clone(), c.method))
            .collect();
        assert!(calls.contains(&("helper".to_owned(), vec![], false)));
        assert!(calls.contains(&(
            "render".to_owned(),
            vec!["crate".to_owned(), "report".to_owned()],
            false
        )));
        assert!(calls.contains(&("par_map".to_owned(), vec!["dles_sim".to_owned()], false)));
        assert!(calls.contains(&("g".to_owned(), vec![], true)));
        assert!(calls.contains(&("h".to_owned(), vec!["P".to_owned()], false)));
        // unwrap is a sink, not a call.
        assert!(!calls.iter().any(|(n, _, _)| n == "unwrap"));
        assert_eq!(f.sinks.len(), 1);
        assert_eq!(f.sinks[0].kind, SinkKind::UnwrapPanic);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src = "fn f() { assert!(x); vec![1]; if (a) {} match (b) { _ => {} } }";
        let m = model_of("crates/core/src/x.rs", src);
        assert!(m.fns[0].calls.is_empty());
    }

    #[test]
    fn wallclock_and_entropy_sinks() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }";
        let m = model_of("crates/sim/src/x.rs", src);
        let kinds: Vec<SinkKind> = m.fns[0].sinks.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SinkKind::WallClock));
        assert!(kinds.contains(&SinkKind::Entropy));
    }

    #[test]
    fn lock_sites_and_nested_pairs() {
        let src = "impl E { fn f(&self) {\n\
                   let a = self.cache.lock();\n\
                   let b = self.counters.lock();\n\
                   } }";
        let m = model_of("crates/core/src/sweep.rs", src);
        let f = &m.fns[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.locks[0].name, "cache");
        assert_eq!(f.locks[1].name, "counters");
        assert_eq!(f.lock_pairs, vec![(0, 1)]);
    }

    #[test]
    fn block_scoped_guards_do_not_pair() {
        let src = "impl E { fn f(&self) {\n\
                   { let a = self.cache.lock(); }\n\
                   { let b = self.counters.lock(); }\n\
                   } }";
        let m = model_of("crates/core/src/sweep.rs", src);
        assert!(m.fns[0].lock_pairs.is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "impl E { fn f(&self) {\n\
                   self.counters.lock().clone();\n\
                   let b = self.cache.lock();\n\
                   } }";
        let m = model_of("crates/core/src/sweep.rs", src);
        assert!(m.fns[0].lock_pairs.is_empty());
    }

    #[test]
    fn calls_under_a_held_lock_are_recorded() {
        let src = "impl E { fn f(&self) { let g = self.cache.lock(); helper(); } }";
        let m = model_of("crates/core/src/sweep.rs", src);
        let f = &m.fns[0];
        assert_eq!(f.calls_under_lock.len(), 1);
        let (lock, call) = f.calls_under_lock[0];
        assert_eq!(f.locks[lock].name, "cache");
        assert_eq!(f.calls[call].name, "helper");
    }

    #[test]
    fn counter_sites_literal_match_and_non_literal() {
        let src = r#"fn f(c: &mut C, k: Kind) {
            c.incr("frames");
            c.add("sweep_jobs", 3);
            c.incr(match k { Kind::A => "a", Kind::B => "b" });
            c.incr(key);
            meter.add(mode, dur);
            plain.incr();
        }"#;
        let m = model_of("crates/core/src/x.rs", src);
        let f = &m.fns[0];
        assert_eq!(f.counters.len(), 4);
        assert_eq!(f.counters[0].keys, vec!["frames"]);
        assert_eq!(f.counters[1].keys, vec!["sweep_jobs"]);
        assert_eq!(f.counters[2].keys, vec!["a", "b"]);
        assert!(f.counters[3].non_literal);
        // `meter.add(mode, …)` became a call edge, `plain.incr()` nothing.
        assert!(f.calls.iter().any(|c| c.name == "add"));
        assert!(!f.calls.iter().any(|c| c.name == "incr"));
    }

    #[test]
    fn lock_methods_need_empty_parens() {
        // `file.write(buf)` is I/O, not a lock acquisition.
        let src = "fn f() { file.write(buf); port.read(n); q.lock(); }";
        let m = model_of("crates/net/src/x.rs", src);
        assert_eq!(m.fns[0].locks.len(), 1);
        assert_eq!(m.fns[0].locks[0].name, "q");
    }

    #[test]
    fn crate_and_module_attribution() {
        assert_eq!(crate_of("crates/sim/src/par.rs"), "sim");
        assert_eq!(crate_of("tests/golden_outputs.rs"), "tests");
        assert_eq!(
            crate_of("crates/lint/tests/fixtures/crates/core/x.rs"),
            "lint"
        );
        assert_eq!(module_of("crates/sim/src/par.rs"), "par");
        assert_eq!(module_of("crates/sim/src/lib.rs"), "");
    }
}
