#![forbid(unsafe_code)]
//! `dles-lint` CLI — run the determinism rules over the workspace.
//!
//! ```text
//! cargo run -p lint --                     report findings, always exit 0
//! cargo run -p lint -- --deny              exit non-zero on any violation (CI mode)
//! cargo run -p lint -- --json              machine-readable report on stdout
//! cargo run -p lint -- --graph-dump        dump the merged symbol/call graph
//! cargo run -p lint -- --schema-dump       print the extracted trace schema
//!                                          (add --json for the lockfile form)
//! cargo run -p lint -- --check-goldens     validate tests/goldens/*.jsonl
//!                                          against the schema (D014)
//! cargo run -p lint -- [paths…]            scan only these files/directories
//! ```
//!
//! With no paths, the whole workspace is scanned (`crates/`, `tests/`,
//! `examples/`) and the D006 documentation cross-check runs against
//! `README.md`. Rules and the allow-comment syntax are documented in
//! `LINTS.md`. The `--schema-dump --json` output is committed as
//! `trace_schema.json` at the workspace root; CI diffs a fresh dump
//! against it so schema changes ship with an explicit lockfile update.
//!
//! Exit codes: 0 clean, 1 violations under `--deny`, 2 I/O or usage
//! errors (unknown flag, unreadable file or workspace) — so CI can tell a
//! red tree from a broken scan.

use dles_lint::{
    analyze_workspace, collect_rs_files, crosscheck_workspace_docs, find_workspace_root,
    render_graph, render_human, render_json, render_schema_human, render_schema_json, scan_files,
    schema, sort_findings, DEFAULT_ROOTS,
};
use std::path::PathBuf;

fn main() {
    let mut deny = false;
    let mut json = false;
    let mut graph_dump = false;
    let mut schema_dump = false;
    let mut check_goldens = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--graph-dump" => graph_dump = true,
            "--schema-dump" => schema_dump = true,
            "--check-goldens" => check_goldens = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: dles-lint [--deny] [--json] [--graph-dump] [--schema-dump] \
                     [--check-goldens] [paths…]"
                );
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("dles-lint: unknown flag {other}");
                std::process::exit(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|e| {
        eprintln!("dles-lint: cannot determine working directory: {e}");
        std::process::exit(2);
    });
    let root = find_workspace_root(&cwd).unwrap_or_else(|| {
        eprintln!("dles-lint: no workspace root ([workspace] Cargo.toml) above {cwd:?}");
        std::process::exit(2);
    });

    let explicit = !paths.is_empty();
    if (check_goldens || schema_dump) && explicit {
        // A partial schema would call every golden record of an unscanned
        // kind a violation, and a partial dump would diff against the
        // lockfile as pure noise.
        eprintln!("dles-lint: --schema-dump / --check-goldens require a full workspace scan");
        std::process::exit(2);
    }
    let mut files: Vec<PathBuf> = Vec::new();
    if explicit {
        for p in &paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                cwd.join(p)
            };
            if abs.is_dir() {
                if let Err(e) = collect_rs_files(&abs, &mut files) {
                    eprintln!("dles-lint: cannot walk {abs:?}: {e}");
                    std::process::exit(2);
                }
            } else {
                files.push(abs);
            }
        }
    } else {
        for sub in DEFAULT_ROOTS {
            let dir = root.join(sub);
            if dir.is_dir() {
                if let Err(e) = collect_rs_files(&dir, &mut files) {
                    eprintln!("dles-lint: cannot walk {dir:?}: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    files.sort();
    files.dedup();

    let mut outcome = scan_files(&root, &files);
    crosscheck_workspace_docs(&root, &mut outcome);
    // Dead-registry-row detection needs the whole workspace in view; an
    // explicit file list would make every undriven key look dead.
    analyze_workspace(&root, &mut outcome, !explicit);
    if check_goldens {
        let ws_schema = outcome.schema.as_ref().expect("analyze_workspace sets it");
        let (findings, io_errors) = schema::check_goldens(ws_schema, &root, "tests/goldens");
        outcome.findings.extend(findings);
        outcome.io_errors += io_errors;
    }
    sort_findings(&mut outcome.findings);

    if graph_dump {
        print!("{}", render_graph(&outcome.models));
    } else if schema_dump {
        let ws_schema = outcome.schema.as_ref().expect("analyze_workspace sets it");
        if json {
            print!("{}", render_schema_json(ws_schema));
        } else {
            print!("{}", render_schema_human(ws_schema));
        }
    } else if json {
        print!("{}", render_json(&outcome));
    } else {
        print!("{}", render_human(&outcome));
    }

    // A partial scan outranks a red one: findings from the files we did
    // read may be incomplete, so report the scan itself as broken first.
    if outcome.io_errors > 0 {
        std::process::exit(2);
    }
    if deny && outcome.violation_count() > 0 {
        std::process::exit(1);
    }
}
