#![forbid(unsafe_code)]
//! `dles-lint` — determinism & simulation-safety static analysis.
//!
//! The repro's headline guarantee is that a seeded run produces
//! byte-identical traces, counters and reports for any `--threads` count.
//! That guarantee is easy to break silently — a stray `Instant::now`, a
//! `HashMap` iterated into a report, a `partial_cmp().unwrap()` on a NaN —
//! so this crate checks the source mechanically instead of by convention.
//! Rules are numbered D001–D016 (plus D000 for allow-comment hygiene);
//! `LINTS.md` at the workspace root documents each one. Per-file rules
//! run in pass 1 ([`rules`]), the interprocedural graph rules in pass 2
//! ([`graph`]), the trace-schema rules in pass 3 ([`schema`]), and the
//! intraprocedural CFG/dataflow rules in pass 4 ([`mod@cfg`] + [`dataflow`]).
//!
//! The scanner is a hand-rolled token-level lexer ([`lexer`]) because the
//! build environment is offline (no `syn`); the rules ([`rules`]) operate
//! on that token stream with string/comment/attribute awareness.

pub mod cfg;
pub mod dataflow;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod schema;
pub mod suffixes;

pub use graph::render_graph;
pub use rules::{crosscheck_docs, scan_file, DocCandidate, Finding, GraphAllow, RuleId};
pub use schema::{render_schema_human, render_schema_json, TraceSchema};

use std::fs;
use std::path::{Path, PathBuf};

/// Subdirectories of the workspace root scanned by default.
pub const DEFAULT_ROOTS: [&str; 3] = ["crates", "tests", "examples"];

/// The aggregated result of scanning a set of files.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub cli_flags: Vec<DocCandidate>,
    /// Per-file item models, merged by the pass-2 graph analysis.
    pub models: Vec<model::FileModel>,
    /// Per-file trace emit sites, merged by the pass-3 schema analysis.
    pub file_schemas: Vec<schema::FileSchema>,
    /// The merged workspace trace schema, populated by
    /// [`analyze_workspace`].
    pub schema: Option<schema::TraceSchema>,
    /// Allow directives naming pass-2 rules, matched after the merge.
    pub graph_allows: Vec<GraphAllow>,
    /// Allow directives naming pass-3 schema rules, ditto.
    pub schema_allows: Vec<GraphAllow>,
    /// Files that could not be read: drives the distinct exit code 2, so
    /// CI can tell "the tree has violations" from "the scan was partial".
    pub io_errors: usize,
}

impl ScanOutcome {
    /// Findings not suppressed by an allow comment.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_violation())
    }

    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }
}

/// Recursively collect `.rs` files under `dir`, sorted by path so the
/// linter's own output is deterministic. Skips build output (`target`) and
/// lint test corpora (`fixtures` directories hold intentionally bad code).
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan `files` (absolute or root-relative paths), reporting findings with
/// workspace-relative paths. Unreadable files are themselves findings —
/// the linter must never silently skip part of the tree.
pub fn scan_files(root: &Path, files: &[PathBuf]) -> ScanOutcome {
    let mut outcome = ScanOutcome::default();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        match fs::read_to_string(file) {
            Ok(src) => {
                let scan = scan_file(&rel, &src);
                outcome.findings.extend(scan.findings);
                outcome.cli_flags.extend(scan.cli_flags);
                outcome.models.push(scan.model);
                outcome.file_schemas.push(scan.schema);
                outcome.graph_allows.extend(scan.graph_allows);
                outcome.schema_allows.extend(scan.schema_allows);
                outcome.files_scanned += 1;
            }
            Err(e) => {
                outcome.io_errors += 1;
                outcome.findings.push(Finding {
                    rule: RuleId::D000,
                    path: rel,
                    line: 0,
                    message: format!("cannot read file: {e}"),
                    allowed: None,
                });
            }
        }
    }
    outcome
}

/// Run the D006 documentation cross-check against `README.md` at the
/// workspace root, appending any findings to `outcome`.
pub fn crosscheck_workspace_docs(root: &Path, outcome: &mut ScanOutcome) {
    if outcome.cli_flags.is_empty() {
        return;
    }
    let readme = root.join("README.md");
    match fs::read_to_string(&readme) {
        Ok(text) => {
            let findings = crosscheck_docs("README.md", &text, &outcome.cli_flags);
            outcome.findings.extend(findings);
        }
        Err(e) => outcome.findings.push(Finding {
            rule: RuleId::D006,
            path: "README.md".to_owned(),
            line: 0,
            message: format!("cannot read README.md for the schema/flag cross-check: {e}"),
            allowed: None,
        }),
    }
}

/// Run the pass-2 interprocedural rules (D009/D010/D011) and the pass-3
/// schema rules (D012/D013) over the merged per-file models, appending
/// their findings to `outcome`. `full` marks a whole-workspace scan, which
/// is the only mode where "documented counter key / schema row has no
/// emit site" is decidable. The README read here feeds the D010
/// counter-key registry and the D013 trace-schema table cross-checks.
pub fn analyze_workspace(root: &Path, outcome: &mut ScanOutcome, full: bool) {
    let readme = fs::read_to_string(root.join("README.md")).ok();
    let allows = std::mem::take(&mut outcome.graph_allows);
    let findings = graph::analyze(&outcome.models, readme.as_deref(), full, allows);
    outcome.findings.extend(findings);
    let schema_allows = std::mem::take(&mut outcome.schema_allows);
    let (schema, findings) = schema::analyze(
        &outcome.file_schemas,
        readme.as_deref(),
        full,
        schema_allows,
    );
    outcome.findings.extend(findings);
    outcome.schema = Some(schema);
}

/// Sort findings for stable output: by path, then line, then rule.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
    });
}

/// Human-readable report: one line per violation, plus a summary.
pub fn render_human(outcome: &ScanOutcome) -> String {
    let mut out = String::new();
    for f in outcome.violations() {
        out.push_str(&format!(
            "{}:{}: {} {}\n",
            f.path,
            f.line,
            f.rule.as_str(),
            f.message
        ));
    }
    let allowed = outcome.findings.len() - outcome.violation_count();
    out.push_str(&format!(
        "dles-lint: {} file(s) scanned, {} violation(s), {} allowed\n",
        outcome.files_scanned,
        outcome.violation_count(),
        allowed
    ));
    out
}

/// JSON report (hand-rolled — the workspace is offline, no serde): every
/// finding including allowed ones, plus the per-rule summary. Uploaded as
/// a CI artifact.
pub fn render_json(outcome: &ScanOutcome) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in outcome.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": {}, \"line\": {}, \"message\": {}, \
             \"allowed\": {}}}{}\n",
            f.rule.as_str(),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
            match &f.allowed {
                Some(reason) => json_str(reason),
                None => "null".to_owned(),
            },
            if i + 1 < outcome.findings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n  \"summary\": {\n");
    out.push_str(&format!(
        "    \"files_scanned\": {},\n    \"violations\": {},\n    \"allowed\": {},\n",
        outcome.files_scanned,
        outcome.violation_count(),
        outcome.findings.len() - outcome.violation_count()
    ));
    // Every rule appears, including zero counts, so CI dashboards can
    // diff runs without special-casing absent keys.
    out.push_str("    \"by_rule\": {");
    for (i, rule) in RuleId::ALL.into_iter().enumerate() {
        let n = outcome.violations().filter(|f| f.rule == rule).count();
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {n}", rule.as_str()));
    }
    out.push_str("}\n  }");
    // The schema section mirrors `--schema-dump --json` in summary form:
    // per-kind field and emit-site counts, so the CI artifact records the
    // observability surface alongside the findings.
    if let Some(schema) = &outcome.schema {
        out.push_str(",\n  \"schema\": {\n");
        out.push_str(&format!(
            "    \"kinds\": {},\n    \"fields\": {},\n    \"emit_sites\": {},\n",
            schema.kinds.len(),
            schema.field_count(),
            schema.emit_site_count()
        ));
        out.push_str("    \"by_kind\": {");
        for (i, (kind, ks)) in schema.kinds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{}: {{\"fields\": {}, \"emit_sites\": {}}}",
                json_str(kind),
                ks.fields.len(),
                ks.emit_sites.len()
            ));
        }
        out.push_str("}\n  }");
    }
    out.push_str("\n}\n");
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn render_json_is_valid_shape() {
        let mut outcome = ScanOutcome {
            files_scanned: 2,
            ..ScanOutcome::default()
        };
        outcome.findings.push(Finding {
            rule: RuleId::D003,
            path: "crates/x/src/lib.rs".to_owned(),
            line: 7,
            message: "hash-ordered container `HashMap`".to_owned(),
            allowed: None,
        });
        outcome.findings.push(Finding {
            rule: RuleId::D005,
            path: "crates/core/src/pipeline.rs".to_owned(),
            line: 9,
            message: "unwrap".to_owned(),
            allowed: Some("invariant".to_owned()),
        });
        let json = render_json(&outcome);
        assert!(json.contains("\"rule\": \"D003\""));
        assert!(json.contains("\"allowed\": \"invariant\""));
        assert!(json.contains("\"violations\": 1"));
        // All rules are present, zero counts included.
        assert!(json.contains("\"D003\": 1"));
        assert!(json.contains("\"D001\": 0"));
        assert!(json.contains("\"D008\": 0"));
    }

    #[test]
    fn sort_is_stable_by_path_line_rule() {
        let f = |rule, path: &str, line| Finding {
            rule,
            path: path.to_owned(),
            line,
            message: String::new(),
            allowed: None,
        };
        let mut v = vec![
            f(RuleId::D005, "b.rs", 2),
            f(RuleId::D001, "b.rs", 2),
            f(RuleId::D003, "a.rs", 9),
        ];
        sort_findings(&mut v);
        assert_eq!(v[0].path, "a.rs");
        assert_eq!(v[1].rule, RuleId::D001);
        assert_eq!(v[2].rule, RuleId::D005);
    }
}
