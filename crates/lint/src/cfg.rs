//! Pass 4a of the analysis: intraprocedural control-flow regions.
//!
//! For each function body this folds the token stream into a flat list of
//! brace/keyword-matched *regions*: loop regions from `for`/`while`/`loop`
//! (plus the closure passed to `par_map`/`par_map_slice`, whose body runs
//! once per job and is therefore loop-shaped), and branch regions from
//! `if`/`else` blocks and `match` arms. Regions nest by containment — no
//! explicit tree is kept; the two queries the rules need are answered by
//! walking the list:
//!
//! * [`Cfg::loop_depth_at`] — how many loop regions enclose a token
//!   (D015's "inside a loop, depth N");
//! * [`Cfg::innermost_loop_at`] — the tightest enclosing loop region
//!   (D016's "the enclosing loop" a `let` could be hoisted above).
//!
//! Like the rest of the linter this is name-resolution-free and built on
//! the shared token stream: a keyword opens a region, `match_delim`
//! closes it, and parenthesis/bracket depth tracking keeps closure bodies
//! in loop headers (`for x in v.iter().map(|y| f(y))`) from being mistaken
//! for the loop body.

use crate::lexer::{Token, TokenKind};
use crate::model::match_delim;

/// What introduced a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// `for pat in iter { … }`.
    For,
    /// `while cond { … }` / `while let pat = expr { … }`.
    While,
    /// `loop { … }`.
    Loop,
    /// The closure argument of `par_map`/`par_map_slice`: its body runs
    /// once per job, so it counts as a loop region for D015/D016.
    ParClosure,
    /// An `if`/`else if` block.
    IfBlock,
    /// A bare `else { … }` block.
    ElseBlock,
    /// One `match` arm (pattern span recorded for the def-use pass).
    MatchArm,
}

impl RegionKind {
    /// Does entering this region mean "executed once per iteration"?
    pub fn is_loop(self) -> bool {
        matches!(
            self,
            RegionKind::For | RegionKind::While | RegionKind::Loop | RegionKind::ParClosure
        )
    }
}

/// One control-flow region, as inclusive sig-index bounds `[start, end]`.
#[derive(Debug)]
pub struct Region {
    pub kind: RegionKind,
    /// Sig index where the whole construct begins (the `for`/`while`
    /// keyword, the par call, a match arm's pattern). Bindings introduced
    /// by the construct's header live in `[kw, start)`, so the def-use
    /// pass uses `kw` as the "defined inside this region" lower bound.
    pub kw: usize,
    /// First sig index of the region (block regions include their `{`).
    pub start: usize,
    /// Last sig index of the region (block regions include their `}`).
    pub end: usize,
    /// Line of the introducing keyword (`for`, `match`, …) or par call.
    pub line: u32,
    /// Sig-index span of the region's own bindings: a match arm's pattern
    /// or a par-closure's parameter list. `None` when there are none.
    pub pat: Option<(usize, usize)>,
}

impl Region {
    pub fn contains(&self, si: usize) -> bool {
        self.start <= si && si <= self.end
    }
}

/// The region list for one function body.
#[derive(Debug, Default)]
pub struct Cfg {
    pub regions: Vec<Region>,
}

/// The parallel-executor entry points whose closure argument is a loop
/// region (mirrors `PAR_CALLS` in [`crate::graph`]).
const PAR_CLOSURE_CALLS: [&str; 2] = ["par_map", "par_map_slice"];

impl Cfg {
    /// Build the region list for the body delimited by the sig indices
    /// `open` (the `{`) and `close` (its matching `}`).
    pub fn build(tokens: &[Token], sig: &[usize], open: usize, close: usize) -> Cfg {
        let punct_at = |k: usize, c: char| sig.get(k).is_some_and(|&ti| tokens[ti].is_punct(c));
        let mut regions = Vec::new();
        let mut k = open + 1;
        while k < close {
            let tok = &tokens[sig[k]];
            if tok.kind != TokenKind::Ident {
                k += 1;
                continue;
            }
            match tok.text.as_str() {
                "for" | "while" | "loop" => {
                    if let Some(body_open) = block_after(tokens, sig, k + 1, close) {
                        let body_close = match_delim(tokens, sig, body_open, '{', '}');
                        let kind = match tok.text.as_str() {
                            "for" => RegionKind::For,
                            "while" => RegionKind::While,
                            _ => RegionKind::Loop,
                        };
                        regions.push(Region {
                            kind,
                            kw: k,
                            start: body_open,
                            end: body_close,
                            line: tok.line,
                            pat: None,
                        });
                    }
                }
                "if" => {
                    if let Some(body_open) = block_after(tokens, sig, k + 1, close) {
                        let body_close = match_delim(tokens, sig, body_open, '{', '}');
                        regions.push(Region {
                            kind: RegionKind::IfBlock,
                            kw: k,
                            start: body_open,
                            end: body_close,
                            line: tok.line,
                            pat: None,
                        });
                    }
                }
                // `else if` is handled when the scan reaches its `if`.
                "else" if punct_at(k + 1, '{') => {
                    let body_close = match_delim(tokens, sig, k + 1, '{', '}');
                    regions.push(Region {
                        kind: RegionKind::ElseBlock,
                        kw: k,
                        start: k + 1,
                        end: body_close,
                        line: tok.line,
                        pat: None,
                    });
                }
                "match" => {
                    if let Some(body_open) = block_after(tokens, sig, k + 1, close) {
                        let body_close = match_delim(tokens, sig, body_open, '{', '}');
                        parse_match_arms(tokens, sig, body_open, body_close, &mut regions);
                    }
                }
                name if PAR_CLOSURE_CALLS.contains(&name) && punct_at(k + 1, '(') => {
                    let args_close = match_delim(tokens, sig, k + 1, '(', ')');
                    if let Some(r) = par_closure_region(tokens, sig, k + 2, args_close, tok.line) {
                        regions.push(r);
                    }
                }
                _ => {}
            }
            k += 1;
        }
        Cfg { regions }
    }

    /// Number of loop regions enclosing sig index `si`.
    pub fn loop_depth_at(&self, si: usize) -> u32 {
        self.regions
            .iter()
            .filter(|r| r.kind.is_loop() && r.contains(si))
            .count() as u32
    }

    /// The tightest loop region enclosing sig index `si`.
    pub fn innermost_loop_at(&self, si: usize) -> Option<&Region> {
        self.regions
            .iter()
            .filter(|r| r.kind.is_loop() && r.contains(si))
            .min_by_key(|r| r.end - r.start)
    }
}

/// Nesting depth across all three bracket pairs, for "top level of this
/// span" checks while scanning forward.
#[derive(Default)]
pub(crate) struct Depth {
    paren: i32,
    brack: i32,
    brace: i32,
}

impl Depth {
    pub(crate) fn update(&mut self, t: &Token) {
        if t.kind != TokenKind::Punct || t.text.len() != 1 {
            return;
        }
        match t.text.as_bytes()[0] as char {
            '(' => self.paren += 1,
            ')' => self.paren -= 1,
            '[' => self.brack += 1,
            ']' => self.brack -= 1,
            '{' => self.brace += 1,
            '}' => self.brace -= 1,
            _ => {}
        }
    }

    pub(crate) fn zero(&self) -> bool {
        self.paren == 0 && self.brack == 0 && self.brace == 0
    }
}

/// The sig index of the `{` opening the block that follows a control-flow
/// header starting at `from`: the first `{` at bracket depth zero, so
/// closure bodies inside the header's parentheses are skipped. `None` when
/// a `;` ends the statement first (malformed or not a block form).
fn block_after(tokens: &[Token], sig: &[usize], from: usize, limit: usize) -> Option<usize> {
    let mut depth = Depth::default();
    let mut j = from;
    while j <= limit {
        let t = &tokens[sig.get(j).copied()?];
        if depth.zero() {
            if t.is_punct('{') {
                return Some(j);
            }
            if t.is_punct(';') {
                return None;
            }
        }
        depth.update(t);
        j += 1;
    }
    None
}

/// Split a `match` body into per-arm regions. An arm's pattern runs to the
/// top-level `=>`; its value is either the block that follows or the
/// expression up to the next top-level `,`.
fn parse_match_arms(
    tokens: &[Token],
    sig: &[usize],
    body_open: usize,
    body_close: usize,
    regions: &mut Vec<Region>,
) {
    let punct_at = |k: usize, c: char| sig.get(k).is_some_and(|&ti| tokens[ti].is_punct(c));
    let mut j = body_open + 1;
    while j < body_close {
        let pat_start = j;
        // Find the arm's `=>` at top level relative to the match body.
        let mut depth = Depth::default();
        let mut arrow = None;
        let mut p = j;
        while p < body_close {
            let t = &tokens[sig[p]];
            if depth.zero() && t.is_punct('=') && punct_at(p + 1, '>') {
                arrow = Some(p);
                break;
            }
            depth.update(t);
            p += 1;
        }
        let Some(arrow) = arrow else { break };
        let pat = (arrow > pat_start).then_some((pat_start, arrow - 1));
        let line = tokens[sig[pat_start]].line;
        let val_start = arrow + 2;
        if punct_at(val_start, '{') {
            let val_end = match_delim(tokens, sig, val_start, '{', '}');
            regions.push(Region {
                kind: RegionKind::MatchArm,
                kw: pat_start,
                start: val_start,
                end: val_end,
                line,
                pat,
            });
            j = val_end + 1;
            if punct_at(j, ',') {
                j += 1;
            }
        } else {
            // Expression arm: scan to the `,` at top level (or body end).
            let mut depth = Depth::default();
            let mut q = val_start;
            while q < body_close {
                let t = &tokens[sig[q]];
                depth.update(t);
                if depth.zero() && t.is_punct(',') {
                    break;
                }
                q += 1;
            }
            if q > val_start {
                regions.push(Region {
                    kind: RegionKind::MatchArm,
                    kw: pat_start,
                    start: val_start,
                    end: q - 1,
                    line,
                    pat,
                });
            }
            j = q + 1;
        }
    }
}

/// The closure argument of a `par_map`/`par_map_slice` call, as a
/// [`RegionKind::ParClosure`] region spanning the parameter pipes and the
/// closure body (up to the next top-level `,` or the call's `)`).
fn par_closure_region(
    tokens: &[Token],
    sig: &[usize],
    args_start: usize,
    args_close: usize,
    line: u32,
) -> Option<Region> {
    let mut depth = Depth::default();
    let mut j = args_start;
    while j < args_close {
        let t = &tokens[sig[j]];
        if depth.zero() && t.is_punct('|') {
            // Parameter list to the matching `|` (no nested pipes occur in
            // closure parameters in practice).
            let mut p = j + 1;
            while p < args_close && !tokens[sig[p]].is_punct('|') {
                p += 1;
            }
            // Body extends to the next top-level `,` or the end of the args.
            let mut body_depth = Depth::default();
            let mut q = p + 1;
            while q < args_close {
                let t = &tokens[sig[q]];
                body_depth.update(t);
                if body_depth.zero() && t.is_punct(',') {
                    break;
                }
                q += 1;
            }
            let pat = (p > j + 1).then_some((j + 1, p - 1));
            return Some(Region {
                kind: RegionKind::ParClosure,
                kw: j,
                start: j,
                end: q.saturating_sub(1).max(p),
                line,
                pat,
            });
        }
        depth.update(t);
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::model::sig_indices;

    /// Build the CFG of the first fn body in `src` and return it with the
    /// token stream, for position lookups.
    fn cfg_of(src: &str) -> (Vec<Token>, Vec<usize>, Cfg) {
        let tokens = lex(src);
        let sig = sig_indices(&tokens);
        let open = sig
            .iter()
            .position(|&ti| tokens[ti].is_punct('{'))
            .expect("fn body");
        let close = match_delim(&tokens, &sig, open, '{', '}');
        let cfg = Cfg::build(&tokens, &sig, open, close);
        (tokens, sig, cfg)
    }

    /// Sig index of the first occurrence of ident `word`.
    fn at(tokens: &[Token], sig: &[usize], word: &str) -> usize {
        sig.iter()
            .position(|&ti| tokens[ti].is_ident(word))
            .unwrap_or_else(|| panic!("ident `{word}` not found"))
    }

    #[test]
    fn nested_loops_count_depth() {
        let src = "fn f() { before(); for i in 0..3 { mid(); while go() { deep(); } } }";
        let (tokens, sig, cfg) = cfg_of(src);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "before")), 0);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "mid")), 1);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "deep")), 2);
    }

    #[test]
    fn loop_keyword_and_labels() {
        let src = "fn f() { loop { tick(); } }";
        let (tokens, sig, cfg) = cfg_of(src);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "tick")), 1);
        assert_eq!(cfg.regions.len(), 1);
        assert_eq!(cfg.regions[0].kind, RegionKind::Loop);
    }

    #[test]
    fn closure_in_loop_header_is_not_the_body() {
        // The `{ y + 1 }` closure body inside the iterator chain must not
        // be mistaken for the for-loop body.
        let src = "fn f(v: &[u32]) { for x in v.iter().map(|y| { y + 1 }) { hot(); } cold(); }";
        let (tokens, sig, cfg) = cfg_of(src);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "hot")), 1);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "cold")), 0);
    }

    #[test]
    fn match_arms_are_regions_with_patterns() {
        let src = "fn f(k: Kind) { for i in 0..2 { match k { Kind::A => hit(), \
                   Kind::B { n } => { block(n); } } } }";
        let (tokens, sig, cfg) = cfg_of(src);
        let arms: Vec<&Region> = cfg
            .regions
            .iter()
            .filter(|r| r.kind == RegionKind::MatchArm)
            .collect();
        assert_eq!(arms.len(), 2);
        // A sink inside a match arm still carries the loop depth.
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "hit")), 1);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "block")), 1);
        // Both arms recorded their pattern spans.
        assert!(arms.iter().all(|a| a.pat.is_some()));
    }

    #[test]
    fn par_map_closure_is_a_loop_region() {
        let src = "fn f(n: usize) { par_map(n, 0, |i| work(i)); after(); }";
        let (tokens, sig, cfg) = cfg_of(src);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "work")), 1);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "after")), 0);
        let r = cfg
            .regions
            .iter()
            .find(|r| r.kind == RegionKind::ParClosure)
            .expect("par closure region");
        assert!(r.pat.is_some(), "closure params recorded");
    }

    #[test]
    fn par_map_slice_trailing_args_stay_outside() {
        // Only the closure is the loop region — the slice argument before
        // it and anything after the closure are not "per job".
        let src = "fn f(w: &[J]) { par_map_slice(w, threads(), |slot, job| run(job)); }";
        let (tokens, sig, cfg) = cfg_of(src);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "run")), 1);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "threads")), 0);
    }

    #[test]
    fn if_else_blocks_are_branch_regions_not_loops() {
        let src = "fn f(c: bool) { if c { a(); } else { b(); } }";
        let (tokens, sig, cfg) = cfg_of(src);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "a")), 0);
        let kinds: Vec<RegionKind> = cfg.regions.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&RegionKind::IfBlock));
        assert!(kinds.contains(&RegionKind::ElseBlock));
    }

    #[test]
    fn innermost_loop_is_the_tightest() {
        let src = "fn f() { for i in 0..2 { for j in 0..3 { x(); } } }";
        let (tokens, sig, cfg) = cfg_of(src);
        let inner = cfg.innermost_loop_at(at(&tokens, &sig, "x")).unwrap();
        // The inner for's body is smaller than the outer's.
        let spans: Vec<usize> = cfg
            .regions
            .iter()
            .filter(|r| r.kind == RegionKind::For)
            .map(|r| r.end - r.start)
            .collect();
        assert_eq!(inner.end - inner.start, *spans.iter().min().unwrap());
    }

    #[test]
    fn while_let_header_parens_do_not_confuse_the_body() {
        let src = "fn f(q: &mut Q) { while let Some(ev) = q.pop() { dispatch(ev); } }";
        let (tokens, sig, cfg) = cfg_of(src);
        assert_eq!(cfg.loop_depth_at(at(&tokens, &sig, "dispatch")), 1);
        assert_eq!(cfg.regions.len(), 1);
        assert_eq!(cfg.regions[0].kind, RegionKind::While);
    }
}
