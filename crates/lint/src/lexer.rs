//! A hand-rolled token-level Rust lexer.
//!
//! The build environment is offline, so `dles-lint` cannot use `syn` or
//! `proc-macro2`; instead this module tokenizes Rust source directly. It
//! understands exactly as much of the language as the rules need:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals: plain (`"…"` with escapes), raw (`r"…"`,
//!   `r#"…"#`, any number of hashes), byte (`b"…"`, `br#"…"#`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escapes;
//! * raw identifiers (`r#match`);
//! * identifiers, numbers, and single-character punctuation.
//!
//! Every token carries its 1-based source line so findings and
//! `// lint: allow(…)` suppressions can be matched up by line.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#match` → `match`).
    Ident,
    /// String literal of any flavor; `text` is the *inner* content.
    Str,
    /// Char or byte-char literal; `text` is the inner content.
    Char,
    /// Lifetime (`'a`); `text` is the name without the quote.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// One punctuation character (`.`, `:`, `(`, …).
    Punct,
    /// `//…` comment; `text` is the content after the slashes.
    LineComment,
    /// `/*…*/` comment (nesting resolved); `text` is the inner content.
    BlockComment,
}

/// One lexed token with its 1-based starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Is this token the identifier `word`?
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// Is this token the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// Tokenize `src`. The lexer never fails: malformed input (e.g. an
/// unterminated string) produces a best-effort token stream that simply
/// ends at EOF, which is the right behavior for a linter that must not
/// crash on the code it is criticizing.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> Vec<Token> {
        let _ = self.src;
        let mut out = Vec::new();
        // A shebang (`#!/usr/bin/env …`) is not Rust syntax: skip the
        // whole first line. `#![inner_attribute]` must NOT be skipped.
        if self.peek(0) == Some('#') && self.peek(1) == Some('!') && self.peek(2) != Some('[') {
            while let Some(c) = self.peek(0) {
                if c == '\n' {
                    break;
                }
                self.bump();
            }
        }
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => out.push(self.line_comment(line)),
                '/' if self.peek(1) == Some('*') => out.push(self.block_comment(line)),
                '"' => out.push(self.plain_string(line)),
                '\'' => out.push(self.char_or_lifetime(line)),
                c if c.is_ascii_digit() => out.push(self.number(line)),
                c if c == '_' || c.is_alphabetic() => {
                    if let Some(tok) = self.maybe_prefixed_literal(line) {
                        out.push(tok);
                    } else {
                        out.push(self.ident(line));
                    }
                }
                _ => {
                    self.bump();
                    out.push(Token {
                        kind: TokenKind::Punct,
                        text: c.to_string(),
                        line,
                    });
                }
            }
        }
        out
    }

    fn line_comment(&mut self, line: u32) -> Token {
        self.bump();
        self.bump(); // "//"
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        Token {
            kind: TokenKind::LineComment,
            text,
            line,
        }
    }

    fn block_comment(&mut self, line: u32) -> Token {
        self.bump();
        self.bump(); // "/*"
        let mut text = String::new();
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        Token {
            kind: TokenKind::BlockComment,
            text,
            line,
        }
    }

    /// A `"…"` string with `\` escapes.
    fn plain_string(&mut self, line: u32) -> Token {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    text.push(c);
                    self.bump();
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => {
                    self.bump();
                    break;
                }
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        Token {
            kind: TokenKind::Str,
            text,
            line,
        }
    }

    /// `r"…"` / `r#"…"#` with any number of hashes (already past the `r`).
    fn raw_string(&mut self, line: u32) -> Token {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                // A quote closes only when followed by `hashes` hashes.
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        text.push(c);
                        self.bump();
                        continue 'outer;
                    }
                }
                self.bump();
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
            self.bump();
        }
        Token {
            kind: TokenKind::Str,
            text,
            line,
        }
    }

    /// Disambiguate `'a'` (char), `'\n'` (escaped char) and `'a` (lifetime).
    fn char_or_lifetime(&mut self, line: u32) -> Token {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: the char after `\` is always part
                // of the literal (even `\'`), then scan to the close.
                let mut text = String::from("\\");
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                    text.push(c);
                }
                Token {
                    kind: TokenKind::Char,
                    text,
                    line,
                }
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    // 'a' — a char literal.
                    self.bump();
                    self.bump();
                    Token {
                        kind: TokenKind::Char,
                        text: c.to_string(),
                        line,
                    }
                } else {
                    // 'a — a lifetime: consume the identifier tail.
                    let mut text = String::new();
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Token {
                        kind: TokenKind::Lifetime,
                        text,
                        line,
                    }
                }
            }
            Some(other) => {
                // Punctuation char literal like '(' or ' '.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                Token {
                    kind: TokenKind::Char,
                    text: other.to_string(),
                    line,
                }
            }
            None => Token {
                kind: TokenKind::Char,
                text: String::new(),
                line,
            },
        }
    }

    fn number(&mut self, line: u32) -> Token {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..10` does not.
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && text.ends_with(['e', 'E'])
                && !text.starts_with("0x")
                && !text.starts_with("0X")
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Signed float exponent: `1.5e-3` is one literal. The hex
                // guard keeps `0xE-1` as subtraction.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Token {
            kind: TokenKind::Number,
            text,
            line,
        }
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` and raw
    /// identifiers `r#name`; returns `None` when the upcoming token is a
    /// plain identifier that happens to start with `r` or `b`.
    fn maybe_prefixed_literal(&mut self, line: u32) -> Option<Token> {
        let c = self.peek(0)?;
        match c {
            'r' => match self.peek(1) {
                Some('"') => {
                    self.bump();
                    Some(self.raw_string(line))
                }
                Some('#') => {
                    // r#"…"# raw string or r#ident raw identifier.
                    let mut k = 1;
                    while self.peek(k) == Some('#') {
                        k += 1;
                    }
                    if self.peek(k) == Some('"') {
                        self.bump();
                        Some(self.raw_string(line))
                    } else {
                        // Raw identifier: skip `r#` and lex the name.
                        self.bump();
                        self.bump();
                        Some(self.ident(line))
                    }
                }
                _ => None,
            },
            'b' => match (self.peek(1), self.peek(2)) {
                (Some('"'), _) => {
                    self.bump();
                    Some(self.plain_string(line))
                }
                (Some('\''), _) => {
                    self.bump();
                    Some(self.char_or_lifetime(line))
                }
                (Some('r'), Some('"')) | (Some('r'), Some('#')) => {
                    self.bump();
                    self.bump();
                    Some(self.raw_string(line))
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn ident(&mut self, line: u32) -> Token {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Token {
            kind: TokenKind::Ident,
            text,
            line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = lex("fn main() { x.y(); }");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["fn", "main", "x", "y"]);
    }

    #[test]
    fn string_contents_are_not_idents() {
        let toks = lex(r#"let s = "HashMap Instant thread_rng";"#);
        assert!(!toks.iter().any(|t| t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "Instant" || t.text == "thread_rng")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.contains("HashMap")));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = kinds(r#"let s = "a\"b"; x"#);
        assert!(toks.contains(&(TokenKind::Str, "a\\\"b".to_owned())));
        assert!(toks.contains(&(TokenKind::Ident, "x".to_owned())));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; y"###);
        assert!(toks.contains(&(TokenKind::Str, "quote \" inside".to_owned())));
        assert!(toks.contains(&(TokenKind::Ident, "y".to_owned())));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"let a = b"abc"; let c = br#"d"e"#;"##);
        assert!(toks.contains(&(TokenKind::Str, "abc".to_owned())));
        assert!(toks.contains(&(TokenKind::Str, "d\"e".to_owned())));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "match".to_owned())));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("inner"));
        assert_eq!(toks[1], (TokenKind::Ident, "code".to_owned()));
    }

    #[test]
    fn line_comment_captures_text_and_stops_at_newline() {
        let toks = lex("x // lint: allow(D003) — reason\ny");
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert!(toks[1].text.contains("lint: allow(D003)"));
        assert_eq!(toks[2].text, "y");
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn comment_inside_string_is_string() {
        let toks = kinds(r#"let s = "// not a comment"; z"#);
        assert!(toks.contains(&(TokenKind::Str, "// not a comment".to_owned())));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("let c = 'a'; fn f<'a>(x: &'a str) { let n = '\\n'; let q = '\\''; }");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec!["a", "\\n", "\\'"]);
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn byte_char_literal() {
        let toks = kinds("let c = b'x'; w");
        assert!(toks.contains(&(TokenKind::Char, "x".to_owned())));
        assert!(toks.contains(&(TokenKind::Ident, "w".to_owned())));
    }

    #[test]
    fn numbers_including_ranges_and_floats() {
        let toks = kinds("for i in 0..10 { let x = 1.5e3; let h = 0xFF_u8; }");
        assert!(toks.contains(&(TokenKind::Number, "0".to_owned())));
        assert!(toks.contains(&(TokenKind::Number, "10".to_owned())));
        assert!(toks.contains(&(TokenKind::Number, "0xFF_u8".to_owned())));
        // 1.5e3: the mantissa stays one token.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t.starts_with("1.5")));
    }

    #[test]
    fn line_numbers_are_tracked_through_multiline_tokens() {
        let src = "a\n/* one\ntwo */\nb \"x\ny\" c";
        let toks = lex(src);
        let a = toks.iter().find(|t| t.is_ident("a")).unwrap();
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        let c = toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 4);
        assert_eq!(c.line, 5);
    }

    #[test]
    fn unterminated_string_does_not_hang() {
        let toks = lex("let s = \"never closed");
        assert_eq!(toks.last().unwrap().kind, TokenKind::Str);
    }

    #[test]
    fn shebang_line_is_skipped() {
        let toks = lex("#!/usr/bin/env run-cargo-script\nfn main() {}\n");
        assert_eq!(toks[0].text, "fn");
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let toks = lex("#![forbid(unsafe_code)]\nfn main() {}\n");
        assert!(toks[0].is_punct('#'));
        assert!(toks[1].is_punct('!'));
        assert!(toks.iter().any(|t| t.is_ident("forbid")));
    }

    #[test]
    fn signed_exponents_stay_one_token() {
        let toks = kinds("let a = 1.5e-3; let b = 2.5e+6; let c = 7E-2;");
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3".to_owned())));
        assert!(toks.contains(&(TokenKind::Number, "2.5e+6".to_owned())));
        assert!(toks.contains(&(TokenKind::Number, "7E-2".to_owned())));
    }

    #[test]
    fn hex_e_is_not_an_exponent() {
        // `0xE-1` is subtraction on the hex literal 0xE, not an exponent.
        let toks = kinds("let x = 0xE-1;");
        assert!(toks.contains(&(TokenKind::Number, "0xE".to_owned())));
        assert!(toks.contains(&(TokenKind::Number, "1".to_owned())));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == "-"));
    }

    #[test]
    fn float_suffix_stays_one_token() {
        let toks = kinds("let x = 1.0f64; let y = 3f32;");
        assert!(toks.contains(&(TokenKind::Number, "1.0f64".to_owned())));
        assert!(toks.contains(&(TokenKind::Number, "3f32".to_owned())));
    }

    #[test]
    fn ident_starting_with_r_or_b_is_plain() {
        let toks = kinds("let radius = 1; let bytes = 2; rb(br);");
        assert!(toks.contains(&(TokenKind::Ident, "radius".to_owned())));
        assert!(toks.contains(&(TokenKind::Ident, "bytes".to_owned())));
        assert!(toks.contains(&(TokenKind::Ident, "rb".to_owned())));
        assert!(toks.contains(&(TokenKind::Ident, "br".to_owned())));
    }

    #[test]
    fn inner_line_doc_is_one_comment_token() {
        let toks = lex("//! crate docs mentioning HashMap and Instant\nfn f() {}\n");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert!(toks[0].text.contains("HashMap"));
        // Nothing from the doc text leaks out as an identifier.
        assert!(!toks
            .iter()
            .any(|t| t.is_ident("HashMap") || t.is_ident("Instant")));
        assert!(toks.iter().any(|t| t.is_ident("f")));
    }

    #[test]
    fn inner_block_doc_is_one_comment_token() {
        let toks = lex("/*!\nSystemTime and thread_rng as prose.\n*/\nfn g() {}\n");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text.contains("SystemTime"));
        assert!(!toks
            .iter()
            .any(|t| t.is_ident("SystemTime") || t.is_ident("thread_rng")));
        // The fn after the block lands on the right line for findings.
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn code_fence_in_doc_comment_stays_comment_text() {
        // A fenced example spelling out a real violation must never
        // produce Ident tokens — each `///` line is one comment token.
        let src = "/// ```ignore\n/// let t = Instant::now();\n/// let m = HashMap::new();\n/// ```\nfn h() {}\n";
        let toks = lex(src);
        let comments: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::LineComment)
            .collect();
        assert_eq!(comments.len(), 4);
        assert!(comments[1].text.contains("Instant::now()"));
        assert!(!toks
            .iter()
            .any(|t| t.is_ident("Instant") || t.is_ident("HashMap")));
    }
}
