//! Pass 2 of the interprocedural analysis: the workspace symbol graph and
//! the three rules that run over it.
//!
//! [`SymbolGraph`] merges every file's [`FileModel`] into one table and
//! resolves call sites *conservatively*: a call that cannot be pinned to
//! exactly one workspace function gets no edge, so the reachability rules
//! under-approximate instead of spraying false positives. On top of it run:
//!
//! * **D009** — wall-clock, entropy, and `unwrap`/`expect` sinks that are
//!   transitively reachable from a hot-path root (the event-dispatch files,
//!   the parallel executor, and every `par_map` caller). The finding is
//!   reported at the *root* function with the full call chain; an
//!   `allow(D009)` on the root's `fn` line suppresses it.
//! * **D010** — counter-key discipline: keys must be string literals with a
//!   single owning crate, documented in README's counter-key registry, and
//!   every registry row must have a live emit site.
//! * **D011** — lock-order discipline: no cycles in the
//!   simultaneously-held lock graph (same-function nesting plus one level
//!   of call propagation), and no lock held across a `par_map` boundary.

use crate::model::{CallSite, FileModel, SinkKind};
use crate::rules::{Finding, GraphAllow, RuleId, D005_FILES};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A function in the merged table: (file index, fn index within the file).
pub type FnId = (usize, usize);

/// The merged workspace symbol table with name-resolution-lite.
pub struct SymbolGraph<'a> {
    pub models: &'a [FileModel],
    by_name: BTreeMap<&'a str, Vec<FnId>>,
}

impl<'a> SymbolGraph<'a> {
    pub fn build(models: &'a [FileModel]) -> Self {
        let mut by_name: BTreeMap<&'a str, Vec<FnId>> = BTreeMap::new();
        for (fi, m) in models.iter().enumerate() {
            for (fj, f) in m.fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push((fi, fj));
            }
        }
        SymbolGraph { models, by_name }
    }

    /// Resolve a call site from `caller_file` to a workspace function, or
    /// `None` when the target is external (std, dependencies) or ambiguous.
    pub fn resolve(&self, caller_file: usize, call: &CallSite) -> Option<FnId> {
        let cands = self.by_name.get(call.name.as_str())?;
        if call.method {
            // A method call carries no path; only a workspace-unique name
            // resolves (`.par_map_slice(…)` yes, `.get(…)` usually no).
            return pick(self.models, cands, caller_file);
        }
        if call.path.is_empty() {
            return pick(self.models, cands, caller_file);
        }
        let caller_krate = &self.models[caller_file].krate;
        let filtered: Vec<FnId> = cands
            .iter()
            .copied()
            .filter(|&(fi, fj)| {
                let m = &self.models[fi];
                let f = &m.fns[fj];
                call.path
                    .iter()
                    .all(|seg| segment_matches(seg, m, f.impl_type.as_deref(), caller_krate))
            })
            .collect();
        pick(self.models, &filtered, caller_file)
    }
}

/// Does one call-path segment fit a candidate's location? Matches the
/// owning crate (`dles_sim` or `sim`), relative-path keywords constrained
/// to the caller's crate, the file-stem module, or the `impl` type.
fn segment_matches(seg: &str, m: &FileModel, impl_type: Option<&str>, caller_krate: &str) -> bool {
    match seg {
        "crate" | "self" | "super" => m.krate == caller_krate,
        _ => {
            seg == m.krate
                || seg.strip_prefix("dles_") == Some(m.krate.as_str())
                || seg == m.module
                || impl_type == Some(seg)
        }
    }
}

/// Disambiguate candidates: unique in the caller's file, else unique in
/// the caller's crate, else unique workspace-wide, else unresolved.
fn pick(models: &[FileModel], cands: &[FnId], caller_file: usize) -> Option<FnId> {
    let only = |v: &[FnId]| (v.len() == 1).then(|| v[0]);
    let same_file: Vec<FnId> = cands
        .iter()
        .copied()
        .filter(|&(fi, _)| fi == caller_file)
        .collect();
    if !same_file.is_empty() {
        return only(&same_file);
    }
    let krate = &models[caller_file].krate;
    let same_crate: Vec<FnId> = cands
        .iter()
        .copied()
        .filter(|&(fi, _)| &models[fi].krate == krate)
        .collect();
    if !same_crate.is_empty() {
        return only(&same_crate);
    }
    only(cands)
}

/// The parallel-executor entry points: calling one makes the caller a
/// D009 root and holding a lock across one is a D011 violation.
const PAR_CALLS: [&str; 2] = ["par_map", "par_map_slice"];

/// The file that *implements* the parallel executor: its own body runs
/// inside the parallel region, so its functions are D009 roots too.
const PAR_FILE: &str = "par.rs";

fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Interprocedural rules cover production code: test/example trees are
/// exempt (their scratch counters, locks and unwraps are not hot paths),
/// but fixture corpora stay in scope so the rules are testable.
pub(crate) fn in_scope(path: &str) -> bool {
    if path.contains("fixtures/") {
        return true;
    }
    let in_dir = |d: &str| path.starts_with(&format!("{d}/")) || path.contains(&format!("/{d}/"));
    !(in_dir("tests") || in_dir("examples") || in_dir("benches"))
}

/// Is this function a D009 hot-path root? (Shared with the pass-4
/// dataflow rules, which walk the same graph from the same roots.)
pub(crate) fn is_root(m: &FileModel, fj: usize) -> bool {
    let f = &m.fns[fj];
    if f.is_test || !in_scope(&m.path) {
        return false;
    }
    let name = file_name(&m.path);
    D005_FILES.contains(&name)
        || name == PAR_FILE
        || f.calls.iter().any(|c| PAR_CALLS.contains(&c.name.as_str()))
}

/// Run all pass-2 rules and match the exported allow directives; an allow
/// that suppressed nothing becomes a D000 finding, like any stale allow.
pub fn analyze(
    models: &[FileModel],
    readme: Option<&str>,
    full: bool,
    allows: Vec<GraphAllow>,
) -> Vec<Finding> {
    let graph = SymbolGraph::build(models);
    let mut findings = Vec::new();
    check_reachability(&graph, &mut findings);
    check_counter_keys(&graph, readme, full, &mut findings);
    check_lock_order(&graph, &mut findings);
    // Pass 4 (CFG/dataflow) rules resolve reachability over the same
    // graph, so they run here and share the graph-allow channel.
    crate::dataflow::check_hot_paths(&graph, &mut findings);
    apply_graph_allows(findings, allows)
}

pub(crate) fn apply_graph_allows(
    mut findings: Vec<Finding>,
    allows: Vec<GraphAllow>,
) -> Vec<Finding> {
    let mut used = vec![false; allows.len()];
    for f in &mut findings {
        for (i, a) in allows.iter().enumerate() {
            // Graph findings anchor on `fn` signature lines, which rustfmt
            // rewraps freely — so besides the usual same-line form, accept
            // an allow on its own comment line directly above the finding
            // (standalone comments are stable under reformatting).
            if a.rule == f.rule && a.path == f.path && (a.line == f.line || a.line + 1 == f.line) {
                used[i] = true;
                f.allowed = Some(a.reason.clone());
            }
        }
    }
    for (a, used) in allows.iter().zip(used) {
        if !used {
            findings.push(Finding {
                rule: RuleId::D000,
                path: a.path.clone(),
                line: a.line,
                message: format!(
                    "stale `lint: allow({})` — it suppresses nothing on this line",
                    a.rule.as_str()
                ),
                allowed: None,
            });
        }
    }
    findings
}

/// What D009 calls a sink of each kind in its messages.
fn kind_word(kind: SinkKind) -> &'static str {
    match kind {
        SinkKind::WallClock => "wall-clock source",
        SinkKind::Entropy => "entropy source",
        SinkKind::UnwrapPanic => "panic source",
    }
}

/// Is this sink in D009's domain at all? Criterion keeps its wall clock
/// (D001's own exemption) and the event-dispatch files keep their
/// unwraps under D005, which already reports them line-by-line.
fn sink_eligible(m: &FileModel, kind: SinkKind) -> bool {
    match kind {
        SinkKind::WallClock => !m.path.starts_with("crates/criterion"),
        SinkKind::Entropy => true,
        SinkKind::UnwrapPanic => !D005_FILES.contains(&file_name(&m.path)),
    }
}

/// D009: breadth-first reachability of sinks from hot-path roots. Each
/// sink line is claimed once — by its own function if that function is a
/// root, otherwise by the first root (in file/fn order) that reaches it —
/// and reported at the claiming root's `fn` line with the full chain.
fn check_reachability(graph: &SymbolGraph, findings: &mut Vec<Finding>) {
    let models = graph.models;
    let mut roots: Vec<FnId> = Vec::new();
    for (fi, m) in models.iter().enumerate() {
        for fj in 0..m.fns.len() {
            if is_root(m, fj) {
                roots.push((fi, fj));
            }
        }
    }
    let mut claimed: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    let mut report = |root: FnId, chain: &[FnId], sink_fn: FnId, findings: &mut Vec<Finding>| {
        let (si, sj) = sink_fn;
        let sink_model = &models[si];
        let f = &sink_model.fns[sj];
        for s in &f.sinks {
            if !sink_eligible(sink_model, s.kind) {
                continue;
            }
            // Direct wall-clock/entropy in the root itself is already a
            // D001/D002 finding on that very line; D009 adds value only
            // one call or more away.
            if chain.len() == 1 && s.kind != SinkKind::UnwrapPanic {
                continue;
            }
            if !claimed.insert((si, s.line, s.what.clone())) {
                continue;
            }
            let (ri, rj) = root;
            let chain_txt: Vec<String> = chain
                .iter()
                .map(|&(ci, cj)| models[ci].fns[cj].display())
                .collect();
            findings.push(Finding {
                rule: RuleId::D009,
                path: models[ri].path.clone(),
                line: models[ri].fns[rj].line,
                message: format!(
                    "{} `{}` at {}:{} is reachable from hot-path root `{}` — \
                     chain: {}",
                    kind_word(s.kind),
                    s.what,
                    sink_model.path,
                    s.line,
                    models[ri].fns[rj].display(),
                    chain_txt.join(" → ")
                ),
                allowed: None,
            });
        }
    };

    // Pass A: every root claims its own direct sinks first, so the
    // finding (and its allow) lands on the frame that owns the code.
    for &r in &roots {
        report(r, &[r], r, findings);
    }
    // Pass B: breadth-first search from each root over resolved edges.
    for &r in &roots {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        seen.insert(r);
        let mut queue: VecDeque<FnId> = VecDeque::new();
        queue.push_back(r);
        while let Some(node) = queue.pop_front() {
            let (fi, fj) = node;
            for call in &models[fi].fns[fj].calls {
                let Some(next) = graph.resolve(fi, call) else {
                    continue;
                };
                if models[next.0].fns[next.1].is_test || !seen.insert(next) {
                    continue;
                }
                parent.insert(next, node);
                // Reconstruct root → … → next for the message.
                let mut chain = vec![next];
                let mut cur = next;
                while let Some(&p) = parent.get(&cur) {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                report(r, &chain, next, findings);
                queue.push_back(next);
            }
        }
    }
}

/// One emit site of a counter key.
struct KeySite {
    path: String,
    line: u32,
    krate: String,
}

/// D010: counter-key discipline against README's counter-key registry.
fn check_counter_keys(
    graph: &SymbolGraph,
    readme: Option<&str>,
    full: bool,
    findings: &mut Vec<Finding>,
) {
    let mut sites: BTreeMap<String, Vec<KeySite>> = BTreeMap::new();
    for m in graph.models {
        if !in_scope(&m.path) {
            continue;
        }
        for f in &m.fns {
            if f.is_test {
                continue;
            }
            for c in &f.counters {
                if c.non_literal {
                    findings.push(Finding {
                        rule: RuleId::D010,
                        path: m.path.clone(),
                        line: c.line,
                        message: "counter key is not a string literal — the registry \
                                  cross-check needs literal keys"
                            .to_owned(),
                        allowed: None,
                    });
                    continue;
                }
                for key in &c.keys {
                    sites.entry(key.clone()).or_default().push(KeySite {
                        path: m.path.clone(),
                        line: c.line,
                        krate: m.krate.clone(),
                    });
                }
            }
        }
    }

    let registry = readme.and_then(registry_rows);
    for (key, key_sites) in &sites {
        let first = &key_sites[0];
        let crates: BTreeSet<&str> = key_sites.iter().map(|s| s.krate.as_str()).collect();
        if crates.len() > 1 {
            let list: Vec<&str> = crates.into_iter().collect();
            findings.push(Finding {
                rule: RuleId::D010,
                path: first.path.clone(),
                line: first.line,
                message: format!(
                    "counter key `{key}` is emitted from {} crates ({}) — a key needs a \
                     single owning crate so merged reports stay unambiguous",
                    list.len(),
                    list.join(", ")
                ),
                allowed: None,
            });
        }
        match &registry {
            Some(rows) if rows.iter().any(|(k, _)| k == key) => {}
            Some(_) => findings.push(Finding {
                rule: RuleId::D010,
                path: first.path.clone(),
                line: first.line,
                message: format!(
                    "counter key `{key}` is not documented in README's counter-key registry"
                ),
                allowed: None,
            }),
            None => findings.push(Finding {
                rule: RuleId::D010,
                path: first.path.clone(),
                line: first.line,
                message: format!(
                    "counter key `{key}` cannot be cross-checked: README.md has no \
                     `Counter-key registry` section"
                ),
                allowed: None,
            }),
        }
    }
    // Dead registry rows are only decidable when the whole workspace was
    // scanned; a partial run would call every key dead.
    if full {
        if let Some(rows) = &registry {
            for (key, line) in rows {
                if !sites.contains_key(key) {
                    findings.push(Finding {
                        rule: RuleId::D010,
                        path: "README.md".to_owned(),
                        line: *line,
                        message: format!(
                            "documented counter key `{key}` has no live emit site — delete \
                             the registry row or restore the counter"
                        ),
                        allowed: None,
                    });
                }
            }
        }
    }
}

/// Rows of README's `Counter-key registry` table: (key, 1-based line).
/// `None` when the section heading is absent altogether.
fn registry_rows(readme: &str) -> Option<Vec<(String, u32)>> {
    let mut rows = Vec::new();
    let mut in_section = false;
    let mut found = false;
    for (i, line) in readme.lines().enumerate() {
        if line.starts_with('#') {
            in_section = line.to_ascii_lowercase().contains("counter-key registry");
            found |= in_section;
            continue;
        }
        if in_section && line.trim_start().starts_with('|') {
            // First backtick-quoted cell is the key; the header and
            // separator rows have none and fall through.
            if let Some(open) = line.find('`') {
                if let Some(len) = line[open + 1..].find('`') {
                    rows.push((line[open + 1..open + 1 + len].to_owned(), (i + 1) as u32));
                }
            }
        }
    }
    found.then_some(rows)
}

/// One directed lock-order edge: `from` held while `to` is acquired.
struct LockEdge {
    path: String,
    line: u32,
    fn_name: String,
    /// Callee display name when the inner acquisition came through a call.
    via: Option<String>,
}

/// D011: lock-order cycles and locks held across `par_map`.
fn check_lock_order(graph: &SymbolGraph, findings: &mut Vec<Finding>) {
    let models = graph.models;
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    let mut edge_order: Vec<(String, String)> = Vec::new();
    let mut add_edge = |from: &str, to: &str, e: LockEdge| {
        let k = (from.to_owned(), to.to_owned());
        if let std::collections::btree_map::Entry::Vacant(slot) = edges.entry(k.clone()) {
            edge_order.push(k);
            slot.insert(e);
        }
    };

    for (fi, m) in models.iter().enumerate() {
        if !in_scope(&m.path) {
            continue;
        }
        for f in &m.fns {
            if f.is_test {
                continue;
            }
            for &(a, b) in &f.lock_pairs {
                add_edge(
                    &f.locks[a].name,
                    &f.locks[b].name,
                    LockEdge {
                        path: m.path.clone(),
                        line: f.locks[b].line,
                        fn_name: f.display(),
                        via: None,
                    },
                );
            }
            for &(li, ci) in &f.calls_under_lock {
                let call = &f.calls[ci];
                if PAR_CALLS.contains(&call.name.as_str()) {
                    findings.push(Finding {
                        rule: RuleId::D011,
                        path: m.path.clone(),
                        line: call.line,
                        message: format!(
                            "lock `{}` is held across the `{}` boundary — a worker touching \
                             the same lock deadlocks, and the serialized section defeats \
                             the parallel sweep",
                            f.locks[li].name, call.name
                        ),
                        allowed: None,
                    });
                    continue;
                }
                // One level of propagation: locks the callee acquires are
                // acquired while ours is held.
                let Some((gi, gj)) = graph.resolve(fi, call) else {
                    continue;
                };
                let callee = &models[gi].fns[gj];
                if callee.is_test {
                    continue;
                }
                let mut seen_names: BTreeSet<&str> = BTreeSet::new();
                for lock in &callee.locks {
                    if seen_names.insert(lock.name.as_str()) {
                        add_edge(
                            &f.locks[li].name,
                            &lock.name,
                            LockEdge {
                                path: m.path.clone(),
                                line: call.line,
                                fn_name: f.display(),
                                via: Some(callee.display()),
                            },
                        );
                    }
                }
            }
        }
    }

    // Adjacency + transitive closure over the (tiny) lock graph.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        if from != to {
            adj.entry(from.as_str()).or_default().insert(to.as_str());
        }
    }
    let reaches = |from: &str, to: &str| -> Option<Vec<String>> {
        // BFS path from → to, for the cycle message.
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                let mut path = vec![n.to_owned()];
                let mut cur = n;
                while let Some(&p) = prev.get(cur) {
                    path.push(p.to_owned());
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &nxt in adj.get(n).into_iter().flatten() {
                if seen.insert(nxt) {
                    prev.insert(nxt, n);
                    queue.push_back(nxt);
                }
            }
        }
        None
    };

    for key in &edge_order {
        let (from, to) = key;
        let e = &edges[key];
        let via = e
            .via
            .as_ref()
            .map(|v| format!(" (via call to `{v}`)"))
            .unwrap_or_default();
        if from == to {
            findings.push(Finding {
                rule: RuleId::D011,
                path: e.path.clone(),
                line: e.line,
                message: format!(
                    "lock `{from}` is acquired in `{}` while already held{via} — a \
                     non-reentrant Mutex self-deadlocks here",
                    e.fn_name
                ),
                allowed: None,
            });
            continue;
        }
        if let Some(back) = reaches(to, from) {
            let mut cycle = vec![from.clone()];
            cycle.extend(back);
            findings.push(Finding {
                rule: RuleId::D011,
                path: e.path.clone(),
                line: e.line,
                message: format!(
                    "lock-order cycle: `{}` acquires `{to}` while holding `{from}`{via}, \
                     but the reverse order exists elsewhere — cycle: {}",
                    e.fn_name,
                    cycle.join(" → ")
                ),
                allowed: None,
            });
        }
    }
}

/// Deterministic text dump of the merged graph (`--graph-dump`): one block
/// per file, every fn with its resolved call edges, sinks, locks and
/// counter keys. Uploaded as a CI artifact for debugging rule behavior.
pub fn render_graph(models: &[FileModel]) -> String {
    let graph = SymbolGraph::build(models);
    let mut out = String::from("# dles-lint symbol graph\n");
    for (fi, m) in models.iter().enumerate() {
        if m.fns.is_empty() {
            continue;
        }
        out.push_str(&format!("file {}\n", m.path));
        for (fj, f) in m.fns.iter().enumerate() {
            let mut tags = String::new();
            if f.is_test {
                tags.push_str(" [test]");
            }
            if is_root(m, fj) {
                tags.push_str(" [root]");
            }
            out.push_str(&format!("  fn {} @{}{}\n", f.display(), f.line, tags));
            for c in &f.calls {
                let target = match graph.resolve(fi, c) {
                    Some((ti, tj)) => {
                        format!("{}::{}", models[ti].path, models[ti].fns[tj].display())
                    }
                    None => "<unresolved>".to_owned(),
                };
                let full = if c.path.is_empty() {
                    c.name.clone()
                } else {
                    format!("{}::{}", c.path.join("::"), c.name)
                };
                out.push_str(&format!("    call {full} @{} -> {target}\n", c.line));
            }
            for s in &f.sinks {
                out.push_str(&format!(
                    "    sink {} `{}` @{}\n",
                    kind_word(s.kind),
                    s.what,
                    s.line
                ));
            }
            for l in &f.locks {
                out.push_str(&format!("    lock {} @{}\n", l.name, l.line));
            }
            for c in &f.counters {
                if c.non_literal {
                    out.push_str(&format!("    counter <non-literal> @{}\n", c.line));
                } else {
                    out.push_str(&format!("    counter {} @{}\n", c.keys.join(","), c.line));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::model_of;

    fn analyze_src(files: &[(&str, &str)]) -> Vec<Finding> {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| model_of(p, s)).collect();
        analyze(&models, None, false, Vec::new())
    }

    #[test]
    fn d009_reports_chain_from_par_map_caller() {
        let findings = analyze_src(&[(
            "crates/core/src/sweep.rs",
            "fn run_sweep() { par_map(4, 2, |i| helper(i)); }\n\
             fn helper(i: usize) -> usize { inner(i) }\n\
             fn inner(i: usize) -> usize { maybe(i).unwrap() }\n",
        )]);
        let d9: Vec<&Finding> = findings.iter().filter(|f| f.rule == RuleId::D009).collect();
        assert_eq!(d9.len(), 1, "{findings:?}");
        assert_eq!(d9[0].line, 1); // reported at the root fn
        assert!(
            d9[0].message.contains("run_sweep → helper → inner"),
            "{}",
            d9[0].message
        );
        assert!(d9[0].message.contains("`unwrap`"), "{}", d9[0].message);
    }

    #[test]
    fn d009_direct_sink_in_root_is_claimed_locally() {
        let findings = analyze_src(&[(
            "crates/sim/src/par.rs",
            "pub fn par_map(n: usize) { slots.lock().unwrap(); }\n",
        )]);
        let d9: Vec<&Finding> = findings.iter().filter(|f| f.rule == RuleId::D009).collect();
        assert_eq!(d9.len(), 1);
        assert_eq!(d9[0].line, 1);
        assert!(
            d9[0].message.contains("chain: par_map"),
            "{}",
            d9[0].message
        );
    }

    #[test]
    fn d009_ignores_unreachable_and_test_sinks() {
        let findings = analyze_src(&[(
            "crates/core/src/calc.rs",
            "fn run() { par_map_slice(2, &x, |v| v); }\n\
             fn unreached() { y.unwrap(); }\n\
             #[cfg(test)]\nmod tests { fn t() { z.unwrap(); } }\n",
        )]);
        assert!(
            !findings.iter().any(|f| f.rule == RuleId::D009),
            "{findings:?}"
        );
    }

    #[test]
    fn d009_wallclock_one_call_away() {
        let findings = analyze_src(&[(
            "crates/core/src/pipeline.rs",
            "fn handle() { stamp(); }\nfn stamp() { let t = Instant::now(); }\n",
        )]);
        let d9: Vec<&Finding> = findings.iter().filter(|f| f.rule == RuleId::D009).collect();
        assert_eq!(d9.len(), 1, "{findings:?}");
        assert!(d9[0].message.contains("wall-clock source `Instant`"));
        // Direct unwraps in a D005 file stay D005's business, and the
        // direct Instant in `stamp` is D001's (per-file) — D009 adds only
        // the reachability finding at the root.
        assert_eq!(d9[0].line, 1);
    }

    #[test]
    fn d010_undocumented_and_non_literal_keys() {
        let models = vec![model_of(
            "crates/core/src/stats_emit.rs",
            "fn emit(c: &mut C, k: &str) { c.incr(\"frames\"); c.incr(k); }\n",
        )];
        let readme =
            "# Counter-key registry\n\n| Key | Meaning |\n|---|---|\n| `frames` | frames |\n";
        let findings = analyze(&models, Some(readme), true, Vec::new());
        let d10: Vec<&Finding> = findings.iter().filter(|f| f.rule == RuleId::D010).collect();
        assert_eq!(d10.len(), 1, "{findings:?}");
        assert!(d10[0].message.contains("not a string literal"));

        let readme_missing_key = "# Counter-key registry\n\n| `other` | x |\n";
        let findings = analyze(&models, Some(readme_missing_key), false, Vec::new());
        assert!(
            findings
                .iter()
                .any(|f| f.rule == RuleId::D010 && f.message.contains("`frames` is not documented")),
            "{findings:?}"
        );
    }

    #[test]
    fn d010_dead_registry_rows_only_in_full_mode() {
        let models = vec![model_of(
            "crates/core/src/stats_emit.rs",
            "fn emit(c: &mut C) { c.incr(\"frames\"); }\n",
        )];
        let readme = "# Counter-key registry\n| `frames` | ok |\n| `ghost` | dead |\n";
        let full = analyze(&models, Some(readme), true, Vec::new());
        assert!(
            full.iter()
                .any(|f| f.rule == RuleId::D010 && f.message.contains("`ghost` has no live emit")),
            "{full:?}"
        );
        let partial = analyze(&models, Some(readme), false, Vec::new());
        assert!(
            !partial.iter().any(|f| f.message.contains("ghost")),
            "{partial:?}"
        );
    }

    #[test]
    fn d010_multi_crate_ownership() {
        let findings = analyze_src(&[
            (
                "crates/core/src/a.rs",
                "fn e(c: &mut C) { c.incr(\"frames\"); }\n",
            ),
            (
                "crates/sim/src/b.rs",
                "fn e2(c: &mut C) { c.incr(\"frames\"); }\n",
            ),
        ]);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == RuleId::D010 && f.message.contains("2 crates (core, sim)")),
            "{findings:?}"
        );
    }

    #[test]
    fn d011_cycle_detected_and_consistent_order_clean() {
        let cyclic = analyze_src(&[(
            "crates/core/src/engine2.rs",
            "impl E { fn f(&self) { let a = self.cache.lock(); let b = self.stats.lock(); }\n\
             fn g(&self) { let b = self.stats.lock(); let a = self.cache.lock(); } }\n",
        )]);
        let d11: Vec<&Finding> = cyclic.iter().filter(|f| f.rule == RuleId::D011).collect();
        assert_eq!(d11.len(), 2, "{cyclic:?}");
        assert!(d11[0].message.contains("cycle"));

        let clean = analyze_src(&[(
            "crates/core/src/engine2.rs",
            "impl E { fn f(&self) { let a = self.cache.lock(); let b = self.stats.lock(); }\n\
             fn g(&self) { let a = self.cache.lock(); let b = self.stats.lock(); } }\n",
        )]);
        assert!(!clean.iter().any(|f| f.rule == RuleId::D011), "{clean:?}");
    }

    #[test]
    fn d011_lock_held_across_par_map() {
        let findings = analyze_src(&[(
            "crates/core/src/sweep2.rs",
            "impl E { fn run(&self) { let g = self.cache.lock(); par_map_slice(2, &x, |v| v); } }\n",
        )]);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == RuleId::D011 && f.message.contains("held across")),
            "{findings:?}"
        );
    }

    #[test]
    fn d011_one_level_call_propagation() {
        let findings = analyze_src(&[(
            "crates/core/src/engine2.rs",
            "impl E { fn f(&self) { let a = self.cache.lock(); self.emit(); }\n\
             fn emit(&self) { let b = self.stats.lock(); }\n\
             fn g(&self) { let b = self.stats.lock(); let a = self.cache.lock(); } }\n",
        )]);
        let d11: Vec<&Finding> = findings.iter().filter(|f| f.rule == RuleId::D011).collect();
        assert!(
            d11.iter()
                .any(|f| f.message.contains("via call to `E::emit`")),
            "{findings:?}"
        );
    }

    #[test]
    fn d011_self_deadlock_via_callee() {
        let findings = analyze_src(&[(
            "crates/core/src/engine2.rs",
            "impl E { fn f(&self) { let a = self.cache.lock(); self.peek(); }\n\
             fn peek(&self) { let c = self.cache.lock(); } }\n",
        )]);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == RuleId::D011 && f.message.contains("self-deadlocks")),
            "{findings:?}"
        );
    }

    #[test]
    fn graph_allows_suppress_at_root_and_go_stale() {
        let models = vec![model_of(
            "crates/core/src/sweep.rs",
            "fn run_sweep() { par_map(4, 2, |i| helper(i)); }\n\
             fn helper(i: usize) -> usize { maybe(i).unwrap() }\n",
        )];
        let allow = GraphAllow {
            rule: RuleId::D009,
            path: "crates/core/src/sweep.rs".to_owned(),
            line: 1,
            reason: "bounded retry".to_owned(),
        };
        let findings = analyze(&models, None, false, vec![allow]);
        let d9 = findings.iter().find(|f| f.rule == RuleId::D009).unwrap();
        assert_eq!(d9.allowed.as_deref(), Some("bounded retry"));

        let stale = GraphAllow {
            rule: RuleId::D011,
            path: "crates/core/src/sweep.rs".to_owned(),
            line: 1,
            reason: "nothing here".to_owned(),
        };
        let findings = analyze(&models, None, false, vec![stale]);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == RuleId::D000 && f.message.contains("allow(D011)")),
            "{findings:?}"
        );
    }

    #[test]
    fn graph_allow_on_the_line_above_the_root_also_matches() {
        // rustfmt rewraps long `fn` signature lines, so the stable home
        // for a root-frame allow is a standalone comment directly above.
        let models = vec![model_of(
            "crates/core/src/sweep.rs",
            "// lint: allow(D009) — bounded retry\n\
             fn run_sweep() { par_map(4, 2, |i| helper(i)); }\n\
             fn helper(i: usize) -> usize { maybe(i).unwrap() }\n",
        )];
        let allow = GraphAllow {
            rule: RuleId::D009,
            path: "crates/core/src/sweep.rs".to_owned(),
            line: 1,
            reason: "bounded retry".to_owned(),
        };
        let findings = analyze(&models, None, false, vec![allow]);
        let d9 = findings.iter().find(|f| f.rule == RuleId::D009).unwrap();
        assert_eq!(d9.line, 2, "finding still anchors on the fn line");
        assert_eq!(d9.allowed.as_deref(), Some("bounded retry"));
        assert!(!findings.iter().any(|f| f.rule == RuleId::D000));
    }

    #[test]
    fn resolution_is_conservative_on_ambiguity() {
        let models: Vec<FileModel> = vec![
            model_of(
                "crates/core/src/a.rs",
                "fn caller() { par_map(1, 2, 3); helper(); }\n",
            ),
            model_of("crates/core/src/b.rs", "fn helper() { x.unwrap(); }\n"),
            model_of("crates/core/src/c.rs", "fn helper() { y.unwrap(); }\n"),
        ];
        // Two same-crate `helper` candidates → ambiguous → no edge → no
        // D009 through the call.
        let findings = analyze(&models, None, false, Vec::new());
        assert!(
            !findings.iter().any(|f| f.rule == RuleId::D009),
            "{findings:?}"
        );
    }

    #[test]
    fn resolution_uses_path_segments_across_crates() {
        let models: Vec<FileModel> = vec![
            model_of(
                "crates/core/src/a.rs",
                "fn caller() { par_map(1, 2, 3); dles_sim::helper(); }\n",
            ),
            model_of("crates/sim/src/c.rs", "fn helper() { y.unwrap(); }\n"),
            model_of("crates/net/src/d.rs", "fn helper() { z.unwrap(); }\n"),
        ];
        let findings = analyze(&models, None, false, Vec::new());
        let d9: Vec<&Finding> = findings.iter().filter(|f| f.rule == RuleId::D009).collect();
        assert_eq!(d9.len(), 1, "{findings:?}");
        assert!(
            d9[0].message.contains("crates/sim/src/c.rs"),
            "{}",
            d9[0].message
        );
    }

    #[test]
    fn graph_dump_lists_fns_edges_and_sites() {
        let models = vec![model_of(
            "crates/core/src/sweep.rs",
            "impl E { fn run(&self) { let g = self.cache.lock(); par_map(1, 2, 3); \
             self.emit(); } fn emit(&self) { c.incr(\"frames\"); } }\n",
        )];
        let dump = render_graph(&models);
        assert!(dump.contains("file crates/core/src/sweep.rs"), "{dump}");
        assert!(dump.contains("fn E::run @1 [root]"), "{dump}");
        assert!(
            dump.contains("call emit @1 -> crates/core/src/sweep.rs::E::emit"),
            "{dump}"
        );
        assert!(dump.contains("lock cache @1"), "{dump}");
        assert!(dump.contains("counter frames @1"), "{dump}");
    }
}
