//! The numbered determinism rules and the per-file scanner.
//!
//! Every rule exists to protect one guarantee: **a seeded run produces
//! byte-identical traces, counters and reports on any machine, at any
//! `--threads` count**. See `LINTS.md` at the workspace root for the
//! rationale of each rule and the allow-comment syntax.
//!
//! Suppression: a finding on line `L` is allowed only by a line comment on
//! that same line of the form
//!
//! ```text
//! // lint: allow(D003) — membership-only set; iteration order never observed
//! ```
//!
//! The reason text after the dash is mandatory, and an allow that does not
//! suppress anything is itself reported (D000), so suppressions cannot rot.

use crate::lexer::{lex, Token, TokenKind};
use crate::suffixes::{suggested_type, unit_dimension, unit_suffix};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Allow-comment hygiene: malformed, reasonless, unknown or unused.
    D000,
    /// No wall-clock time sources outside `crates/criterion`.
    D001,
    /// No OS/entropy randomness or env-dependent seeds.
    D002,
    /// No hash-ordered containers (iteration order leaks into output).
    D003,
    /// No `partial_cmp` on floats — use `total_cmp`.
    D004,
    /// No `unwrap`/`expect` in event-dispatch hot paths.
    D005,
    /// Trace kinds must be string literals (the schema extractor needs
    /// them); repro CLI flags must be documented. The kind-level doc check
    /// this rule used to carry is subsumed by D013's field-level one.
    D006,
    /// No bare `f64` under a unit-suffixed name in public signatures or
    /// struct fields of the unit-bearing crates — use `dles-units` types.
    D007,
    /// No arithmetic mixing identifiers with conflicting unit suffixes
    /// without a same-line conversion call.
    D008,
    /// Interprocedural: no wall-clock/entropy/`unwrap` transitively
    /// reachable from a hot-path root (event-dispatch files, `par_map`
    /// callers). Reported at the root with the full call chain.
    D009,
    /// Counter-key discipline: literal, single-owning-crate keys, all
    /// documented in README's counter-key registry, no dead registry rows.
    D010,
    /// Lock-order discipline: no cycles in the simultaneously-held lock
    /// graph, no lock held across a `par_map` boundary.
    D011,
    /// Trace-field discipline: field keys must be string literals; emit
    /// sites of one kind must not require incomparable field sets; a
    /// field's value class must agree across sites.
    D012,
    /// Field-level doc drift: every extracted trace kind/field must appear
    /// in README's trace-schema table, no dead documented rows.
    D013,
    /// Golden conformance (`--check-goldens`): every committed
    /// `tests/goldens/*.jsonl` record must parse and match the extracted
    /// schema (known kind, known fields, compatible value classes).
    D014,
    /// Allocation discipline in hot paths: no alloc/copy sinks (`format!`,
    /// `vec![]`, `Vec::new`, `clone`, `collect`, …) inside a loop region
    /// of any function transitively reachable from a D009 hot-path root.
    /// Reported at the sink with the call chain and loop nesting depth.
    D015,
    /// Per-event rebuild of loop-invariant values: a `let` whose RHS is an
    /// alloc sink and whose used identifiers are all defined outside the
    /// enclosing loop construct — hoist it above the loop.
    D016,
}

impl RuleId {
    pub const ALL: [RuleId; 17] = [
        RuleId::D000,
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::D005,
        RuleId::D006,
        RuleId::D007,
        RuleId::D008,
        RuleId::D009,
        RuleId::D010,
        RuleId::D011,
        RuleId::D012,
        RuleId::D013,
        RuleId::D014,
        RuleId::D015,
        RuleId::D016,
    ];

    /// The interprocedural (pass-2) rules: their findings are produced by
    /// [`crate::graph`] after every file's item model has been merged, so
    /// their allow comments are matched there rather than per-file. D015
    /// and D016 are pass-4 (CFG/dataflow) rules but resolve reachability
    /// over the same merged graph, so their allows ride the same channel.
    pub const GRAPH_RULES: [RuleId; 5] = [
        RuleId::D009,
        RuleId::D010,
        RuleId::D011,
        RuleId::D015,
        RuleId::D016,
    ];

    /// The schema (pass-3) rules: produced by [`crate::schema`] after the
    /// workspace trace schema is merged, so their allows are exported like
    /// the graph rules' and matched there. D014 is not listed: golden
    /// conformance findings land in `.jsonl` files, where no allow comment
    /// can live — a stale `allow(D014)` in source is D000 per-file.
    pub const SCHEMA_RULES: [RuleId; 2] = [RuleId::D012, RuleId::D013];

    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D000 => "D000",
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::D005 => "D005",
            RuleId::D006 => "D006",
            RuleId::D007 => "D007",
            RuleId::D008 => "D008",
            RuleId::D009 => "D009",
            RuleId::D010 => "D010",
            RuleId::D011 => "D011",
            RuleId::D012 => "D012",
            RuleId::D013 => "D013",
            RuleId::D014 => "D014",
            RuleId::D015 => "D015",
            RuleId::D016 => "D016",
        }
    }

    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.as_str() == s)
    }

    /// One-line description, shown in `--json` output and LINTS.md.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D000 => "allow-comment hygiene (reason required, no stale allows)",
            RuleId::D001 => "no wall-clock (Instant/SystemTime) outside crates/criterion",
            RuleId::D002 => "no OS/entropy randomness or env-dependent seeds; use SimRng",
            RuleId::D003 => "no HashMap/HashSet (iteration order leaks into output)",
            RuleId::D004 => "no float partial_cmp; use total_cmp",
            RuleId::D005 => "no unwrap/expect in event-dispatch hot paths",
            RuleId::D006 => "trace kinds must be literal and repro CLI flags documented",
            RuleId::D007 => "no bare f64 under a unit-suffixed name; use dles-units quantities",
            RuleId::D008 => "no arithmetic mixing conflicting unit suffixes without a conversion",
            RuleId::D009 => "no wall-clock/entropy/unwrap transitively reachable from hot paths",
            RuleId::D010 => "counter keys: literal, one owning crate, documented, no dead rows",
            RuleId::D011 => "lock order: no acquisition cycles, no lock held across par_map",
            RuleId::D012 => "trace fields: literal keys, comparable field sets, one value class",
            RuleId::D013 => "every trace kind/field documented in README's trace-schema table",
            RuleId::D014 => "committed goldens conform to the extracted trace schema",
            RuleId::D015 => "no alloc/copy sinks inside loops on hot paths; reuse buffers",
            RuleId::D016 => "no per-iteration rebuild of loop-invariant values; hoist the let",
        }
    }
}

/// One lint finding. `allowed` carries the justification when the line has
/// a matching `// lint: allow(…)` comment; such findings never fail
/// `--deny` but stay visible in `--json` output.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: RuleId,
    pub path: String,
    pub line: u32,
    pub message: String,
    pub allowed: Option<String>,
}

impl Finding {
    pub fn is_violation(&self) -> bool {
        self.allowed.is_none()
    }
}

/// A documented-name candidate collected for the D006 cross-check: a CLI
/// flag string matched in `repro.rs`. (Trace kinds used to flow through
/// here too; they now live in the richer [`crate::schema`] extraction.)
#[derive(Debug, Clone)]
pub struct DocCandidate {
    pub name: String,
    pub path: String,
    pub line: u32,
    /// Reason from an on-line `lint: allow(D006)`, if any.
    pub allowed: Option<String>,
}

/// An allow comment naming one of the interprocedural rules (D009–D011).
/// Those findings only exist after pass 2 merges the whole workspace, so
/// the directive is exported here and matched in [`crate::graph`]; one
/// that suppresses nothing becomes a D000 there, exactly like a stale
/// per-file allow.
#[derive(Debug, Clone)]
pub struct GraphAllow {
    pub rule: RuleId,
    pub path: String,
    pub line: u32,
    pub reason: String,
}

/// Everything a file scan produces.
#[derive(Debug, Default)]
pub struct FileScan {
    pub findings: Vec<Finding>,
    pub cli_flags: Vec<DocCandidate>,
    /// The pass-1 item model [`crate::graph`] merges in pass 2.
    pub model: crate::model::FileModel,
    /// The pass-1 trace emit sites [`crate::schema`] merges in pass 3.
    pub schema: crate::schema::FileSchema,
    /// Allow directives for the pass-2 graph rules, matched after the merge.
    pub graph_allows: Vec<GraphAllow>,
    /// Allow directives for the pass-3 schema rules (D012/D013), ditto.
    pub schema_allows: Vec<GraphAllow>,
}

/// Event-dispatch hot-path files covered by D005 (matched by file name so
/// the rule is testable on fixtures). D009 uses the same list for its
/// hot-path roots and to avoid double-reporting unwraps D005 already owns.
pub(crate) const D005_FILES: [&str; 3] = ["pipeline.rs", "recovery.rs", "faults.rs"];

/// Identifiers banned by D002 wherever they appear.
pub(crate) const D002_IDENTS: [&str; 6] = [
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

/// Hash-ordered container type names banned by D003.
const D003_IDENTS: [&str; 6] = [
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "AHashMap",
    "AHashSet",
];

struct AllowDirective {
    rule: RuleId,
    reason: String,
    used: bool,
}

/// Scan one file's source. `rel_path` is workspace-relative and decides
/// which rules apply (criterion is exempt from D001; D005 covers only the
/// event-dispatch files; flag collection happens in `repro.rs`).
pub fn scan_file(rel_path: &str, src: &str) -> FileScan {
    let tokens = lex(src);
    let sig: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let in_test = mark_test_mods(&tokens, &sig);
    let (mut allows, mut findings) = parse_allow_directives(rel_path, &tokens);
    let model = crate::model::build_model(rel_path, &tokens, &sig, &in_test);
    let (schema, schema_findings) = crate::schema::extract(rel_path, &tokens, &sig, &in_test);
    findings.extend(schema_findings);

    let file_name = rel_path.rsplit('/').next().unwrap_or(rel_path);
    let d001_applies = !rel_path.starts_with("crates/criterion");
    let d005_applies = D005_FILES.contains(&file_name);
    let collect_flags = file_name == "repro.rs";

    let mut scan = FileScan::default();

    let prev_punct = |si: usize, c: char| si > 0 && tokens[sig[si - 1]].is_punct(c);
    let is_method_call = |si: usize| {
        prev_punct(si, '.') || (si > 1 && prev_punct(si, ':') && tokens[sig[si - 2]].is_punct(':'))
    };

    for si in 0..sig.len() {
        let ti = sig[si];
        let tok = &tokens[ti];
        let test_code = in_test[ti];
        match tok.kind {
            TokenKind::Ident => match tok.text.as_str() {
                "Instant" | "SystemTime" if d001_applies && !test_code => {
                    findings.push(Finding {
                        rule: RuleId::D001,
                        path: rel_path.to_owned(),
                        line: tok.line,
                        message: format!(
                            "wall-clock source `{}` — simulation time must come from the \
                             engine clock (SimTime), never the host",
                            tok.text
                        ),
                        allowed: None,
                    });
                }
                name if D002_IDENTS.contains(&name) && !test_code => {
                    findings.push(Finding {
                        rule: RuleId::D002,
                        path: rel_path.to_owned(),
                        line: tok.line,
                        message: format!(
                            "entropy source `{name}` — all randomness must flow through a \
                             seeded SimRng so runs replay byte-identically"
                        ),
                        allowed: None,
                    });
                }
                "var" | "var_os"
                    if !test_code
                        && si > 2
                        && prev_punct(si, ':')
                        && tokens[sig[si - 2]].is_punct(':')
                        && tokens[sig[si - 3]].is_ident("env") =>
                {
                    findings.push(Finding {
                        rule: RuleId::D002,
                        path: rel_path.to_owned(),
                        line: tok.line,
                        message: format!(
                            "environment read `env::{}` — configuration must arrive through \
                             explicit CLI flags or seeds, not ambient state",
                            tok.text
                        ),
                        allowed: None,
                    });
                }
                name if D003_IDENTS.contains(&name) => {
                    findings.push(Finding {
                        rule: RuleId::D003,
                        path: rel_path.to_owned(),
                        line: tok.line,
                        message: format!(
                            "hash-ordered container `{name}` — iteration order varies per \
                             process; use BTreeMap/BTreeSet or emit through a sorted view"
                        ),
                        allowed: None,
                    });
                }
                "partial_cmp" if is_method_call(si) => {
                    findings.push(Finding {
                        rule: RuleId::D004,
                        path: rel_path.to_owned(),
                        line: tok.line,
                        message: "float comparison via `partial_cmp` — NaN turns this into a \
                                  panic or a platform-dependent order; use `total_cmp`"
                            .to_owned(),
                        allowed: None,
                    });
                }
                "unwrap" | "expect" if d005_applies && !test_code && prev_punct(si, '.') => {
                    findings.push(Finding {
                        rule: RuleId::D005,
                        path: rel_path.to_owned(),
                        line: tok.line,
                        message: format!(
                            "`{}` in an event-dispatch hot path — a panic here aborts the \
                             whole simulation; handle the None/Err arm or justify the \
                             invariant with an allow comment",
                            tok.text
                        ),
                        allowed: None,
                    });
                }
                "TraceRecord" if !test_code => {
                    if let Some((_, line, bad)) = trace_kind_argument(&tokens, &sig, si) {
                        if bad {
                            findings.push(Finding {
                                rule: RuleId::D006,
                                path: rel_path.to_owned(),
                                line,
                                message: "TraceRecord::new kind is not a string literal — \
                                          the schema cross-check needs literal kinds"
                                    .to_owned(),
                                allowed: None,
                            });
                        }
                    }
                }
                _ => {}
            },
            TokenKind::Str if collect_flags && is_cli_flag(&tok.text) => {
                scan.cli_flags.push(DocCandidate {
                    name: tok.text.clone(),
                    path: rel_path.to_owned(),
                    line: tok.line,
                    allowed: None,
                });
            }
            _ => {}
        }
    }

    if unit_rules_apply(rel_path) {
        scan_unit_types(rel_path, &tokens, &sig, &in_test, &mut findings);
        scan_unit_mixing(rel_path, &tokens, &sig, &mut findings);
    }

    // Apply allow directives: same line, same rule.
    for f in &mut findings {
        if let Some(list) = allows.get_mut(&f.line) {
            for a in list.iter_mut() {
                if a.rule == f.rule {
                    a.used = true;
                    f.allowed = Some(a.reason.clone());
                }
            }
        }
    }
    for cand in scan.cli_flags.iter_mut() {
        if let Some(list) = allows.get_mut(&cand.line) {
            for a in list.iter_mut() {
                if a.rule == RuleId::D006 {
                    a.used = true;
                    cand.allowed = Some(a.reason.clone());
                }
            }
        }
    }
    // Stale allows are findings themselves — except directives naming a
    // pass-2 rule, which cannot match anything until the whole-workspace
    // graph analysis runs; those are exported for matching there.
    let mut lines: Vec<u32> = allows.keys().copied().collect();
    lines.sort_unstable();
    for line in lines {
        for a in &allows[&line] {
            if a.used {
                continue;
            }
            if RuleId::GRAPH_RULES.contains(&a.rule) || RuleId::SCHEMA_RULES.contains(&a.rule) {
                let export = GraphAllow {
                    rule: a.rule,
                    path: rel_path.to_owned(),
                    line,
                    reason: a.reason.clone(),
                };
                if RuleId::GRAPH_RULES.contains(&a.rule) {
                    scan.graph_allows.push(export);
                } else {
                    scan.schema_allows.push(export);
                }
                continue;
            }
            findings.push(Finding {
                rule: RuleId::D000,
                path: rel_path.to_owned(),
                line,
                message: format!(
                    "stale `lint: allow({})` — it suppresses nothing on this line",
                    a.rule.as_str()
                ),
                allowed: None,
            });
        }
    }

    scan.findings = findings;
    scan.model = model;
    scan.schema = schema;
    scan
}

/// D007/D008 cover only the unit-bearing crates (power, battery, core);
/// matched by substring so the rule is testable on fixture trees.
fn unit_rules_apply(rel_path: &str) -> bool {
    ["crates/power/", "crates/battery/", "crates/core/"]
        .iter()
        .any(|p| rel_path.contains(p))
}

/// Does the type ascription starting at sig index `k` resolve to a bare
/// `f64` once references and the transparent wrappers are peeled off?
fn type_is_bare_f64(tokens: &[Token], sig: &[usize], mut k: usize) -> bool {
    for _ in 0..8 {
        let Some(&ti) = sig.get(k) else { return false };
        let t = &tokens[ti];
        if t.is_punct('&')
            || t.is_punct('[')
            || t.is_punct('<')
            || t.is_ident("mut")
            || t.is_ident("Vec")
            || t.is_ident("Option")
            || t.kind == TokenKind::Lifetime
        {
            k += 1;
            continue;
        }
        return t.is_ident("f64");
    }
    false
}

/// D007: in the unit-bearing crates, a struct field or a public fn
/// signature must not carry a bare `f64` under a unit-suffixed name
/// (`*_s`, `*_mah`, `*_mhz`, …) — the typed quantity makes the unit part
/// of the signature. Constructor-boundary functions (returning `Self`)
/// are exempt: they are where raw measurements get wrapped.
fn scan_unit_types(
    rel_path: &str,
    tokens: &[Token],
    sig: &[usize],
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    let ident_at = |k: usize, w: &str| sig.get(k).is_some_and(|&ti| tokens[ti].is_ident(w));
    let punct_at = |k: usize, c: char| sig.get(k).is_some_and(|&ti| tokens[ti].is_punct(c));
    let field_finding = |tok: &Token, suf: &str, what: &str| Finding {
        rule: RuleId::D007,
        path: rel_path.to_owned(),
        line: tok.line,
        message: format!(
            "{what} `{}` is a bare f64 under a unit-suffixed name — \
             use dles_units::{} so the unit is part of the type",
            tok.text,
            suggested_type(suf)
        ),
        allowed: None,
    };

    let mut si = 0;
    while si < sig.len() {
        if in_test[sig[si]] {
            si += 1;
            continue;
        }
        if ident_at(si, "struct") {
            // Find the opening brace; tuple (`(`) and unit (`;`) structs
            // have no named fields to check.
            let mut j = si + 1;
            let mut open = None;
            while j < sig.len() && j < si + 12 {
                if punct_at(j, '{') {
                    open = Some(j);
                    break;
                }
                if punct_at(j, ';') || punct_at(j, '(') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = open {
                let mut depth = 0usize;
                let mut k = open;
                while k < sig.len() {
                    if punct_at(k, '{') {
                        depth += 1;
                    } else if punct_at(k, '}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if depth == 1 {
                        let tok = &tokens[sig[k]];
                        if tok.kind == TokenKind::Ident
                            && punct_at(k + 1, ':')
                            && !punct_at(k + 2, ':')
                        {
                            if let Some(suf) = unit_suffix(&tok.text) {
                                if type_is_bare_f64(tokens, sig, k + 2) {
                                    findings.push(field_finding(tok, suf, "struct field"));
                                }
                            }
                        }
                    }
                    k += 1;
                }
                si = k.max(si + 1);
                continue;
            }
        }
        if ident_at(si, "fn") {
            // Visibility: look back a few tokens for `pub`, stopping at
            // statement/block boundaries.
            let mut is_pub = false;
            let mut p = si;
            for _ in 0..6 {
                if p == 0 {
                    break;
                }
                p -= 1;
                let t = &tokens[sig[p]];
                if t.is_ident("pub") {
                    is_pub = true;
                    break;
                }
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    break;
                }
            }
            let fn_name = sig
                .get(si + 1)
                .map(|&ti| &tokens[ti])
                .filter(|t| t.kind == TokenKind::Ident);
            // Skip generics to the parameter list.
            let mut j = si + 2;
            while j < sig.len() && !punct_at(j, '(') && !punct_at(j, '{') && !punct_at(j, ';') {
                j += 1;
            }
            if !punct_at(j, '(') {
                si += 1;
                continue;
            }
            let mut depth = 0usize;
            let mut k = j;
            let mut param_hits: Vec<(Token, &str)> = Vec::new();
            while k < sig.len() {
                if punct_at(k, '(') {
                    depth += 1;
                } else if punct_at(k, ')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1 {
                    let tok = &tokens[sig[k]];
                    let starts_param = punct_at(k.wrapping_sub(1), '(')
                        || punct_at(k.wrapping_sub(1), ',')
                        || ident_at(k.wrapping_sub(1), "mut");
                    if tok.kind == TokenKind::Ident
                        && starts_param
                        && punct_at(k + 1, ':')
                        && !punct_at(k + 2, ':')
                    {
                        if let Some(suf) = unit_suffix(&tok.text) {
                            if type_is_bare_f64(tokens, sig, k + 2) {
                                param_hits.push((tok.clone(), suf));
                            }
                        }
                    }
                }
                k += 1;
            }
            let has_arrow = punct_at(k + 1, '-') && punct_at(k + 2, '>');
            let returns_self = has_arrow && ident_at(k + 3, "Self");
            let returns_f64 = has_arrow && ident_at(k + 3, "f64");
            if is_pub && !returns_self {
                for (tok, suf) in param_hits {
                    findings.push(field_finding(&tok, suf, "fn parameter"));
                }
                if returns_f64 {
                    if let Some(name) = fn_name {
                        if let Some(suf) = unit_suffix(&name.text) {
                            findings.push(field_finding(name, suf, "fn return type of"));
                        }
                    }
                }
            }
            si = k.max(si + 1);
            continue;
        }
        si += 1;
    }
}

/// D008: `a_s + b_h`, `x_ma - y_mah`, `t_s * u_h` — arithmetic between
/// identifiers whose unit suffixes conflict. `+` and `-` require the same
/// suffix; `*` and `/` flag only same-dimension scale mixing (s × h)
/// since cross-dimension products build compound units legitimately. A
/// conversion call (`to_*`, `from_*`, `into_*`, `as_*`) on the same line
/// suppresses, as does an allow comment.
fn scan_unit_mixing(rel_path: &str, tokens: &[Token], sig: &[usize], findings: &mut Vec<Finding>) {
    let conv_lines: std::collections::BTreeSet<u32> = tokens
        .iter()
        .filter(|t| {
            t.kind == TokenKind::Ident
                && (t.text.starts_with("to_")
                    || t.text.starts_with("from_")
                    || t.text.starts_with("into_")
                    || t.text.starts_with("as_"))
        })
        .map(|t| t.line)
        .collect();
    for i in 1..sig.len().saturating_sub(1) {
        let op = &tokens[sig[i]];
        if op.kind != TokenKind::Punct || op.text.len() != 1 {
            continue;
        }
        let c = op.text.as_bytes()[0] as char;
        if !matches!(c, '+' | '-' | '*' | '/') {
            continue;
        }
        let a = &tokens[sig[i - 1]];
        let b = &tokens[sig[i + 1]];
        if a.kind != TokenKind::Ident || b.kind != TokenKind::Ident {
            continue;
        }
        let (Some(sa), Some(sb)) = (unit_suffix(&a.text), unit_suffix(&b.text)) else {
            continue;
        };
        if sa == sb {
            continue;
        }
        let conflict = match c {
            '+' | '-' => true,
            _ => unit_dimension(sa) == unit_dimension(sb),
        };
        if !conflict || conv_lines.contains(&op.line) {
            continue;
        }
        findings.push(Finding {
            rule: RuleId::D008,
            path: rel_path.to_owned(),
            line: op.line,
            message: format!(
                "`{}` {} `{}` mixes unit suffixes `_{}` and `_{}` — convert \
                 explicitly or justify with an allow comment",
                a.text, c, b.text, sa, sb
            ),
            allowed: None,
        });
    }
}

/// Mark every token that sits inside a `#[cfg(test)] mod … { … }` block.
pub(crate) fn mark_test_mods(tokens: &[Token], sig: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let ident_at = |si: usize, w: &str| sig.get(si).is_some_and(|&ti| tokens[ti].is_ident(w));
    let punct_at = |si: usize, c: char| sig.get(si).is_some_and(|&ti| tokens[ti].is_punct(c));

    let mut si = 0;
    while si < sig.len() {
        let is_cfg_test = punct_at(si, '#')
            && punct_at(si + 1, '[')
            && ident_at(si + 2, "cfg")
            && punct_at(si + 3, '(')
            && ident_at(si + 4, "test")
            && punct_at(si + 5, ')')
            && punct_at(si + 6, ']');
        if !is_cfg_test {
            si += 1;
            continue;
        }
        // Skip over any further attributes between #[cfg(test)] and `mod`.
        let mut j = si + 7;
        while punct_at(j, '#') && punct_at(j + 1, '[') {
            let mut depth = 1usize;
            j += 2;
            while j < sig.len() && depth > 0 {
                if punct_at(j, '[') {
                    depth += 1;
                } else if punct_at(j, ']') {
                    depth -= 1;
                }
                j += 1;
            }
        }
        if !(ident_at(j, "mod") && punct_at(j + 2, '{')) {
            si += 1;
            continue;
        }
        // Brace-match from the module's opening brace.
        let open = j + 2;
        let mut depth = 0usize;
        let mut k = open;
        while k < sig.len() {
            if punct_at(k, '{') {
                depth += 1;
            } else if punct_at(k, '}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let start_tok = sig[si];
        let end_tok = if k < sig.len() {
            sig[k]
        } else {
            tokens.len() - 1
        };
        for slot in in_test.iter_mut().take(end_tok + 1).skip(start_tok) {
            *slot = true;
        }
        si = k.max(si + 1);
    }
    in_test
}

type AllowMap = std::collections::BTreeMap<u32, Vec<AllowDirective>>;

/// Extract `// lint: allow(Dxxx[, Dyyy]) — reason` directives, reporting
/// malformed ones (missing reason, unknown rule) as D000 findings.
fn parse_allow_directives(rel_path: &str, tokens: &[Token]) -> (AllowMap, Vec<Finding>) {
    let mut map = AllowMap::new();
    let mut findings = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let text = tok.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let mut bad = |msg: String| {
            findings.push(Finding {
                rule: RuleId::D000,
                path: rel_path.to_owned(),
                line: tok.line,
                message: msg,
                allowed: None,
            });
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            bad(format!("unrecognized lint directive `//{}`", tok.text));
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            bad("malformed allow: expected `allow(Dxxx)`".to_owned());
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("malformed allow: missing `)`".to_owned());
            continue;
        };
        let (ids, tail) = rest.split_at(close);
        let tail = tail[1..].trim_start();
        // The justification is mandatory: a dash separator plus prose.
        let reason = tail
            .strip_prefix('—')
            .or_else(|| tail.strip_prefix("--"))
            .or_else(|| tail.strip_prefix('-'))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            bad(
                "allow without a reason: write `lint: allow(Dxxx) — <why this is safe>`".to_owned(),
            );
            continue;
        }
        for id in ids.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match RuleId::parse(id) {
                Some(rule) => map.entry(tok.line).or_default().push(AllowDirective {
                    rule,
                    reason: reason.to_owned(),
                    used: false,
                }),
                None => bad(format!("allow names unknown rule `{id}`")),
            }
        }
    }
    (map, findings)
}

/// At `TraceRecord` (sig index `si`), if the call shape is
/// `TraceRecord::new(…)`, return `(kind, line, malformed)` where `kind` is
/// the last top-level string-literal argument.
pub(crate) fn trace_kind_argument(
    tokens: &[Token],
    sig: &[usize],
    si: usize,
) -> Option<(String, u32, bool)> {
    let punct_at = |k: usize, c: char| sig.get(k).is_some_and(|&ti| tokens[ti].is_punct(c));
    let ident_at = |k: usize, w: &str| sig.get(k).is_some_and(|&ti| tokens[ti].is_ident(w));
    if !(punct_at(si + 1, ':') && punct_at(si + 2, ':') && ident_at(si + 3, "new")) {
        return None;
    }
    if !punct_at(si + 4, '(') {
        return None;
    }
    let line = tokens[sig[si]].line;
    let mut depth = 1usize;
    let mut k = si + 5;
    let mut last_str: Option<String> = None;
    while k < sig.len() && depth > 0 {
        let tok = &tokens[sig[k]];
        if tok.is_punct('(') {
            depth += 1;
        } else if tok.is_punct(')') {
            depth -= 1;
        } else if depth == 1 && tok.kind == TokenKind::Str {
            last_str = Some(tok.text.clone());
        }
        k += 1;
    }
    match last_str {
        Some(kind) => Some((kind, line, false)),
        None => Some((String::new(), line, true)),
    }
}

/// Does this string literal look like a CLI flag (`--trials`, `--fig10`)?
fn is_cli_flag(s: &str) -> bool {
    s.strip_prefix("--").is_some_and(|tail| {
        !tail.is_empty()
            && tail
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    })
}

/// D006: every parsed CLI flag must appear in the documentation text
/// (README), delimited by non-word characters so `--fig1` is not
/// satisfied by `--fig10`. (Trace kinds are covered field-by-field by
/// D013's schema cross-check.)
pub fn crosscheck_docs(doc_name: &str, doc_text: &str, flags: &[DocCandidate]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for cand in flags {
        if !contains_word(doc_text, &cand.name) {
            findings.push(Finding {
                rule: RuleId::D006,
                path: cand.path.clone(),
                line: cand.line,
                message: format!("CLI flag `{}` is not documented in {doc_name}", cand.name),
                allowed: cand.allowed.clone(),
            });
        }
    }
    findings
}

/// Substring match with word boundaries: the characters adjacent to the
/// match must not be identifier-ish (or `-`, so flags match exactly).
fn contains_word(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    let boundary = |c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-');
    let mut from = 0;
    while let Some(at) = haystack[from..].find(needle) {
        let start = from + at;
        let end = start + needle.len();
        let ok_before = start == 0 || haystack[..start].chars().next_back().is_some_and(boundary);
        let ok_after =
            end == haystack.len() || haystack[end..].chars().next().is_some_and(boundary);
        if ok_before && ok_after {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(rel: &str, src: &str) -> Vec<(RuleId, u32)> {
        scan_file(rel, src)
            .findings
            .iter()
            .filter(|f| f.is_violation())
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn d001_flags_wall_clock_outside_criterion() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let v = violations("crates/sim/src/engine.rs", src);
        assert_eq!(v, vec![(RuleId::D001, 1), (RuleId::D001, 2)]);
        assert!(violations("crates/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d002_flags_entropy_and_env() {
        let src = "fn f() { let r = thread_rng(); let s = std::env::var(\"SEED\"); }\n";
        let v = violations("crates/core/src/x.rs", src);
        assert_eq!(v, vec![(RuleId::D002, 1), (RuleId::D002, 1)]);
        // env::args is fine — only var/var_os read ambient state.
        assert!(violations("crates/core/src/x.rs", "fn f() { std::env::args(); }").is_empty());
    }

    #[test]
    fn d003_flags_hash_containers_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n}\n";
        assert_eq!(
            violations("crates/core/src/x.rs", src),
            vec![(RuleId::D003, 3)]
        );
    }

    #[test]
    fn d004_flags_method_calls_not_trait_impls() {
        let def = "impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> \
                   { Some(self.cmp(o)) } }";
        assert!(violations("crates/core/src/x.rs", def).is_empty());
        let call = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(
            violations("crates/core/src/x.rs", call),
            vec![(RuleId::D004, 1)]
        );
        let ufcs = "fn f(a: f64, b: f64) { let _ = f64::partial_cmp(&a, &b); }";
        assert_eq!(
            violations("crates/core/src/x.rs", ufcs),
            vec![(RuleId::D004, 1)]
        );
    }

    #[test]
    fn d005_applies_only_to_hot_path_files_outside_tests() {
        let src = "fn handle() { x.unwrap(); y.expect(\"inv\"); }\n\
                   #[cfg(test)]\nmod tests { fn t() { z.unwrap(); } }\n";
        let v = violations("crates/core/src/pipeline.rs", src);
        assert_eq!(v, vec![(RuleId::D005, 1), (RuleId::D005, 1)]);
        assert!(violations("crates/core/src/report.rs", src).is_empty());
        // unwrap_or / unwrap_or_else are fine.
        let soft = "fn handle() { x.unwrap_or(0); y.unwrap_or_else(|| 1); }";
        assert!(violations("crates/core/src/recovery.rs", soft).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_and_counts_as_used() {
        let src = "use std::collections::HashSet; \
                   // lint: allow(D003) — membership only, never iterated\n";
        let scan = scan_file("crates/sim/src/event.rs", src);
        assert!(scan.findings.iter().all(|f| !f.is_violation()));
        let allowed: Vec<_> = scan
            .findings
            .iter()
            .filter(|f| f.allowed.is_some())
            .collect();
        assert_eq!(allowed.len(), 1);
        assert!(allowed[0]
            .allowed
            .as_deref()
            .unwrap()
            .contains("membership"));
    }

    #[test]
    fn allow_without_reason_is_a_d000_violation() {
        let src = "use std::collections::HashSet; // lint: allow(D003)\n";
        let v = violations("crates/sim/src/event.rs", src);
        // The allow is rejected, so both D000 and the raw D003 surface.
        assert!(v.contains(&(RuleId::D000, 1)));
        assert!(v.contains(&(RuleId::D003, 1)));
    }

    #[test]
    fn stale_allow_is_a_d000_violation() {
        let src = "fn clean() {} // lint: allow(D001) — nothing here needs it\n";
        assert_eq!(
            violations("crates/core/src/x.rs", src),
            vec![(RuleId::D000, 1)]
        );
    }

    #[test]
    fn allow_on_wrong_line_does_not_suppress() {
        let src = "// lint: allow(D003) — wrong line\nuse std::collections::HashMap;\n";
        let v = violations("crates/core/src/x.rs", src);
        assert!(v.contains(&(RuleId::D003, 2)));
        assert!(v.contains(&(RuleId::D000, 1)));
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "fn f() {} // lint: allow(D999) — no such rule\n";
        assert_eq!(
            violations("crates/core/src/x.rs", src),
            vec![(RuleId::D000, 1)]
        );
    }

    #[test]
    fn banned_names_in_strings_and_comments_do_not_flag() {
        let src = "// HashMap and Instant::now in prose are fine\n\
                   fn f() -> &'static str { \"use std::collections::HashMap;\" }\n\
                   /* thread_rng() in a block comment */\n";
        assert!(violations("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn trace_kind_collection_takes_last_top_level_string() {
        let src = r#"fn f(ctx: &C) {
            ctx.emit(TraceRecord::new(ctx.now(), format!("{}->{}", a, b), "transaction"));
            ctx.emit(TraceRecord::new(ctx.now(), "host", "frame_complete").with("x", 1));
        }"#;
        let scan = scan_file("crates/net/src/transaction.rs", src);
        let kinds: Vec<&str> = scan.schema.sites.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(kinds, vec!["transaction", "frame_complete"]);
    }

    #[test]
    fn non_literal_trace_kind_is_a_d006_violation() {
        let src = "fn f(ctx: &C, kind: &'static str) { \
                   ctx.emit(TraceRecord::new(ctx.now(), \"host\", kind)); }";
        // The component string is a literal but it is not the *last* one…
        // actually it is, so this collects "host". Use no strings at all:
        let src2 = "fn f(ctx: &C, k: &'static str) { \
                    ctx.emit(TraceRecord::new(ctx.now(), comp, k)); }";
        let scan = scan_file("crates/core/src/x.rs", src2);
        assert!(scan
            .findings
            .iter()
            .any(|f| f.rule == RuleId::D006 && f.is_violation()));
        let _ = src;
    }

    #[test]
    fn test_mod_trace_kinds_are_not_collected() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(ctx: &C) { \
                   ctx.emit(TraceRecord::new(t, \"x\", \"tick\")); }\n}\n";
        let scan = scan_file("crates/sim/src/engine.rs", src);
        assert!(scan.schema.sites.is_empty());
    }

    #[test]
    fn cli_flags_collected_only_from_repro() {
        let src = "fn main() { match a { \"--trials\" => {} \
                   \"--no-recovery\" => {} \"--exp <l>\" => {} _ => {} } }";
        let scan = scan_file("crates/bench/src/bin/repro.rs", src);
        let flags: Vec<&str> = scan.cli_flags.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(flags, vec!["--trials", "--no-recovery"]);
        assert!(scan_file("crates/core/src/x.rs", src).cli_flags.is_empty());
    }

    #[test]
    fn crosscheck_reports_undocumented_names_with_boundaries() {
        let cand = |name: &str| DocCandidate {
            name: name.to_owned(),
            path: "crates/bench/src/bin/repro.rs".to_owned(),
            line: 1,
            allowed: None,
        };
        let doc = "Flags: `--fig10` and `--trials N`.";
        let flags = [cand("--fig10"), cand("--fig1"), cand("--trials")];
        let fs = crosscheck_docs("README.md", doc, &flags);
        let missing: Vec<&str> = fs
            .iter()
            .map(|f| f.message.split('`').nth(1).unwrap())
            .collect();
        // --fig1 must NOT be satisfied by the --fig10 substring.
        assert_eq!(missing, vec!["--fig1"]);
    }

    #[test]
    fn word_boundary_matching() {
        assert!(contains_word("kind `rotation` here", "rotation"));
        assert!(!contains_word("rotations only", "rotation"));
        assert!(contains_word("use --seed N", "--seed"));
        assert!(!contains_word("--seeded", "--seed"));
    }

    #[test]
    fn d007_flags_struct_fields_and_pub_fn_params() {
        let src = "pub struct B { pub drain_ma: f64, label: String }\n\
                   pub fn set(core_v: f64) {}\n";
        let v = violations("crates/core/src/node.rs", src);
        assert_eq!(v, vec![(RuleId::D007, 1), (RuleId::D007, 2)]);
    }

    #[test]
    fn d007_exempts_constructors_and_private_fns() {
        let ctor = "impl B { pub fn new(cap_mah: f64, t_s: f64) -> Self { B } }";
        assert!(violations("crates/battery/src/lib.rs", ctor).is_empty());
        let private = "fn sigma_at(t_s: f64) -> f64 { t_s }";
        assert!(violations("crates/battery/src/rakhmatov.rs", private).is_empty());
    }

    #[test]
    fn d007_flags_suffixed_pub_fn_returning_bare_f64() {
        let src = "pub fn required_mhz(slack: f64) -> f64 { slack }";
        assert_eq!(
            violations("crates/core/src/workload.rs", src),
            vec![(RuleId::D007, 1)]
        );
        // An unsuffixed name returning f64 is fine (it is a ratio).
        let ratio = "pub fn utilization(slack: f64) -> f64 { slack }";
        assert!(violations("crates/core/src/workload.rs", ratio).is_empty());
    }

    #[test]
    fn d007_is_gated_to_unit_bearing_crates() {
        let src = "pub struct B { pub drain_ma: f64 }";
        assert!(violations("crates/sim/src/engine.rs", src).is_empty());
        assert!(violations("crates/lint/src/rules.rs", src).is_empty());
        assert_eq!(violations("crates/power/src/dvs.rs", src).len(), 1);
    }

    #[test]
    fn d007_does_not_fire_on_typed_or_unsuffixed_members() {
        let src = "pub struct B { pub cap_mah: MilliAmpHours, pub count: f64, \
                   pub items_mah: Vec<MilliAmpHours> }";
        assert!(violations("crates/core/src/node.rs", src).is_empty());
    }

    #[test]
    fn d008_flags_additive_mixing_and_same_dimension_scaling() {
        let src = "fn f(dur_s: f64, dur_h: f64, q_mah: f64, i_ma: f64) -> f64 {\n\
                   let a = dur_s + dur_h;\n\
                   let b = q_mah - i_ma;\n\
                   let c = dur_s * dur_h;\n\
                   a + b + c }";
        let v = violations("crates/core/src/x.rs", src);
        assert_eq!(
            v,
            vec![(RuleId::D008, 2), (RuleId::D008, 3), (RuleId::D008, 4)]
        );
    }

    #[test]
    fn d008_permits_compound_products_and_conversion_lines() {
        // mA × h is a legitimate compound unit (charge), and a to_*/as_*
        // call on the line marks an explicit conversion.
        let src = "fn f(i_ma: f64, dur_h: f64, dur_s: f64) -> f64 {\n\
                   let q = i_ma * dur_h;\n\
                   let t = dur_s + to_secs(dur_h);\n\
                   q + t }";
        assert!(violations("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d008_respects_allow_comments() {
        let src = "fn f(dur_s: f64, dur_h: f64) -> f64 {\n\
                   dur_s + dur_h // lint: allow(D008) — legacy scale, audited\n\
                   }";
        assert!(violations("crates/core/src/x.rs", src).is_empty());
    }
}
