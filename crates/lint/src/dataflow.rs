//! Pass 4b of the analysis: def-use over the [`crate::cfg`] regions, and
//! the two hot-path allocation rules that run on top of the D009 call
//! graph.
//!
//! * **D015 — allocation discipline in hot paths**: an alloc/copy *sink*
//!   (see [`sink_at`]) inside a loop region of any function transitively
//!   reachable from a D009 hot-path root. Each finding carries the call
//!   chain from the claiming root and the loop nesting depth, and anchors
//!   on the sink's own line so a same-line or above-line
//!   `// lint: allow(D015) — <reason>` can suppress it.
//! * **D016 — per-event rebuild of loop-invariant values**: a simple
//!   `let name = <expr containing a sink>;` inside a loop whose used
//!   identifiers are all defined *outside* the enclosing loop construct —
//!   the binding rebuilds the same value every iteration and should be
//!   hoisted above the loop.
//!
//! The def-use pass is deliberately modest: it tracks `let` patterns,
//! `for` patterns, `match`-arm patterns and par-closure parameters by
//! token position, with no type information. Two asymmetric consequences:
//! a name the pass cannot prove loop-defined counts as *defined inside*
//! only if a def site is found, so `self`-rooted expressions are assumed
//! loop-invariant (allow with a reason when the loop mutates the field);
//! and identifiers captured inline in format strings (`format!("{x}")`)
//! are extracted from the string literal so they still count as uses.

use crate::cfg::Cfg;
use crate::graph::SymbolGraph;
use crate::lexer::{Token, TokenKind};
use crate::rules::{Finding, RuleId};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One alloc/copy sink inside a loop region.
#[derive(Debug)]
pub struct LoopSink {
    /// Canonical sink name (`format!`, `Vec::new`, `clone`, …).
    pub what: String,
    pub line: u32,
    /// Number of enclosing loop regions.
    pub depth: u32,
}

/// One `let` that rebuilds a loop-invariant value every iteration.
#[derive(Debug)]
pub struct HoistCandidate {
    /// The bound name.
    pub name: String,
    /// The sink in its RHS.
    pub what: String,
    pub line: u32,
    /// Line of the enclosing loop construct — the hoist target.
    pub loop_line: u32,
}

/// Per-function dataflow facts, attached to [`crate::model::FnItem`].
#[derive(Debug, Default)]
pub struct FnFlow {
    pub sinks: Vec<LoopSink>,
    pub hoists: Vec<HoistCandidate>,
}

/// The alloc/copy sink at sig index `k`, or `None`. Sinks are the calls
/// and macros that allocate or copy per invocation: `format!`, `vec![]`,
/// `Vec::new`, `Box::new`, `String::from`, `.to_string()`, `.to_owned()`,
/// `.clone()`, `.collect()`.
pub fn sink_at(tokens: &[Token], sig: &[usize], k: usize) -> Option<String> {
    let t = &tokens[sig[k]];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let punct_at = |p: usize, c: char| sig.get(p).is_some_and(|&ti| tokens[ti].is_punct(c));
    let name = t.text.as_str();
    match name {
        "format" | "vec" if punct_at(k + 1, '!') => Some(format!("{name}!")),
        "new" | "from"
            if punct_at(k + 1, '(') && k >= 3 && punct_at(k - 1, ':') && punct_at(k - 2, ':') =>
        {
            let owner = &tokens[sig[k - 3]];
            match (owner.text.as_str(), name) {
                ("Vec", "new") | ("Box", "new") | ("String", "from") => {
                    Some(format!("{}::{name}", owner.text))
                }
                _ => None,
            }
        }
        "to_string" | "to_owned" | "clone" | "collect"
            if k >= 1
                && punct_at(k - 1, '.')
                // Plain call or turbofish (`collect::<Vec<_>>()`).
                && (punct_at(k + 1, '(') || (punct_at(k + 1, ':') && punct_at(k + 2, ':'))) =>
        {
            Some(name.to_owned())
        }
        _ => None,
    }
}

/// Words that appear in `let`/`for` patterns without binding anything.
const PATTERN_KEYWORDS: [&str; 4] = ["mut", "ref", "box", "in"];

/// Words that appear in expressions without being variable uses.
const USE_KEYWORDS: [&str; 12] = [
    "self", "Self", "true", "false", "as", "if", "else", "match", "move", "return", "await", "in",
];

/// All binding sites in the body, as `(sig index, name)` in stream order:
/// `let` patterns, `for` patterns, and the pattern spans the CFG recorded
/// for match arms and par-closure parameters.
fn collect_defs(
    tokens: &[Token],
    sig: &[usize],
    open: usize,
    close: usize,
    cfg: &Cfg,
) -> Vec<(usize, String)> {
    let punct_at = |p: usize, c: char| sig.get(p).is_some_and(|&ti| tokens[ti].is_punct(c));
    let mut defs: Vec<(usize, String)> = Vec::new();
    let push_pattern = |defs: &mut Vec<(usize, String)>, lo: usize, hi: usize| {
        // Idents in `[lo, hi]` that actually bind: skip pattern keywords,
        // type/variant names (uppercase initial), path segments (adjacent
        // to `::`) and struct-pattern field names (followed by `:` that is
        // not a path `::`).
        for p in lo..=hi.min(sig.len().saturating_sub(1)) {
            let t = &tokens[sig[p]];
            if t.kind != TokenKind::Ident
                || PATTERN_KEYWORDS.contains(&t.text.as_str())
                || t.text.starts_with(|c: char| c.is_ascii_uppercase())
                || t.text.starts_with('_')
            {
                continue;
            }
            if (punct_at(p + 1, ':') && punct_at(p + 2, ':'))
                || (p >= 2 && punct_at(p - 1, ':') && punct_at(p - 2, ':'))
            {
                continue; // path segment
            }
            if punct_at(p + 1, ':') {
                continue; // `Foo { field: binding }` field name
            }
            defs.push((p, t.text.clone()));
        }
    };

    let mut k = open;
    while k <= close {
        let t = &tokens[sig[k]];
        if t.is_ident("let") {
            // Pattern runs to the `=`, a top-level type `:`, or the `;`.
            let mut depth = crate::cfg::Depth::default();
            let mut p = k + 1;
            let start = p;
            while p <= close {
                let t = &tokens[sig[p]];
                if depth.zero() && (t.is_punct('=') || t.is_punct(';') || t.is_punct(':')) {
                    break;
                }
                depth.update(t);
                p += 1;
            }
            if p > start {
                push_pattern(&mut defs, start, p - 1);
            }
            k = p;
            continue;
        }
        if t.is_ident("for") {
            // Pattern runs to the `in` keyword.
            let mut depth = crate::cfg::Depth::default();
            let mut p = k + 1;
            let start = p;
            while p <= close {
                let t = &tokens[sig[p]];
                if depth.zero() && t.is_ident("in") {
                    break;
                }
                depth.update(t);
                p += 1;
            }
            if p > start {
                push_pattern(&mut defs, start, p - 1);
            }
            k = p;
            continue;
        }
        k += 1;
    }
    for r in &cfg.regions {
        if let Some((lo, hi)) = r.pat {
            push_pattern(&mut defs, lo, hi);
        }
    }
    defs.sort();
    defs
}

/// Identifiers captured inline in a format-string literal (`"{x}"`,
/// `"{x:>8}"`), which the token stream otherwise hides. `{{` escapes are
/// skipped; positional/spec-only captures (`{}`, `{:04}`) yield nothing.
fn inline_captures(lit: &str, out: &mut Vec<String>) {
    let bytes = lit.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&b'{') {
            i += 2; // escaped `{{`
            continue;
        }
        let mut j = i + 1;
        while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
            j += 1;
        }
        let name = &lit[i + 1..j];
        if !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && name.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_')
        {
            out.push(name.to_owned());
        }
        i = j + 1;
    }
}

/// Build the per-function dataflow facts for the body `(open, close)`.
pub fn analyze_body(tokens: &[Token], sig: &[usize], open: usize, close: usize) -> FnFlow {
    let cfg = Cfg::build(tokens, sig, open, close);
    let mut flow = FnFlow::default();

    // D015 raw material: every sink inside a loop region.
    for k in (open + 1)..close {
        if let Some(what) = sink_at(tokens, sig, k) {
            let depth = cfg.loop_depth_at(k);
            if depth > 0 {
                flow.sinks.push(LoopSink {
                    what,
                    line: tokens[sig[k]].line,
                    depth,
                });
            }
        }
    }
    if flow.sinks.is_empty() {
        return flow; // no hoist candidates without a sink either
    }

    // D016: simple `let name = <sink expr>;` bindings whose RHS uses only
    // names defined outside the enclosing loop construct.
    let defs = collect_defs(tokens, sig, open, close, &cfg);
    let punct_at = |p: usize, c: char| sig.get(p).is_some_and(|&ti| tokens[ti].is_punct(c));
    for k in (open + 1)..close {
        if !tokens[sig[k]].is_ident("let") {
            continue;
        }
        let Some(lp) = cfg.innermost_loop_at(k) else {
            continue;
        };
        // Only simple bindings `let [mut] name [: T] = …;` — destructuring
        // patterns consume their RHS piecewise and rarely hoist cleanly.
        let mut p = k + 1;
        if sig.get(p).is_some_and(|&ti| tokens[ti].is_ident("mut")) {
            p += 1;
        }
        let Some(&name_ti) = sig.get(p) else { continue };
        let name_tok = &tokens[name_ti];
        if name_tok.kind != TokenKind::Ident
            || name_tok.text.starts_with(|c: char| c.is_ascii_uppercase())
        {
            continue;
        }
        if !(punct_at(p + 1, '=') || punct_at(p + 1, ':')) {
            continue;
        }
        // Find the `=` (skipping a type annotation) and the closing `;`.
        let mut depth = crate::cfg::Depth::default();
        let mut eq = p + 1;
        while eq <= lp.end && !(depth.zero() && tokens[sig[eq]].is_punct('=')) {
            depth.update(&tokens[sig[eq]]);
            eq += 1;
        }
        if eq > lp.end {
            continue;
        }
        let rhs_start = eq + 1;
        let mut depth = crate::cfg::Depth::default();
        let mut semi = rhs_start;
        while semi <= lp.end && !(depth.zero() && tokens[sig[semi]].is_punct(';')) {
            depth.update(&tokens[sig[semi]]);
            semi += 1;
        }
        if semi > lp.end {
            continue; // statement leaks out of the loop region: malformed
        }
        // The RHS must contain a sink at all.
        let Some(what) = (rhs_start..semi).find_map(|q| sink_at(tokens, sig, q)) else {
            continue;
        };
        // Collect the RHS's identifier uses, including format captures.
        let mut uses: Vec<String> = Vec::new();
        for q in rhs_start..semi {
            let t = &tokens[sig[q]];
            if t.kind == TokenKind::Str {
                inline_captures(&t.text, &mut uses);
                continue;
            }
            if t.kind != TokenKind::Ident
                || USE_KEYWORDS.contains(&t.text.as_str())
                || t.text.starts_with(|c: char| c.is_ascii_uppercase())
                || t.text.starts_with('_')
            {
                continue;
            }
            // Not a use: macro names, called functions, path segments,
            // method/field names after `.`.
            if punct_at(q + 1, '!') || punct_at(q + 1, '(') {
                continue;
            }
            if (punct_at(q + 1, ':') && punct_at(q + 2, ':'))
                || (q >= 2 && punct_at(q - 1, ':') && punct_at(q - 2, ':'))
            {
                continue;
            }
            if q >= 1 && punct_at(q - 1, '.') {
                continue;
            }
            uses.push(t.text.clone());
        }
        // Invariant ⇔ no use has a def inside the loop construct before
        // the RHS (`[lp.kw, rhs_start)` — loop-header bindings included).
        let loop_defined = |name: &str| {
            defs.iter()
                .any(|(d, n)| n == name && *d >= lp.kw && *d < rhs_start)
        };
        if uses.iter().any(|u| loop_defined(u)) {
            continue;
        }
        flow.hoists.push(HoistCandidate {
            name: name_tok.text.clone(),
            what,
            line: tokens[sig[k]].line,
            loop_line: lp.line,
        });
    }
    flow
}

/// D015/D016: walk the D009 call graph from the hot-path roots and report
/// every claimed function's loop sinks and hoist candidates. Findings
/// anchor on the offending line in the function's own file (unlike D009,
/// which anchors on the root), so allows sit next to the code they excuse.
pub(crate) fn check_hot_paths(graph: &SymbolGraph, findings: &mut Vec<Finding>) {
    let models = graph.models;
    let mut roots: Vec<(usize, usize)> = Vec::new();
    for (fi, m) in models.iter().enumerate() {
        for fj in 0..m.fns.len() {
            if crate::graph::is_root(m, fj) {
                roots.push((fi, fj));
            }
        }
    }
    // Each function is claimed once, by the first root (in file/fn order)
    // that reaches it, with the chain root → … → fn for the message.
    let mut claimed: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
    let mut order: Vec<(usize, usize)> = Vec::new();
    for &r in &roots {
        if let Entry::Vacant(e) = claimed.entry(r) {
            e.insert(vec![r]);
            order.push(r);
        }
        let mut parent: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        seen.insert(r);
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
        queue.push_back(r);
        while let Some(node) = queue.pop_front() {
            let (fi, fj) = node;
            for call in &models[fi].fns[fj].calls {
                let Some(next) = graph.resolve(fi, call) else {
                    continue;
                };
                if models[next.0].fns[next.1].is_test || !seen.insert(next) {
                    continue;
                }
                parent.insert(next, node);
                if let Entry::Vacant(e) = claimed.entry(next) {
                    let mut chain = vec![next];
                    let mut cur = next;
                    while let Some(&p) = parent.get(&cur) {
                        chain.push(p);
                        cur = p;
                    }
                    chain.reverse();
                    e.insert(chain);
                    order.push(next);
                }
                queue.push_back(next);
            }
        }
    }

    for id in order {
        let (fi, fj) = id;
        let m = &models[fi];
        if !crate::graph::in_scope(&m.path) {
            continue;
        }
        let f = &m.fns[fj];
        let chain_txt: Vec<String> = claimed[&id]
            .iter()
            .map(|&(ci, cj)| models[ci].fns[cj].display())
            .collect();
        let chain_txt = chain_txt.join(" → ");
        for s in &f.flow.sinks {
            findings.push(Finding {
                rule: RuleId::D015,
                path: m.path.clone(),
                line: s.line,
                message: format!(
                    "allocation sink `{}` inside a loop (depth {}) on a hot path — \
                     chain: {chain_txt}; hoist it out of the loop or reuse a buffer",
                    s.what, s.depth
                ),
                allowed: None,
            });
        }
        for h in &f.flow.hoists {
            findings.push(Finding {
                rule: RuleId::D016,
                path: m.path.clone(),
                line: h.line,
                message: format!(
                    "`let {}` rebuilds loop-invariant `{}` every iteration — hoist it \
                     above the loop at line {} (chain: {chain_txt})",
                    h.name, h.what, h.loop_line
                ),
                allowed: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{match_delim, model_of, sig_indices};

    /// FnFlow of the first fn in `src`.
    fn flow_of(src: &str) -> FnFlow {
        let tokens = crate::lexer::lex(src);
        let sig = sig_indices(&tokens);
        let open = sig
            .iter()
            .position(|&ti| tokens[ti].is_punct('{'))
            .expect("fn body");
        let close = match_delim(&tokens, &sig, open, '{', '}');
        analyze_body(&tokens, &sig, open, close)
    }

    #[test]
    fn sinks_outside_loops_are_ignored() {
        let f = flow_of("fn f() { let s = format!(\"{}\", 1); s.clone(); }");
        assert!(f.sinks.is_empty(), "{f:?}");
    }

    #[test]
    fn nested_loop_sink_carries_depth() {
        let f = flow_of(
            "fn f() { for i in 0..2 { for j in 0..3 { let s = format!(\"{}-{}\", i, j); } } }",
        );
        assert_eq!(f.sinks.len(), 1, "{f:?}");
        assert_eq!(f.sinks[0].what, "format!");
        assert_eq!(f.sinks[0].depth, 2);
    }

    #[test]
    fn all_sink_shapes_are_recognized() {
        let f = flow_of(
            "fn f(xs: &[u32]) { loop { let a = Vec::new(); let b = vec![1]; \
             let c = String::from(\"x\"); let d = 3.to_string(); let e = s.to_owned(); \
             let g = s.clone(); let h = Box::new(1); \
             let i: Vec<u32> = xs.iter().copied().collect(); } }",
        );
        let whats: Vec<&str> = f.sinks.iter().map(|s| s.what.as_str()).collect();
        for w in [
            "Vec::new",
            "vec!",
            "String::from",
            "to_string",
            "to_owned",
            "clone",
            "Box::new",
            "collect",
        ] {
            assert!(whats.contains(&w), "missing {w} in {whats:?}");
        }
    }

    #[test]
    fn write_into_buffer_is_not_a_sink() {
        let f = flow_of(
            "fn f(buf: &mut String) { for i in 0..2 { write!(buf, \"{}\", i); buf.clear(); } }",
        );
        assert!(f.sinks.is_empty(), "{f:?}");
    }

    #[test]
    fn hoist_flags_loop_invariant_let() {
        let f = flow_of(
            "fn f(base: u32) { for j in 0..4 { let tag = format!(\"run-{}\", base); use_it(&tag); } }",
        );
        assert_eq!(f.hoists.len(), 1, "{f:?}");
        assert_eq!(f.hoists[0].name, "tag");
        assert_eq!(f.hoists[0].what, "format!");
    }

    #[test]
    fn hoist_skips_let_using_the_loop_variable() {
        let f = flow_of("fn f() { for j in 0..4 { let tag = format!(\"{}\", j); } }");
        assert!(f.hoists.is_empty(), "{f:?}");
        assert_eq!(f.sinks.len(), 1); // still a D015 sink
    }

    #[test]
    fn hoist_sees_inline_format_captures() {
        // `{j}` hides the loop variable inside the string literal.
        let f = flow_of("fn f() { for j in 0..4 { let tag = format!(\"run-{j}\"); } }");
        assert!(f.hoists.is_empty(), "{f:?}");
    }

    #[test]
    fn hoist_respects_while_let_header_bindings() {
        let f = flow_of(
            "fn f(q: &mut Q) { while let Some(ev) = q.pop() { let s = format!(\"{}\", ev); } }",
        );
        assert!(f.hoists.is_empty(), "{f:?}");
    }

    #[test]
    fn shadowing_def_after_the_use_does_not_count() {
        // The `x` used in the RHS is the outer one; the shadowing `let x`
        // later in the loop must not suppress the hoist.
        let f = flow_of(
            "fn f(x: u32) { for j in 0..4 { let s = format!(\"{}\", x); let x = j + 1; \
             use_it(x); } }",
        );
        assert_eq!(f.hoists.len(), 1, "{f:?}");
        assert_eq!(f.hoists[0].name, "s");
    }

    #[test]
    fn shadowing_def_before_the_use_suppresses_the_hoist() {
        let f = flow_of(
            "fn f(x: u32) { for j in 0..4 { let x = j + 1; let s = format!(\"{}\", x); } }",
        );
        assert!(f.hoists.iter().all(|h| h.name != "s"), "{f:?}");
    }

    #[test]
    fn match_arm_binding_suppresses_the_hoist() {
        let f = flow_of(
            "fn f(k: K) { for j in 0..4 { match k { K::A(n) => { let s = format!(\"{}\", n); } \
             _ => {} } } }",
        );
        assert!(f.hoists.is_empty(), "{f:?}");
    }

    #[test]
    fn par_closure_param_suppresses_but_captured_var_hoists() {
        let src = "fn f(base: u32) { par_map(4, 0, |i| { let a = format!(\"{}\", i); \
                   let b = format!(\"{}\", base); 0 }); }";
        let f = flow_of(src);
        let names: Vec<&str> = f.hoists.iter().map(|h| h.name.as_str()).collect();
        assert!(!names.contains(&"a"), "{f:?}");
        assert!(names.contains(&"b"), "{f:?}");
        // Both formats are loop sinks (the closure body is per-job).
        assert_eq!(f.sinks.len(), 2);
    }

    #[test]
    fn vacuous_rhs_with_no_uses_is_flagged() {
        // `Vec::new()` uses nothing, so it is trivially invariant; the fix
        // is a buffer reused across iterations (clear, don't rebuild).
        let f = flow_of("fn f() { loop { let v = Vec::new(); fill(v); } }");
        assert_eq!(f.hoists.len(), 1, "{f:?}");
        assert_eq!(f.hoists[0].what, "Vec::new");
    }

    #[test]
    fn check_hot_paths_reports_chain_and_depth() {
        let models = vec![model_of(
            "crates/core/src/sweep.rs",
            "fn drive() { par_map(4, 2, |i| helper(i)); }\n\
             fn helper(i: usize) -> usize { for j in 0..i { let s = format!(\"{}\", j); } i }\n",
        )];
        let graph = SymbolGraph::build(&models);
        let mut findings = Vec::new();
        check_hot_paths(&graph, &mut findings);
        let d15: Vec<&Finding> = findings.iter().filter(|f| f.rule == RuleId::D015).collect();
        assert_eq!(d15.len(), 1, "{findings:?}");
        assert_eq!(d15[0].line, 2, "anchors on the sink line");
        assert!(d15[0].message.contains("depth 1"), "{}", d15[0].message);
        assert!(
            d15[0].message.contains("chain: drive → helper"),
            "{}",
            d15[0].message
        );
    }

    #[test]
    fn check_hot_paths_skips_unreachable_fns() {
        let models = vec![model_of(
            "crates/core/src/calc.rs",
            "fn run() { par_map_slice(2, &x, |v| v); }\n\
             fn unreached() { for j in 0..4 { let s = format!(\"{}\", j); } }\n",
        )];
        let graph = SymbolGraph::build(&models);
        let mut findings = Vec::new();
        check_hot_paths(&graph, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn check_hot_paths_emits_d016_with_hoist_line() {
        let models = vec![model_of(
            "crates/core/src/sweep.rs",
            "fn drive(base: u32) { par_map(4, 2, |i| shout(base)); }\n\
             fn shout(base: u32) {\n\
             for j in 0..4 {\n\
             let tag = format!(\"run-{}\", base);\n\
             }\n\
             }\n",
        )];
        let graph = SymbolGraph::build(&models);
        let mut findings = Vec::new();
        check_hot_paths(&graph, &mut findings);
        let d16: Vec<&Finding> = findings.iter().filter(|f| f.rule == RuleId::D016).collect();
        assert_eq!(d16.len(), 1, "{findings:?}");
        assert_eq!(d16[0].line, 4);
        assert!(
            d16[0].message.contains("hoist it above the loop at line 3"),
            "{}",
            d16[0].message
        );
        assert!(
            d16[0].message.contains("`let tag`") || d16[0].message.contains("let tag"),
            "{}",
            d16[0].message
        );
    }
}
