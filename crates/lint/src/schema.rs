//! Pass 3: trace-schema extraction and conformance (D012/D013/D014).
//!
//! The trace stream is the repository's observability contract: every
//! figure and EXPERIMENTS.md table is rebuilt from the JSONL records, so
//! the set of `TraceRecord` kinds *and their `.with(key, value)` fields*
//! must stay knowable without running the simulator. This module folds
//! the lexer stream into a workspace **trace schema**: for every
//! `TraceRecord::new(.., "<kind>")` emit site, the ordered field keys
//! chained onto it with a coarse value class per field (int / float /
//! str / bool / any), merged across emit sites per kind.
//!
//! Extraction understands three emit shapes:
//!
//! 1. a **direct chain** — `TraceRecord::new(..).with("a", x).with("b", y)`
//!    — whose fields are *required* for the kind;
//! 2. a **bound record** — `let mut rec = TraceRecord::new(..)…;` followed
//!    by `rec.with(..)` / `rec = rec.with(..)` (including per-match-arm
//!    appends) — whose follow-up fields are *optional* (conditional
//!    chains merge as optional fields, not conflicts);
//! 3. a **constructor helper** — a fn wrapping exactly one direct chain
//!    (`Transaction::trace_record`, `LoadSegment::trace_record`,
//!    `fault_record`) — caller-side `.with` chains hanging off calls to
//!    it contribute optional fields to the helper's kind. An ambiguous
//!    helper name resolves through the receiver path (`Transaction::ack(..)
//!    .trace_record(..)` names the impl type); unresolved chains are
//!    dropped rather than guessed.
//!
//! On top of the schema sit three rules. **D012**: field keys must be
//! string literals, two emit sites of one kind must not require
//! *incomparable* field sets (neither a subset of the other — a subset
//! chain like `state_transition`'s three sites is fine), and a field's
//! value class must agree across sites. **D013**: every extracted
//! kind/field must appear in README.md's trace-schema table, and on full
//! scans every documented row must still have an emit site. **D014**
//! (`--check-goldens`): every committed `tests/goldens/*.jsonl` record
//! must parse and conform — known kind, known fields, compatible value
//! classes, required fields present. The merged schema is also rendered
//! to `trace_schema.json` (`--schema-dump --json`), which CI diffs
//! against a fresh dump so schema changes ship with an explicit lockfile
//! update, Cargo.lock-style.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use crate::lexer::{Token, TokenKind};
use crate::model::{self};
use crate::rules::{Finding, GraphAllow, RuleId};
use crate::suffixes::unit_suffix;

/// Coarse value class of a trace field, inferred statically from the
/// `.with(key, value)` argument (literal, cast, well-known method call,
/// parameter type or unit suffix). `Any` is the honest "statically
/// unknowable" bottom: it merges with and accepts everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueClass {
    Int,
    Float,
    Str,
    Bool,
    Any,
}

impl ValueClass {
    pub fn as_str(self) -> &'static str {
        match self {
            ValueClass::Int => "int",
            ValueClass::Float => "float",
            ValueClass::Str => "str",
            ValueClass::Bool => "bool",
            ValueClass::Any => "any",
        }
    }

    /// Merge classes across emit sites: `Any` defers to the other side
    /// and an int emitted where floats are emitted elsewhere widens to
    /// float (JSONL renders whole floats as integers anyway). Everything
    /// else is a genuine disagreement — `None`, reported as D012.
    fn merge(a: ValueClass, b: ValueClass) -> Option<ValueClass> {
        use ValueClass::*;
        match (a, b) {
            (x, y) if x == y => Some(x),
            (Any, x) | (x, Any) => Some(x),
            (Int, Float) | (Float, Int) => Some(Float),
            _ => None,
        }
    }
}

/// One `.with("<name>", value)` occurrence.
#[derive(Debug, Clone)]
pub struct FieldUse {
    pub name: String,
    pub class: ValueClass,
    pub line: u32,
}

/// One direct `TraceRecord::new(.., "<kind>")` chain. `required` holds
/// the fields of the unconditional builder chain; `optional` the fields
/// appended later through the `let`-bound record.
#[derive(Debug)]
pub struct EmitSite {
    pub kind: String,
    pub path: String,
    pub line: u32,
    pub required: Vec<FieldUse>,
    pub optional: Vec<FieldUse>,
    /// Enclosing fn, for the constructor-helper registry.
    pub fn_name: String,
    pub impl_type: Option<String>,
}

/// A `.with` chain hanging off a call that is *not* `TraceRecord::new` —
/// attributed to a kind in pass 2 if the callee is a constructor helper.
#[derive(Debug)]
pub struct CallerChain {
    pub callee: String,
    /// Identifiers walked off the receiver expression (`Transaction::ack(..)
    /// .trace_record(..)` → `["ack", "Transaction"]`), used to pick among
    /// same-named constructor helpers.
    pub recv_hint: Vec<String>,
    pub path: String,
    pub line: u32,
    pub fields: Vec<FieldUse>,
}

/// Everything schema extraction produces for one file.
#[derive(Debug, Default)]
pub struct FileSchema {
    pub sites: Vec<EmitSite>,
    pub chains: Vec<CallerChain>,
}

/// One field of the merged per-kind schema.
#[derive(Debug, Clone)]
pub struct SchemaField {
    pub name: String,
    pub class: ValueClass,
    /// Present in the unconditional chain of *every* emit site.
    pub required: bool,
    /// First use, for D013 findings.
    pub path: String,
    pub line: u32,
}

/// The merged schema of one kind: fields in first-seen order plus every
/// direct emit site (constructor-caller chains are not sites).
#[derive(Debug, Default)]
pub struct KindSchema {
    pub fields: Vec<SchemaField>,
    pub emit_sites: Vec<(String, u32)>,
}

/// The workspace trace schema, keyed by kind.
#[derive(Debug, Default)]
pub struct TraceSchema {
    pub kinds: BTreeMap<String, KindSchema>,
}

impl TraceSchema {
    pub fn field_count(&self) -> usize {
        self.kinds.values().map(|k| k.fields.len()).sum()
    }

    pub fn emit_site_count(&self) -> usize {
        self.kinds.values().map(|k| k.emit_sites.len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Pass 1: per-file extraction
// ---------------------------------------------------------------------------

/// Extract the emit sites and caller chains of one file, plus the
/// per-file D012 findings (non-literal field keys). Mirrors the graph
/// rules' scope: test modules and `tests/`/`examples/`/`benches/` trees
/// are skipped, fixture corpora stay in.
pub fn extract(
    rel_path: &str,
    tokens: &[Token],
    sig: &[usize],
    in_test: &[bool],
) -> (FileSchema, Vec<Finding>) {
    let mut out = FileSchema::default();
    let mut findings = Vec::new();
    if !crate::graph::in_scope(rel_path) {
        return (out, findings);
    }
    let impl_types = model::mark_impl_types(tokens, sig);
    let punct_at = |k: usize, c: char| sig.get(k).is_some_and(|&ti| tokens[ti].is_punct(c));
    let ident_at = |k: usize| {
        sig.get(k)
            .map(|&ti| &tokens[ti])
            .filter(|t| t.kind == TokenKind::Ident)
    };

    // The same fn-item walk as `model::build_model`.
    let mut si = 0;
    while si < sig.len() {
        let tok = &tokens[sig[si]];
        if !tok.is_ident("fn") {
            si += 1;
            continue;
        }
        let Some(name_tok) = ident_at(si + 1) else {
            si += 1;
            continue;
        };
        let mut j = si + 2;
        while j < sig.len() && !punct_at(j, '(') && !punct_at(j, '{') && !punct_at(j, ';') {
            j += 1;
        }
        if !punct_at(j, '(') {
            si += 1;
            continue;
        }
        let params_end = model::match_delim(tokens, sig, j, '(', ')');
        let mut k = params_end + 1;
        while k < sig.len() && !punct_at(k, '{') && !punct_at(k, ';') {
            k += 1;
        }
        if !punct_at(k, '{') {
            si = k.max(si + 1);
            continue;
        }
        let body_end = model::match_delim(tokens, sig, k, '{', '}');
        if !in_test[sig[si]] {
            let params = param_classes(tokens, sig, j, params_end);
            extract_body(
                rel_path,
                tokens,
                sig,
                k,
                body_end,
                &name_tok.text.clone(),
                impl_types[sig[si]].clone(),
                &params,
                &mut out,
                &mut findings,
            );
        }
        si = body_end.max(si + 1);
    }
    (out, findings)
}

/// What a `let`-bound record name refers to, so follow-up `.with` calls
/// land on the right site/chain.
enum BindTarget {
    Site(usize),
    Chain(usize),
}

#[allow(clippy::too_many_arguments)]
fn extract_body(
    rel_path: &str,
    tokens: &[Token],
    sig: &[usize],
    open: usize,
    close: usize,
    fn_name: &str,
    impl_type: Option<String>,
    params: &BTreeMap<String, ValueClass>,
    out: &mut FileSchema,
    findings: &mut Vec<Finding>,
) {
    let punct_at = |k: usize, c: char| sig.get(k).is_some_and(|&ti| tokens[ti].is_punct(c));
    let ident_at = |k: usize, w: &str| sig.get(k).is_some_and(|&ti| tokens[ti].is_ident(w));
    let mut binders: BTreeMap<String, BindTarget> = BTreeMap::new();

    let mut k = open + 1;
    while k < close {
        let tok = &tokens[sig[k]];
        if tok.kind != TokenKind::Ident {
            k += 1;
            continue;
        }
        // 1. Direct chain: `TraceRecord::new(..).with(..)…`.
        if tok.is_ident("TraceRecord") {
            if let Some((kind, line, bad)) = crate::rules::trace_kind_argument(tokens, sig, k) {
                if bad {
                    // A non-literal kind is D006's finding; no site.
                    k += 1;
                    continue;
                }
                let call_close = model::match_delim(tokens, sig, k + 4, '(', ')');
                let (required, end) =
                    with_chain(rel_path, tokens, sig, call_close, params, findings);
                let idx = out.sites.len();
                out.sites.push(EmitSite {
                    kind,
                    path: rel_path.to_owned(),
                    line,
                    required,
                    optional: Vec::new(),
                    fn_name: fn_name.to_owned(),
                    impl_type: impl_type.clone(),
                });
                if let Some(name) = let_binding(tokens, sig, k) {
                    binders.insert(name, BindTarget::Site(idx));
                }
                k = end + 1;
                continue;
            }
            k += 1;
            continue;
        }
        // 2. Follow-up on a bound record: `rec.with(..)` (match arms and
        // `rec = rec.with(..)` reassignments included).
        if binders.contains_key(tok.text.as_str())
            && punct_at(k + 1, '.')
            && ident_at(k + 2, "with")
            && punct_at(k + 3, '(')
        {
            let (fields, end) = with_chain(rel_path, tokens, sig, k, params, findings);
            match binders.get(tok.text.as_str()) {
                Some(BindTarget::Site(i)) => out.sites[*i].optional.extend(fields),
                Some(BindTarget::Chain(i)) => out.chains[*i].fields.extend(fields),
                None => {}
            }
            k = end + 1;
            continue;
        }
        // 3. Caller chain: `helper(..).with(..)…` — kept only if pass 2
        // resolves `helper` to a constructor fn.
        if tok.text != "with" && punct_at(k + 1, '(') {
            let call_close = model::match_delim(tokens, sig, k + 1, '(', ')');
            if punct_at(call_close + 1, '.')
                && ident_at(call_close + 2, "with")
                && punct_at(call_close + 3, '(')
            {
                let (fields, _end) =
                    with_chain(rel_path, tokens, sig, call_close, params, findings);
                let idx = out.chains.len();
                out.chains.push(CallerChain {
                    callee: tok.text.clone(),
                    recv_hint: receiver_hint(tokens, sig, k),
                    path: rel_path.to_owned(),
                    line: tok.line,
                    fields,
                });
                if let Some(name) = let_binding(tokens, sig, k) {
                    binders.insert(name, BindTarget::Chain(idx));
                }
                // Do NOT jump past the arguments: they may hold a nested
                // `TraceRecord::new` chain of their own.
                k += 1;
                continue;
            }
        }
        k += 1;
    }
}

/// Parse the `.with("key", value)` chain hanging off the expression that
/// ends at sig index `p` (the `)` of the call, or a bound record name).
/// The sig stream carries no comment tokens, so chains parse identically
/// across line breaks and through interleaved `//` / `/* */` comments.
/// Returns the fields plus the sig index of the last consumed token.
fn with_chain(
    rel_path: &str,
    tokens: &[Token],
    sig: &[usize],
    mut p: usize,
    params: &BTreeMap<String, ValueClass>,
    findings: &mut Vec<Finding>,
) -> (Vec<FieldUse>, usize) {
    let punct_at = |k: usize, c: char| sig.get(k).is_some_and(|&ti| tokens[ti].is_punct(c));
    let ident_at = |k: usize, w: &str| sig.get(k).is_some_and(|&ti| tokens[ti].is_ident(w));
    let mut fields = Vec::new();
    while punct_at(p + 1, '.') && ident_at(p + 2, "with") && punct_at(p + 3, '(') {
        let close = model::match_delim(tokens, sig, p + 3, '(', ')');
        let key_si = p + 4;
        // Locate the top-level comma separating key from value.
        let mut comma = None;
        let mut depth = 0i32;
        for q in key_si..close {
            let t = &tokens[sig[q]];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(',') {
                comma = Some(q);
                break;
            }
        }
        let key_tok = &tokens[sig[key_si.min(sig.len().saturating_sub(1))]];
        if key_tok.kind == TokenKind::Str && comma == Some(key_si + 1) {
            let class = classify_value(tokens, sig, key_si + 2, close, params, &key_tok.text);
            fields.push(FieldUse {
                name: key_tok.text.clone(),
                class,
                line: key_tok.line,
            });
        } else {
            findings.push(Finding {
                rule: RuleId::D012,
                path: rel_path.to_owned(),
                line: key_tok.line,
                message: "trace field key is not a string literal — the schema extractor \
                          (and every downstream cross-check) needs literal keys"
                    .to_owned(),
                allowed: None,
            });
        }
        p = close;
    }
    (fields, p)
}

/// If the chain rooted at sig index `start` is the initializer of a
/// `let [mut] name = …` statement, return the bound name. Walks back over
/// a `Path::to::` prefix first.
fn let_binding(tokens: &[Token], sig: &[usize], mut p: usize) -> Option<String> {
    let punct_at = |k: usize, c: char| tokens[sig[k]].is_punct(c);
    while p >= 3
        && punct_at(p - 1, ':')
        && punct_at(p - 2, ':')
        && tokens[sig[p - 3]].kind == TokenKind::Ident
    {
        p -= 3;
    }
    if p >= 2 && punct_at(p - 1, '=') && tokens[sig[p - 2]].kind == TokenKind::Ident {
        let name = &tokens[sig[p - 2]].text;
        let is_let = (p >= 3 && tokens[sig[p - 3]].is_ident("let"))
            || (p >= 4 && tokens[sig[p - 3]].is_ident("mut") && tokens[sig[p - 4]].is_ident("let"));
        if is_let {
            return Some(name.clone());
        }
    }
    None
}

/// Identifiers walked backwards off the receiver of a method call at sig
/// index `callee`, nearest first: path segments (`Transaction::ack` →
/// `Transaction`) and dotted receivers, skipping one balanced `(..)` /
/// `[..]` group per hop.
fn receiver_hint(tokens: &[Token], sig: &[usize], callee: usize) -> Vec<String> {
    let punct_at = |k: usize, c: char| tokens[sig[k]].is_punct(c);
    let mut hints = Vec::new();
    let mut p = callee;
    for _ in 0..8 {
        if p >= 3
            && punct_at(p - 1, ':')
            && punct_at(p - 2, ':')
            && tokens[sig[p - 3]].kind == TokenKind::Ident
        {
            hints.push(tokens[sig[p - 3]].text.clone());
            p -= 3;
            continue;
        }
        if p >= 2 && punct_at(p - 1, '.') {
            let mut q = p - 2;
            if punct_at(q, ')') || punct_at(q, ']') {
                let (o, c) = if punct_at(q, ')') {
                    ('(', ')')
                } else {
                    ('[', ']')
                };
                let mut depth = 0i32;
                loop {
                    if punct_at(q, c) {
                        depth += 1;
                    } else if punct_at(q, o) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if q == 0 {
                        return hints;
                    }
                    q -= 1;
                }
                if q == 0 {
                    return hints;
                }
                q -= 1;
            }
            if tokens[sig[q]].kind == TokenKind::Ident {
                hints.push(tokens[sig[q]].text.clone());
                p = q;
                continue;
            }
            return hints;
        }
        return hints;
    }
    hints
}

/// Parameter name → value class for the enclosing fn, so `.with("frame",
/// frame)` inherits the declared `frame: u64`.
fn param_classes(
    tokens: &[Token],
    sig: &[usize],
    open: usize,
    close: usize,
) -> BTreeMap<String, ValueClass> {
    let mut map = BTreeMap::new();
    let mut depth = 0i32;
    let mut q = open + 1;
    while q < close {
        let t = &tokens[sig[q]];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth = (depth - 1).max(0);
        } else if depth == 0
            && t.kind == TokenKind::Ident
            && q + 1 < close
            && tokens[sig[q + 1]].is_punct(':')
            && !(q + 2 < close && tokens[sig[q + 2]].is_punct(':'))
        {
            let mut r = q + 2;
            while r < close {
                let tt = &tokens[sig[r]];
                if tt.is_punct('&') || tt.is_ident("mut") || tt.kind == TokenKind::Lifetime {
                    r += 1;
                } else {
                    break;
                }
            }
            if r < close && tokens[sig[r]].kind == TokenKind::Ident {
                if let Some(c) = type_class(&tokens[sig[r]].text) {
                    map.insert(t.text.clone(), c);
                }
            }
        }
        q += 1;
    }
    map
}

fn type_class(ty: &str) -> Option<ValueClass> {
    match ty {
        "str" | "String" => Some(ValueClass::Str),
        "u8" | "u16" | "u32" | "u64" | "u128" | "usize" | "i8" | "i16" | "i32" | "i64" | "i128"
        | "isize" => Some(ValueClass::Int),
        "f32" | "f64" => Some(ValueClass::Float),
        "bool" => Some(ValueClass::Bool),
        // SimTime serializes as integer microseconds.
        "SimTime" => Some(ValueClass::Int),
        _ => None,
    }
}

/// Infer the value class of the expression in sig range `vs..ve`, in
/// confidence order: literal / cast, well-known method name, well-known
/// string-returning helper, declared parameter type, unit suffix of the
/// field key or the value's last identifier. `Any` when nothing matches.
fn classify_value(
    tokens: &[Token],
    sig: &[usize],
    vs: usize,
    ve: usize,
    params: &BTreeMap<String, ValueClass>,
    key: &str,
) -> ValueClass {
    if vs >= ve {
        return ValueClass::Any;
    }
    let punct_at = |k: usize, c: char| sig.get(k).is_some_and(|&ti| tokens[ti].is_punct(c));
    for q in vs..ve {
        let t = &tokens[sig[q]];
        match t.kind {
            TokenKind::Str => return ValueClass::Str,
            TokenKind::Number => {
                let x = t.text.as_str();
                let radix = x.starts_with("0x") || x.starts_with("0b") || x.starts_with("0o");
                let float = !radix
                    && (x.contains('.')
                        || x.contains('e')
                        || x.contains('E')
                        || x.ends_with("f32")
                        || x.ends_with("f64"));
                return if float {
                    ValueClass::Float
                } else {
                    ValueClass::Int
                };
            }
            TokenKind::Ident if t.text == "true" || t.text == "false" => return ValueClass::Bool,
            TokenKind::Ident if t.text == "as" => {
                if let Some(&ti) = sig.get(q + 1) {
                    if let Some(c @ (ValueClass::Int | ValueClass::Float)) =
                        type_class(&tokens[ti].text)
                    {
                        return c;
                    }
                }
            }
            _ => {}
        }
    }
    for q in vs..ve {
        let t = &tokens[sig[q]];
        if t.kind == TokenKind::Ident && punct_at(q + 1, '(') && q > vs && punct_at(q - 1, '.') {
            match t.text.as_str() {
                // dles-units quantities expose f64 through `.get()`;
                // `.mhz()`/`.soc()` etc. are the typed accessors.
                "mhz" | "hz" | "get" | "as_secs_f64" | "soc" => return ValueClass::Float,
                "as_micros" | "as_millis" | "as_secs" | "len" | "count" => return ValueClass::Int,
                "name" | "as_str" | "to_string" | "to_owned" => return ValueClass::Str,
                "is_some" | "is_none" | "is_empty" => return ValueClass::Bool,
                _ => {}
            }
        }
    }
    for q in vs..ve {
        let t = &tokens[sig[q]];
        if t.kind == TokenKind::Ident
            && (punct_at(q + 1, '(') || punct_at(q + 1, '!'))
            && !(q > vs && punct_at(q - 1, '.'))
        {
            // Repo idiom: the component/endpoint naming helpers (and
            // `format!`) always produce strings.
            if matches!(
                t.text.as_str(),
                "component_of" | "endpoint_name" | "link_component" | "format"
            ) {
                return ValueClass::Str;
            }
        }
    }
    if ve == vs + 1 && tokens[sig[vs]].kind == TokenKind::Ident {
        if let Some(c) = params.get(tokens[sig[vs]].text.as_str()) {
            return *c;
        }
    }
    let by_suffix = |name: &str| {
        unit_suffix(name).map(|s| {
            // Times on the wire are integer micro/milliseconds; every
            // other unit-suffixed quantity is a float measurement.
            if s == "us" || s == "ms" {
                ValueClass::Int
            } else {
                ValueClass::Float
            }
        })
    };
    if let Some(c) = by_suffix(key) {
        return c;
    }
    for q in (vs..ve).rev() {
        let t = &tokens[sig[q]];
        if t.kind == TokenKind::Ident {
            if let Some(c) = by_suffix(&t.text) {
                return c;
            }
            break;
        }
    }
    ValueClass::Any
}

// ---------------------------------------------------------------------------
// Pass 2: workspace merge + D012/D013
// ---------------------------------------------------------------------------

/// Merge every file's emit sites into the workspace schema, attribute
/// constructor-caller chains, and run the cross-site rules: D012 field
/// conflicts and D013 documentation drift (against README's trace-schema
/// table; dead-row detection only on `full` scans, exactly like D010's
/// registry). Unused D012/D013 allow directives become D000.
pub fn analyze(
    files: &[FileSchema],
    readme: Option<&str>,
    full: bool,
    allows: Vec<GraphAllow>,
) -> (TraceSchema, Vec<Finding>) {
    let mut findings = Vec::new();

    // Constructor registry: (path, impl, fn) groups with exactly one
    // direct emit site make the fn a kind constructor.
    type FnKey = (String, String, String);
    let mut per_fn: BTreeMap<FnKey, Vec<(String, Option<String>)>> = BTreeMap::new();
    for f in files {
        for s in &f.sites {
            per_fn
                .entry((
                    s.path.clone(),
                    s.impl_type.clone().unwrap_or_default(),
                    s.fn_name.clone(),
                ))
                .or_default()
                .push((s.kind.clone(), s.impl_type.clone()));
        }
    }
    let mut ctors: BTreeMap<String, Vec<(Option<String>, String)>> = BTreeMap::new();
    for ((_, _, fn_name), kinds) in &per_fn {
        if let [(kind, impl_type)] = kinds.as_slice() {
            ctors
                .entry(fn_name.clone())
                .or_default()
                .push((impl_type.clone(), kind.clone()));
        }
    }

    // Group sites by kind, preserving the (path-sorted) scan order.
    let mut by_kind: BTreeMap<&str, Vec<&EmitSite>> = BTreeMap::new();
    for f in files {
        for s in &f.sites {
            by_kind.entry(&s.kind).or_default().push(s);
        }
    }

    // D012: incomparable required field sets across sites of one kind.
    let names = |fs: &[FieldUse]| fs.iter().map(|f| f.name.clone()).collect::<BTreeSet<_>>();
    for (kind, sites) in &by_kind {
        let mut accepted: Vec<(&EmitSite, BTreeSet<String>)> = Vec::new();
        for s in sites {
            let req = names(&s.required);
            if let Some((prev, prev_req)) = accepted
                .iter()
                .find(|(_, pr)| !pr.is_subset(&req) && !req.is_subset(pr))
            {
                findings.push(Finding {
                    rule: RuleId::D012,
                    path: s.path.clone(),
                    line: s.line,
                    message: format!(
                        "emit sites of trace kind `{kind}` disagree on required fields — \
                         this site requires [{}] but {}:{} requires [{}]; make one a \
                         superset or append the extras through a bound record",
                        join(&req),
                        prev.path,
                        prev.line,
                        join(prev_req),
                    ),
                    allowed: None,
                });
            }
            accepted.push((s, req));
        }
    }

    // Merge fields per kind: required = intersection of every site's
    // unconditional chain; order = first seen; classes merged (a
    // disagreement is D012 and widens to `any`).
    let mut schema = TraceSchema::default();
    for (kind, sites) in &by_kind {
        let mut required_names: Option<BTreeSet<String>> = None;
        for s in sites {
            let req = names(&s.required);
            required_names = Some(match required_names {
                None => req,
                Some(prev) => prev.intersection(&req).cloned().collect(),
            });
        }
        let required_names = required_names.unwrap_or_default();
        let entry = schema.kinds.entry((*kind).to_owned()).or_default();
        for s in sites {
            entry.emit_sites.push((s.path.clone(), s.line));
            for fu in s.required.iter().chain(s.optional.iter()) {
                merge_field(
                    entry,
                    kind,
                    fu,
                    required_names.contains(&fu.name),
                    &s.path,
                    &mut findings,
                );
            }
        }
    }

    // Attribute constructor-caller chains: their fields are optional for
    // the constructor's kind; unresolved callees are dropped, not guessed.
    for f in files {
        for ch in &f.chains {
            let Some(cands) = ctors.get(&ch.callee) else {
                continue;
            };
            let kind = if let [(_, kind)] = cands.as_slice() {
                Some(kind.clone())
            } else {
                let hinted: Vec<&String> = cands
                    .iter()
                    .filter_map(|(it, kind)| {
                        it.as_ref()
                            .filter(|t| ch.recv_hint.iter().any(|h| h == *t))
                            .map(|_| kind)
                    })
                    .collect();
                match hinted.as_slice() {
                    [kind] => Some((*kind).clone()),
                    _ => None,
                }
            };
            let Some(kind) = kind else { continue };
            if let Some(entry) = schema.kinds.get_mut(&kind) {
                for fu in &ch.fields {
                    merge_field(entry, &kind, fu, false, &ch.path, &mut findings);
                }
            }
        }
    }

    // D013: the schema must round-trip through README's trace-schema table.
    if let Some(readme) = readme {
        findings.extend(crosscheck_schema_docs(&schema, readme, full));
    }

    let findings = crate::graph::apply_graph_allows(findings, allows);
    (schema, findings)
}

fn join(set: &BTreeSet<String>) -> String {
    set.iter().cloned().collect::<Vec<_>>().join(", ")
}

fn merge_field(
    entry: &mut KindSchema,
    kind: &str,
    fu: &FieldUse,
    required: bool,
    path: &str,
    findings: &mut Vec<Finding>,
) {
    if let Some(existing) = entry.fields.iter_mut().find(|x| x.name == fu.name) {
        match ValueClass::merge(existing.class, fu.class) {
            Some(c) => existing.class = c,
            None => {
                findings.push(Finding {
                    rule: RuleId::D012,
                    path: path.to_owned(),
                    line: fu.line,
                    message: format!(
                        "field `{}` of trace kind `{kind}` is {} here but {} at {}:{} — \
                         value classes must agree across emit sites",
                        fu.name,
                        fu.class.as_str(),
                        existing.class.as_str(),
                        existing.path,
                        existing.line,
                    ),
                    allowed: None,
                });
                existing.class = ValueClass::Any;
            }
        }
    } else {
        entry.fields.push(SchemaField {
            name: fu.name.clone(),
            class: fu.class,
            required,
            path: path.to_owned(),
            line: fu.line,
        });
    }
}

/// One row of README's trace-schema table: a backticked kind cell plus an
/// optionally backticked field cell.
struct DocRow {
    kind: String,
    field: Option<String>,
    line: u32,
}

/// Parse README's trace-schema table: rows of any table under a heading
/// containing "trace schema", first backticked cell = kind, second =
/// field. `None` when the section is missing entirely.
fn schema_table_rows(readme: &str) -> Option<Vec<DocRow>> {
    let mut in_section = false;
    let mut found = false;
    let mut rows = Vec::new();
    for (i, line) in readme.lines().enumerate() {
        let t = line.trim();
        if t.starts_with('#') {
            in_section = t.to_ascii_lowercase().contains("trace schema");
            found |= in_section;
            continue;
        }
        if !in_section || !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.split('|').collect();
        let Some(kind) = cells.get(1).and_then(|c| ticked(c)) else {
            continue; // header and separator rows
        };
        rows.push(DocRow {
            kind,
            field: cells.get(2).and_then(|c| ticked(c)),
            line: (i + 1) as u32,
        });
    }
    if found {
        Some(rows)
    } else {
        None
    }
}

/// The first `` `…` ``-quoted span of a table cell, if any.
fn ticked(cell: &str) -> Option<String> {
    let s = cell.trim();
    let start = s.find('`')?;
    let rest = &s[start + 1..];
    let end = rest.find('`')?;
    let name = &rest[..end];
    (!name.is_empty()).then(|| name.to_owned())
}

fn crosscheck_schema_docs(schema: &TraceSchema, readme: &str, full: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(rows) = schema_table_rows(readme) else {
        if !schema.kinds.is_empty() {
            findings.push(Finding {
                rule: RuleId::D013,
                path: "README.md".to_owned(),
                line: 0,
                message: "README.md has no trace-schema table (a table under a heading \
                          containing \"trace schema\") — D013 needs one row per kind/field"
                    .to_owned(),
                allowed: None,
            });
        }
        return findings;
    };
    let doc_kinds: BTreeSet<&str> = rows.iter().map(|r| r.kind.as_str()).collect();
    let doc_fields: BTreeSet<(&str, &str)> = rows
        .iter()
        .filter_map(|r| r.field.as_deref().map(|f| (r.kind.as_str(), f)))
        .collect();
    for (kind, ks) in &schema.kinds {
        if !doc_kinds.contains(kind.as_str()) {
            let (path, line) = ks.emit_sites.first().cloned().unwrap_or_default();
            findings.push(Finding {
                rule: RuleId::D013,
                path,
                line,
                message: format!(
                    "trace kind `{kind}` is not documented in README.md's trace-schema table"
                ),
                allowed: None,
            });
            continue;
        }
        for f in &ks.fields {
            if !doc_fields.contains(&(kind.as_str(), f.name.as_str())) {
                findings.push(Finding {
                    rule: RuleId::D013,
                    path: f.path.clone(),
                    line: f.line,
                    message: format!(
                        "trace field `{}` of kind `{kind}` is not documented in README.md's \
                         trace-schema table",
                        f.name
                    ),
                    allowed: None,
                });
            }
        }
    }
    if full {
        for r in &rows {
            let Some(ks) = schema.kinds.get(&r.kind) else {
                findings.push(Finding {
                    rule: RuleId::D013,
                    path: "README.md".to_owned(),
                    line: r.line,
                    message: format!(
                        "documented trace kind `{}` has no emit site in the workspace — \
                         delete the row or restore the emitter",
                        r.kind
                    ),
                    allowed: None,
                });
                continue;
            };
            if let Some(field) = &r.field {
                if !ks.fields.iter().any(|f| &f.name == field) {
                    findings.push(Finding {
                        rule: RuleId::D013,
                        path: "README.md".to_owned(),
                        line: r.line,
                        message: format!(
                            "documented trace field `{field}` of kind `{}` has no emit site — \
                             delete the row or restore the `.with`",
                            r.kind
                        ),
                        allowed: None,
                    });
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// D014: golden conformance
// ---------------------------------------------------------------------------

/// Per-file cap on conformance findings, so one stale golden does not
/// flood the report with thousands of identical lines.
const MAX_FINDINGS_PER_GOLDEN: usize = 25;

/// Check every `*.jsonl` under `root/rel_dir` against the schema (D014).
/// Returns the findings plus an I/O-error count (exit-code-2 material:
/// an unreadable golden must never read as a pass).
pub fn check_goldens(schema: &TraceSchema, root: &Path, rel_dir: &str) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let mut io_errors = 0usize;
    let dir = root.join(rel_dir);
    let entries = match fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            io_errors += 1;
            findings.push(Finding {
                rule: RuleId::D014,
                path: rel_dir.to_owned(),
                line: 0,
                message: format!("cannot read goldens directory: {e}"),
                allowed: None,
            });
            return (findings, io_errors);
        }
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let rel = format!("{rel_dir}/{name}");
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                io_errors += 1;
                findings.push(Finding {
                    rule: RuleId::D014,
                    path: rel,
                    line: 0,
                    message: format!("cannot read golden: {e}"),
                    allowed: None,
                });
                continue;
            }
        };
        let before = findings.len();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ln = (i + 1) as u32;
            if findings.len() - before >= MAX_FINDINGS_PER_GOLDEN {
                findings.push(Finding {
                    rule: RuleId::D014,
                    path: rel.clone(),
                    line: ln,
                    message: format!(
                        "further conformance findings in this golden suppressed \
                         (first {MAX_FINDINGS_PER_GOLDEN} shown)"
                    ),
                    allowed: None,
                });
                break;
            }
            match parse_jsonl_record(line) {
                Err(msg) => findings.push(Finding {
                    rule: RuleId::D014,
                    path: rel.clone(),
                    line: ln,
                    message: format!("malformed JSONL record: {msg}"),
                    allowed: None,
                }),
                Ok(fields) => check_record(schema, &fields, &rel, ln, &mut findings),
            }
        }
    }
    (findings, io_errors)
}

fn check_record(
    schema: &TraceSchema,
    fields: &[(String, JsonValue)],
    rel: &str,
    line: u32,
    findings: &mut Vec<Finding>,
) {
    let mut push = |message: String| {
        findings.push(Finding {
            rule: RuleId::D014,
            path: rel.to_owned(),
            line,
            message,
            allowed: None,
        });
    };
    let get = |name: &str| fields.iter().find(|(n, _)| n == name).map(|(_, v)| v);
    // Structural fields every record carries.
    match get("t_us") {
        Some(JsonValue::Int) => {}
        Some(v) => push(format!(
            "structural field `t_us` is {} (want int)",
            v.class_name()
        )),
        None => push("record is missing structural field `t_us`".to_owned()),
    }
    match get("component") {
        Some(JsonValue::Str(_)) => {}
        Some(v) => push(format!(
            "structural field `component` is {} (want str)",
            v.class_name()
        )),
        None => push("record is missing structural field `component`".to_owned()),
    }
    let kind = match get("kind") {
        Some(JsonValue::Str(k)) => k.clone(),
        Some(v) => {
            push(format!(
                "structural field `kind` is {} (want str)",
                v.class_name()
            ));
            return;
        }
        None => {
            push("record is missing structural field `kind`".to_owned());
            return;
        }
    };
    let Some(ks) = schema.kinds.get(&kind) else {
        push(format!(
            "unknown trace kind `{kind}` — no emit site in the workspace produces it"
        ));
        return;
    };
    for (name, value) in fields {
        if matches!(name.as_str(), "t_us" | "component" | "kind") {
            continue;
        }
        match ks.fields.iter().find(|f| &f.name == name) {
            None => push(format!(
                "field `{name}` is not in the schema of kind `{kind}`"
            )),
            Some(f) => {
                if !class_accepts(f.class, value) {
                    push(format!(
                        "field `{name}` of kind `{kind}` is {} but the schema says {}",
                        value.class_name(),
                        f.class.as_str()
                    ));
                }
            }
        }
    }
    for f in ks.fields.iter().filter(|f| f.required) {
        if get(&f.name).is_none() {
            push(format!(
                "record of kind `{kind}` is missing required field `{}`",
                f.name
            ));
        }
    }
}

/// Runtime compatibility of a JSON value with a schema class. `Float`
/// accepts integers (the JSONL writer renders whole floats as integers:
/// `59.0` → `59`) and `null` (non-finite floats); `Any` accepts all.
fn class_accepts(class: ValueClass, value: &JsonValue) -> bool {
    match class {
        ValueClass::Any => true,
        ValueClass::Int => matches!(value, JsonValue::Int),
        ValueClass::Float => matches!(value, JsonValue::Int | JsonValue::Float | JsonValue::Null),
        ValueClass::Str => matches!(value, JsonValue::Str(_)),
        ValueClass::Bool => matches!(value, JsonValue::Bool),
    }
}

/// A parsed scalar from one JSONL record. Numeric payloads only carry
/// their class — conformance never needs the magnitude.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Int,
    Float,
    Str(String),
    Bool,
    Null,
}

impl JsonValue {
    fn class_name(&self) -> &'static str {
        match self {
            JsonValue::Int => "int",
            JsonValue::Float => "float",
            JsonValue::Str(_) => "str",
            JsonValue::Bool => "bool",
            JsonValue::Null => "null",
        }
    }
}

/// Minimal in-repo JSON reader for one flat JSONL record (the workspace
/// is offline — no serde). Trace records are flat string→scalar objects
/// by construction, so nested values are rejected as malformed.
pub fn parse_jsonl_record(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.char_indices().peekable();
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    if chars.next().map(|(_, c)| c) != Some('{') {
        return Err("expected `{`".to_owned());
    }
    skip_ws(&mut chars);
    if chars.peek().map(|&(_, c)| c) == Some('}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next().map(|(_, c)| c) != Some(':') {
                return Err(format!("expected `:` after key `{key}`"));
            }
            skip_ws(&mut chars);
            let value = parse_value(&mut chars)?;
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next().map(|(_, c)| c) {
                Some(',') => continue,
                Some('}') => break,
                _ => return Err("expected `,` or `}`".to_owned()),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some((_, c)) = chars.next() {
        return Err(format!("trailing content after record: `{c}`"));
    }
    Ok(fields)
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars) {
    while chars.peek().is_some_and(|&(_, c)| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut Chars) -> Result<String, String> {
    if chars.next().map(|(_, c)| c) != Some('"') {
        return Err("expected string".to_owned());
    }
    let mut out = String::new();
    loop {
        match chars.next().map(|(_, c)| c) {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next().map(|(_, c)| c) {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|(_, c)| c.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        code = code * 16 + d;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("bad escape `\\{}`", other.unwrap_or(' '))),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".to_owned()),
        }
    }
}

fn parse_value(chars: &mut Chars) -> Result<JsonValue, String> {
    match chars.peek().map(|&(_, c)| c) {
        Some('"') => Ok(JsonValue::Str(parse_string(chars)?)),
        Some('t') => expect_word(chars, "true").map(|_| JsonValue::Bool),
        Some('f') => expect_word(chars, "false").map(|_| JsonValue::Bool),
        Some('n') => expect_word(chars, "null").map(|_| JsonValue::Null),
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let mut float = false;
            let mut any = false;
            while let Some(&(_, c)) = chars.peek() {
                match c {
                    '0'..='9' | '-' | '+' => {
                        any = true;
                        chars.next();
                    }
                    '.' | 'e' | 'E' => {
                        float = true;
                        chars.next();
                    }
                    _ => break,
                }
            }
            if !any {
                return Err("malformed number".to_owned());
            }
            Ok(if float {
                JsonValue::Float
            } else {
                JsonValue::Int
            })
        }
        Some('{') | Some('[') => Err("nested values are not valid trace records".to_owned()),
        _ => Err("expected a JSON scalar".to_owned()),
    }
}

fn expect_word(chars: &mut Chars, word: &str) -> Result<(), String> {
    for want in word.chars() {
        if chars.next().map(|(_, c)| c) != Some(want) {
            return Err(format!("expected `{word}`"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

/// The committed-lockfile form (`trace_schema.json`): one line per field
/// so a schema drift shows up as a minimal diff in CI.
pub fn render_schema_json(schema: &TraceSchema) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"kinds\": {\n");
    let nkinds = schema.kinds.len();
    for (i, (kind, ks)) in schema.kinds.iter().enumerate() {
        out.push_str(&format!(
            "    {}: {{\n      \"emit_sites\": {},\n      \"fields\": [\n",
            crate::json_str(kind),
            ks.emit_sites.len()
        ));
        for (j, f) in ks.fields.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": {}, \"class\": \"{}\", \"required\": {}}}{}\n",
                crate::json_str(&f.name),
                f.class.as_str(),
                f.required,
                if j + 1 < ks.fields.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if i + 1 < nkinds { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Human-readable `--schema-dump`.
pub fn render_schema_human(schema: &TraceSchema) -> String {
    let mut out = format!(
        "trace schema: {} kind(s), {} field(s), {} emit site(s)\n",
        schema.kinds.len(),
        schema.field_count(),
        schema.emit_site_count()
    );
    for (kind, ks) in &schema.kinds {
        out.push_str(&format!(
            "\n{kind} ({} emit site(s))\n",
            ks.emit_sites.len()
        ));
        for f in &ks.fields {
            out.push_str(&format!(
                "  {:<22} {:<6} {}\n",
                f.name,
                f.class.as_str(),
                if f.required { "required" } else { "optional" }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::model::sig_indices;
    use crate::rules::mark_test_mods;

    fn extract_src(path: &str, src: &str) -> (FileSchema, Vec<Finding>) {
        let tokens = lex(src);
        let sig = sig_indices(&tokens);
        let in_test = mark_test_mods(&tokens, &sig);
        extract(path, &tokens, &sig, &in_test)
    }

    fn schema_of(srcs: &[(&str, &str)]) -> (TraceSchema, Vec<Finding>) {
        let mut files = Vec::new();
        let mut findings = Vec::new();
        for (path, src) in srcs {
            let (fs, f) = extract_src(path, src);
            files.push(fs);
            findings.extend(f);
        }
        let (schema, f2) = analyze(&files, None, false, Vec::new());
        findings.extend(f2);
        (schema, findings)
    }

    #[test]
    fn direct_chain_fields_are_required_with_classes() {
        let src = r#"fn f(ctx: &C, frame: u64, mode: &'static str) {
            ctx.emit(TraceRecord::new(ctx.now(), "host", "rotation")
                .with("frame", frame)
                .with("mode", mode)
                .with("ratio", 0.5));
        }"#;
        let (fs, findings) = extract_src("crates/core/src/x.rs", src);
        assert!(findings.is_empty());
        assert_eq!(fs.sites.len(), 1);
        let s = &fs.sites[0];
        assert_eq!(s.kind, "rotation");
        let got: Vec<(&str, ValueClass)> = s
            .required
            .iter()
            .map(|f| (f.name.as_str(), f.class))
            .collect();
        assert_eq!(
            got,
            vec![
                ("frame", ValueClass::Int),
                ("mode", ValueClass::Str),
                ("ratio", ValueClass::Float)
            ]
        );
    }

    #[test]
    fn chain_parses_across_line_breaks_and_comments() {
        // Satellite: `.with("a", x) // note` then more chain on the next
        // line, with a block comment wedged mid-chain.
        let src = "fn f(ctx: &C, frame: u64) {\n\
                   ctx.emit(\n\
                       TraceRecord::new(ctx.now(), \"host\", \"rotation\")\n\
                           .with(\"frame\", frame) // note\n\
                           /* mid-chain comment */\n\
                           .with(\"rotations\", 3u64),\n\
                   );\n\
                   }\n";
        let (fs, findings) = extract_src("crates/core/src/x.rs", src);
        assert!(findings.is_empty());
        let names: Vec<&str> = fs.sites[0]
            .required
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["frame", "rotations"]);
    }

    #[test]
    fn bound_record_followups_are_optional_per_match_arm() {
        let src = r#"fn f(ctx: &C, frame: u64) {
            let mut rec = TraceRecord::new(ctx.now(), "host", "rotation").with("frame", frame);
            rec = match fault {
                Fault::Drop => rec.with("fault", "drop"),
                Fault::Flip { bits } => rec.with("fault", "flip").with("bits", bits as u64),
            };
            if deep {
                rec = rec.with("depth", 2u64);
            }
            ctx.emit(rec);
        }"#;
        let (fs, findings) = extract_src("crates/core/src/x.rs", src);
        assert!(findings.is_empty());
        let s = &fs.sites[0];
        let req: Vec<&str> = s.required.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(req, vec!["frame"]);
        let opt: Vec<&str> = s.optional.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(opt, vec!["fault", "fault", "bits", "depth"]);
    }

    #[test]
    fn non_literal_field_key_is_d012() {
        let src = r#"fn f(ctx: &C, key: &'static str) {
            ctx.emit(TraceRecord::new(ctx.now(), "host", "rotation").with(key, 1u64));
        }"#;
        let (_, findings) = extract_src("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::D012);
        assert!(findings[0].message.contains("not a string literal"));
    }

    #[test]
    fn test_code_and_out_of_scope_trees_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(ctx: &C) { \
                   ctx.emit(TraceRecord::new(t, \"x\", \"tick\").with(\"a\", 1u64)); }\n}\n";
        let (fs, _) = extract_src("crates/sim/src/engine.rs", src);
        assert!(fs.sites.is_empty());
        let live = "fn t(ctx: &C) { ctx.emit(TraceRecord::new(t, \"x\", \"tick\")); }";
        let (fs, _) = extract_src("tests/trace_observability.rs", live);
        assert!(fs.sites.is_empty(), "tests/ trees are out of scope");
        let (fs, _) = extract_src("crates/lint/tests/fixtures/d012_fields.rs", live);
        assert_eq!(fs.sites.len(), 1, "fixtures stay in scope");
    }

    #[test]
    fn subset_required_sets_do_not_conflict() {
        let srcs = [(
            "crates/core/src/a.rs",
            r#"fn a(ctx: &C) { ctx.emit(TraceRecord::new(t, "h", "k").with("x", 1u64)); }
               fn b(ctx: &C) { ctx.emit(TraceRecord::new(t, "h", "k").with("x", 1u64).with("y", 2u64)); }"#,
        )];
        let (schema, findings) = schema_of(&srcs);
        assert!(findings.is_empty(), "{findings:?}");
        let ks = &schema.kinds["k"];
        let req: Vec<(&str, bool)> = ks
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.required))
            .collect();
        assert_eq!(req, vec![("x", true), ("y", false)]);
        assert_eq!(ks.emit_sites.len(), 2);
    }

    #[test]
    fn incomparable_required_sets_are_d012() {
        let srcs = [(
            "crates/core/src/a.rs",
            r#"fn a(ctx: &C) { ctx.emit(TraceRecord::new(t, "h", "k").with("x", 1u64)); }
               fn b(ctx: &C) { ctx.emit(TraceRecord::new(t, "h", "k").with("y", 2u64)); }"#,
        )];
        let (_, findings) = schema_of(&srcs);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::D012);
        assert!(findings[0].message.contains("disagree on required fields"));
    }

    #[test]
    fn class_conflict_is_d012_and_widens_to_any() {
        let srcs = [(
            "crates/core/src/a.rs",
            r#"fn a(ctx: &C) { ctx.emit(TraceRecord::new(t, "h", "k").with("x", "s")); }
               fn b(ctx: &C) { ctx.emit(TraceRecord::new(t, "h", "k").with("x", 1u64)); }"#,
        )];
        let (schema, findings) = schema_of(&srcs);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("value classes must agree"));
        assert_eq!(schema.kinds["k"].fields[0].class, ValueClass::Any);
    }

    #[test]
    fn constructor_helper_chains_contribute_optional_fields() {
        let srcs = [
            (
                "crates/net/src/a.rs",
                r#"impl Transaction {
                    pub fn trace_record(&self, event: &'static str, frame: u64) -> TraceRecord {
                        TraceRecord::new(t, self.component(), "transaction")
                            .with("event", event)
                            .with("frame", frame)
                    }
                }"#,
            ),
            (
                "crates/core/src/b.rs",
                r#"fn f(ctx: &C, node: usize) {
                    ctx.emit(Transaction::ack(a, b).trace_record("timeout", 0)
                        .with("waiter", component_of(node)));
                }"#,
            ),
        ];
        let (schema, findings) = schema_of(&srcs);
        assert!(findings.is_empty(), "{findings:?}");
        let ks = &schema.kinds["transaction"];
        assert_eq!(ks.emit_sites.len(), 1, "caller chains are not emit sites");
        let fields: Vec<(&str, ValueClass, bool)> = ks
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.class, f.required))
            .collect();
        assert_eq!(
            fields,
            vec![
                ("event", ValueClass::Str, true),
                ("frame", ValueClass::Int, true),
                ("waiter", ValueClass::Str, false)
            ]
        );
    }

    #[test]
    fn ambiguous_helper_resolves_by_receiver_hint_or_drops() {
        let srcs = [
            (
                "crates/net/src/a.rs",
                r#"impl Transaction {
                    pub fn trace_record(&self) -> TraceRecord {
                        TraceRecord::new(t, c, "transaction")
                    }
                }"#,
            ),
            (
                "crates/power/src/b.rs",
                r#"impl LoadSegment {
                    pub fn trace_record(&self) -> TraceRecord {
                        TraceRecord::new(t, c, "power_segment")
                    }
                }"#,
            ),
            (
                "crates/core/src/c.rs",
                r#"fn f(ctx: &C) {
                    ctx.emit(Transaction::ack(a, b).trace_record().with("hinted", 1u64));
                    ctx.emit(mystery().trace_record().with("dropped", 1u64));
                }"#,
            ),
        ];
        let (schema, _) = schema_of(&srcs);
        let tx: Vec<&str> = schema.kinds["transaction"]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(tx, vec!["hinted"]);
        assert!(schema.kinds["power_segment"].fields.is_empty());
    }

    #[test]
    fn readme_table_roundtrip_and_drift() {
        let srcs = [(
            "crates/core/src/a.rs",
            r#"fn a(ctx: &C, frame: u64) {
                ctx.emit(TraceRecord::new(t, "h", "rotation").with("frame", frame));
            }"#,
        )];
        let mut files = Vec::new();
        for (path, src) in &srcs {
            files.push(extract_src(path, src).0);
        }
        let good = "## Trace schema\n\n| Kind | Field | Class | Presence |\n|---|---|---|---|\n\
                    | `rotation` | `frame` | int | required |\n";
        let (_, findings) = analyze(&files, Some(good), true, Vec::new());
        assert!(findings.is_empty(), "{findings:?}");
        // Missing field row → D013 at the emit site; dead row → D013 at
        // the README line (full scans only).
        let drift = "## Trace schema\n\n| Kind | Field | Class | Presence |\n|---|---|---|---|\n\
                     | `rotation` | `rotations` | int | required |\n";
        let (_, findings) = analyze(&files, Some(drift), true, Vec::new());
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("trace field `frame`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("has no emit site")),
            "{msgs:?}"
        );
        let (_, partial) = analyze(&files, Some(drift), false, Vec::new());
        assert!(
            !partial
                .iter()
                .any(|f| f.message.contains("has no emit site")),
            "dead rows are full-scan-only"
        );
    }

    #[test]
    fn missing_table_is_a_single_d013() {
        let srcs = [(
            "crates/core/src/a.rs",
            r#"fn a(ctx: &C) { ctx.emit(TraceRecord::new(t, "h", "rotation")); }"#,
        )];
        let files = vec![extract_src(srcs[0].0, srcs[0].1).0];
        let (_, findings) = analyze(&files, Some("# Nothing here\n"), true, Vec::new());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no trace-schema table"));
    }

    #[test]
    fn jsonl_parser_classes_and_errors() {
        let rec = parse_jsonl_record(
            r#"{"t_us": 100, "component": "host", "kind": "rotation", "r": 0.5, "b": true, "n": null, "e": 2e6}"#,
        )
        .unwrap();
        let class = |n: &str| {
            rec.iter()
                .find(|(k, _)| k == n)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(class("t_us"), JsonValue::Int);
        assert_eq!(class("component"), JsonValue::Str("host".to_owned()));
        assert_eq!(class("r"), JsonValue::Float);
        assert_eq!(class("b"), JsonValue::Bool);
        assert_eq!(class("n"), JsonValue::Null);
        assert_eq!(class("e"), JsonValue::Float);
        assert!(parse_jsonl_record("{not json").is_err());
        assert!(parse_jsonl_record(r#"{"a": 1} extra"#).is_err());
        assert!(parse_jsonl_record(r#"{"a": {"nested": 1}}"#).is_err());
        assert!(parse_jsonl_record(r#"{"esc": "a\"bA"}"#).is_ok());
    }

    #[test]
    fn class_compat_matches_the_jsonl_writer() {
        // Whole floats render as integers, non-finite floats as null.
        assert!(class_accepts(ValueClass::Float, &JsonValue::Int));
        assert!(class_accepts(ValueClass::Float, &JsonValue::Null));
        assert!(!class_accepts(ValueClass::Int, &JsonValue::Float));
        assert!(class_accepts(ValueClass::Any, &JsonValue::Bool));
        assert!(!class_accepts(ValueClass::Str, &JsonValue::Int));
    }

    #[test]
    fn render_schema_json_is_stable_and_one_line_per_field() {
        let srcs = [(
            "crates/core/src/a.rs",
            r#"fn a(ctx: &C, frame: u64) {
                ctx.emit(TraceRecord::new(t, "h", "rotation").with("frame", frame));
            }"#,
        )];
        let (schema, _) = schema_of(&srcs);
        let json = render_schema_json(&schema);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("{\"name\": \"frame\", \"class\": \"int\", \"required\": true}"));
        assert_eq!(json, render_schema_json(&schema), "deterministic render");
    }
}
