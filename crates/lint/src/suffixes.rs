//! The unit-suffix table shared by the two unit-discipline rules.
//!
//! D007 (bare `f64` under a unit-suffixed name) needs *suffix → quantity
//! type* to suggest the replacement; D008 (mixed-suffix arithmetic) needs
//! *suffix → dimension* to tell scale mixing (`s` × `h`, both time) from
//! legitimate compound products (`ma` × `h` → charge). Both used to carry
//! their own copy of the suffix list, which is a latent false-negative
//! bug: a suffix added to one copy but not the other silently weakens the
//! rule that missed it. This module is the single source of truth; a unit
//! test asserts both rules consume it.

/// One recognized unit suffix: the identifier tail (`capacity_mah` →
/// `mah`), the `dles-units` quantity a bare `f64` should become, and the
/// physical dimension used for the D008 scale-mixing check.
pub struct UnitSuffix {
    pub suffix: &'static str,
    pub quantity: &'static str,
    pub dimension: &'static str,
}

/// Every suffix the unit rules recognize. Keep LINTS.md's suffix table in
/// sync when adding a row.
pub const UNIT_SUFFIXES: [UnitSuffix; 16] = [
    u("s", "Seconds", "time"),
    u("ms", "Seconds", "time"),
    u("us", "Seconds", "time"),
    u("h", "Hours", "time"),
    u("ma", "MilliAmps", "current"),
    u("mah", "MilliAmpHours", "charge"),
    u("mas", "MilliAmpSeconds", "charge"),
    u("mhz", "Hertz", "frequency"),
    u("hz", "Hertz", "frequency"),
    u("v", "Volts", "voltage"),
    u("mv", "Volts", "voltage"),
    u("w", "Watts", "power"),
    u("mw", "MilliWatts", "power"),
    u("j", "Joules", "energy"),
    u("mj", "MilliJoules", "energy"),
    u("soc", "StateOfCharge", "state-of-charge"),
];

const fn u(suffix: &'static str, quantity: &'static str, dimension: &'static str) -> UnitSuffix {
    UnitSuffix {
        suffix,
        quantity,
        dimension,
    }
}

/// The unit suffix of `name` (`capacity_mah` → `mah`), if it has one.
/// The stem must be non-empty so a bare `s` or `h` never counts.
pub fn unit_suffix(name: &str) -> Option<&'static str> {
    let (stem, suf) = name.rsplit_once('_')?;
    if stem.is_empty() {
        return None;
    }
    UNIT_SUFFIXES
        .iter()
        .find(|u| u.suffix == suf)
        .map(|u| u.suffix)
}

/// The `dles-units` quantity type D007 suggests for a suffix.
pub fn suggested_type(suffix: &str) -> &'static str {
    UNIT_SUFFIXES
        .iter()
        .find(|u| u.suffix == suffix)
        .map(|u| u.quantity)
        .unwrap_or("a dles-units quantity")
}

/// Dimension group of a suffix: `*`/`/` between *different* suffixes of
/// the *same* dimension (seconds × hours) is a scale-mixing bug, while
/// cross-dimension products (mA × h) are how compound units are built.
pub fn unit_dimension(suffix: &str) -> &'static str {
    UNIT_SUFFIXES
        .iter()
        .find(|u| u.suffix == suffix)
        .map(|u| u.dimension)
        .unwrap_or("?")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The dedup guarantee: D007's type suggestion and D008's dimension
    /// lookup answer from the *same* table row for every suffix, so the
    /// two rules cannot drift apart (the pre-refactor failure mode was a
    /// suffix present in one rule's copy and absent from the other's).
    #[test]
    fn both_rules_consume_the_shared_table() {
        for row in &UNIT_SUFFIXES {
            // D007's lookup path.
            assert_eq!(
                unit_suffix(&format!("value_{}", row.suffix)),
                Some(row.suffix),
                "suffix `{}` must be recognized",
                row.suffix
            );
            assert_eq!(suggested_type(row.suffix), row.quantity);
            // D008's lookup path: every recognized suffix has a real
            // dimension — `?` would silently disable scale-mix checking.
            assert_eq!(unit_dimension(row.suffix), row.dimension);
            assert_ne!(
                row.dimension, "?",
                "suffix `{}` lacks a dimension",
                row.suffix
            );
        }
        // Unknown suffixes resolve to the explicit fallbacks.
        assert_eq!(unit_suffix("peak_secs"), None);
        assert_eq!(unit_dimension("secs"), "?");
    }

    #[test]
    fn suffix_requires_a_nonempty_stem() {
        assert_eq!(unit_suffix("capacity_mah"), Some("mah"));
        assert_eq!(unit_suffix("threshold_soc"), Some("soc"));
        assert_eq!(unit_suffix("t_s"), Some("s"));
        assert_eq!(unit_suffix("mah"), None);
        assert_eq!(unit_suffix("_s"), None);
    }
}
