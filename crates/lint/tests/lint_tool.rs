//! End-to-end tests for the `dles-lint` binary: every bad fixture must
//! fail `--deny` with the expected rule, the clean fixture and the real
//! workspace must pass, and `--json` must produce the CI artifact shape.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_lint(cwd: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dles-lint"))
        .current_dir(cwd)
        .args(args)
        .output()
        .expect("dles-lint runs")
}

fn deny_fixture(name: &str) -> (Output, String) {
    let path = fixture(name);
    let out = run_lint(
        &workspace_root(),
        &["--deny", path.to_str().expect("utf-8 path")],
    );
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf-8 output");
    (out, stdout)
}

#[test]
fn workspace_is_clean_in_deny_mode() {
    let out = run_lint(&workspace_root(), &["--deny"]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(
        out.status.success(),
        "dles-lint --deny failed on the workspace:\n{stdout}"
    );
    assert!(stdout.contains("0 violation(s)"), "summary: {stdout}");
}

#[test]
fn clean_fixture_passes_deny() {
    let (out, stdout) = deny_fixture("clean.rs");
    assert!(out.status.success(), "clean fixture flagged:\n{stdout}");
    // Its two justified allows must be accepted, not counted as violations.
    assert!(stdout.contains("2 allowed"), "summary: {stdout}");
}

#[test]
fn each_bad_fixture_fails_deny_with_its_rule() {
    let cases = [
        ("d001_wallclock.rs", "D001", 3),
        ("d002_entropy.rs", "D002", 3),
        ("d003_hashmap.rs", "D003", 3),
        ("d004_partial_cmp.rs", "D004", 2),
        ("pipeline.rs", "D005", 2),
        ("d000_bad_allow.rs", "D000", 3),
        ("d006_kind.rs", "D006", 2),
    ];
    for (name, rule, expected) in cases {
        let (out, stdout) = deny_fixture(name);
        assert!(
            !out.status.success(),
            "{name} should fail --deny but passed:\n{stdout}"
        );
        let hits = stdout.matches(rule).count();
        assert!(
            hits >= expected,
            "{name}: expected ≥{expected} {rule} findings, got {hits}:\n{stdout}"
        );
    }
}

#[test]
fn bad_allow_fixture_still_reports_the_unsuppressed_rule() {
    // A reasonless allow must not suppress: the raw D003 stays visible.
    let (_, stdout) = deny_fixture("d000_bad_allow.rs");
    assert!(stdout.contains("D003"), "missing D003 in:\n{stdout}");
    assert!(
        stdout.contains("without a reason"),
        "missing hygiene message:\n{stdout}"
    );
}

#[test]
fn d005_is_scoped_to_hot_path_file_names() {
    // The same unwrap-bearing code under a non-hot-path name passes.
    let (out, stdout) = deny_fixture("clean.rs");
    assert!(out.status.success());
    assert!(!stdout.contains("D005"), "D005 leaked: {stdout}");
}

#[test]
fn json_output_has_findings_and_summary() {
    let path = fixture("d003_hashmap.rs");
    let out = run_lint(
        &workspace_root(),
        &["--json", path.to_str().expect("utf-8 path")],
    );
    assert!(out.status.success(), "--json without --deny must exit 0");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("\"findings\""), "{stdout}");
    assert!(stdout.contains("\"rule\": \"D003\""), "{stdout}");
    assert!(stdout.contains("\"by_rule\": {\"D003\": 4}"), "{stdout}");
    assert!(stdout.contains("\"files_scanned\": 1"), "{stdout}");
}

#[test]
fn non_deny_mode_reports_but_exits_zero() {
    let path = fixture("d001_wallclock.rs");
    let out = run_lint(&workspace_root(), &[path.to_str().expect("utf-8 path")]);
    assert!(out.status.success(), "report mode must not fail the build");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("D001"), "{stdout}");
}

#[test]
fn workspace_json_report_shape_for_ci_artifact() {
    let out = run_lint(&workspace_root(), &["--deny", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("\"violations\": 0"), "{stdout}");
    assert!(stdout.contains("\"summary\""), "{stdout}");
}
