//! End-to-end tests for the `dles-lint` binary: every bad fixture must
//! fail `--deny` with the expected rule, the clean fixture and the real
//! workspace must pass, and `--json` must produce the CI artifact shape.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_lint(cwd: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dles-lint"))
        .current_dir(cwd)
        .args(args)
        .output()
        .expect("dles-lint runs")
}

fn deny_fixture(name: &str) -> (Output, String) {
    let path = fixture(name);
    let out = run_lint(
        &workspace_root(),
        &["--deny", path.to_str().expect("utf-8 path")],
    );
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf-8 output");
    (out, stdout)
}

#[test]
fn workspace_is_clean_in_deny_mode() {
    let out = run_lint(&workspace_root(), &["--deny"]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(
        out.status.success(),
        "dles-lint --deny failed on the workspace:\n{stdout}"
    );
    assert!(stdout.contains("0 violation(s)"), "summary: {stdout}");
}

#[test]
fn clean_fixture_passes_deny() {
    let (out, stdout) = deny_fixture("clean.rs");
    assert!(out.status.success(), "clean fixture flagged:\n{stdout}");
    // Its two justified allows must be accepted, not counted as violations.
    assert!(stdout.contains("2 allowed"), "summary: {stdout}");
}

#[test]
fn each_bad_fixture_fails_deny_with_its_rule() {
    let cases = [
        ("d001_wallclock.rs", "D001", 3),
        ("d002_entropy.rs", "D002", 3),
        ("d003_hashmap.rs", "D003", 3),
        ("d004_partial_cmp.rs", "D004", 2),
        ("pipeline.rs", "D005", 2),
        ("d000_bad_allow.rs", "D000", 3),
        // The non-literal kind is D006; the undocumented literal kind is
        // now D013's field-level schema check.
        ("d006_kind.rs", "D006", 1),
        ("d006_kind.rs", "D013", 1),
        // The unit-discipline fixtures live under a `crates/core/`
        // subdirectory because D007/D008 apply only to unit-bearing
        // crate paths.
        ("crates/core/d007_bare_units.rs", "D007", 5),
        ("crates/core/d008_mixed_units.rs", "D008", 3),
        // Interprocedural rules: reachable panic, counter-key
        // discipline, lock-order cycle plus lock-across-par_map.
        ("d009_reach.rs", "D009", 1),
        ("d010_counters.rs", "D010", 2),
        ("d011_lock_cycle.rs", "D011", 3),
        // Schema rules: incomparable field sets + a computed field key,
        // and an undocumented kind + an undocumented field.
        ("d012_fields.rs", "D012", 2),
        ("d013_docs.rs", "D013", 2),
        // Dataflow rules: alloc sinks in hot loops (root + one call
        // below), and a loop-invariant rebuild.
        ("d015_alloc.rs", "D015", 2),
        ("d016_hoist.rs", "D016", 1),
    ];
    for (name, rule, expected) in cases {
        let (out, stdout) = deny_fixture(name);
        assert!(
            !out.status.success(),
            "{name} should fail --deny but passed:\n{stdout}"
        );
        let hits = stdout.matches(rule).count();
        assert!(
            hits >= expected,
            "{name}: expected ≥{expected} {rule} findings, got {hits}:\n{stdout}"
        );
    }
}

#[test]
fn bad_allow_fixture_still_reports_the_unsuppressed_rule() {
    // A reasonless allow must not suppress: the raw D003 stays visible.
    let (_, stdout) = deny_fixture("d000_bad_allow.rs");
    assert!(stdout.contains("D003"), "missing D003 in:\n{stdout}");
    assert!(
        stdout.contains("without a reason"),
        "missing hygiene message:\n{stdout}"
    );
}

#[test]
fn d005_is_scoped_to_hot_path_file_names() {
    // The same unwrap-bearing code under a non-hot-path name passes.
    let (out, stdout) = deny_fixture("clean.rs");
    assert!(out.status.success());
    assert!(!stdout.contains("D005"), "D005 leaked: {stdout}");
}

#[test]
fn json_output_has_findings_and_summary() {
    let path = fixture("d003_hashmap.rs");
    let out = run_lint(
        &workspace_root(),
        &["--json", path.to_str().expect("utf-8 path")],
    );
    assert!(out.status.success(), "--json without --deny must exit 0");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("\"findings\""), "{stdout}");
    assert!(stdout.contains("\"rule\": \"D003\""), "{stdout}");
    // by_rule lists every rule, zero counts included, so CI can diff runs.
    assert!(
        stdout.contains(
            "\"by_rule\": {\"D000\": 0, \"D001\": 0, \"D002\": 0, \"D003\": 4, \
             \"D004\": 0, \"D005\": 0, \"D006\": 0, \"D007\": 0, \"D008\": 0, \
             \"D009\": 0, \"D010\": 0, \"D011\": 0, \"D012\": 0, \"D013\": 0, \
             \"D014\": 0, \"D015\": 0, \"D016\": 0}"
        ),
        "{stdout}"
    );
    assert!(stdout.contains("\"files_scanned\": 1"), "{stdout}");
}

#[test]
fn lexer_hardening_fixture_is_clean() {
    // Shebang line, byte-char literal, float suffixes and signed
    // exponents must lex without producing phantom findings.
    let (out, stdout) = deny_fixture("lexer_hardening.rs");
    assert!(out.status.success(), "hardening fixture flagged:\n{stdout}");
    assert!(stdout.contains("0 violation(s)"), "summary: {stdout}");
}

#[test]
fn d007_exempts_constructors_returning_self() {
    // The fixture's `new` takes bare f64 under suffixed names but returns
    // Self; none of its lines (25+) may appear among the findings.
    let (_, stdout) = deny_fixture("crates/core/d007_bare_units.rs");
    for line in stdout.lines().filter(|l| l.contains("D007")) {
        let n: u32 = line
            .split(':')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("line number in finding");
        assert!(n < 23, "constructor param flagged: {line}");
    }
}

#[test]
fn d008_does_not_flag_compound_products_or_conversions() {
    let (_, stdout) = deny_fixture("crates/core/d008_mixed_units.rs");
    assert!(
        !stdout.contains("ok_product") && !stdout.contains("`i_ma` * `dur_h`"),
        "compound-unit product flagged:\n{stdout}"
    );
    assert_eq!(
        stdout.matches("D008").count(),
        3,
        "expected exactly 3 D008 findings:\n{stdout}"
    );
}

#[test]
fn non_deny_mode_reports_but_exits_zero() {
    let path = fixture("d001_wallclock.rs");
    let out = run_lint(&workspace_root(), &[path.to_str().expect("utf-8 path")]);
    assert!(out.status.success(), "report mode must not fail the build");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("D001"), "{stdout}");
}

#[test]
fn workspace_json_report_shape_for_ci_artifact() {
    let out = run_lint(&workspace_root(), &["--deny", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("\"violations\": 0"), "{stdout}");
    assert!(stdout.contains("\"summary\""), "{stdout}");
}

#[test]
fn d009_finding_renders_the_full_call_chain() {
    // The sink is two calls below the root; the message must name the
    // sink site and walk the whole chain from the root down to it.
    let (out, stdout) = deny_fixture("d009_reach.rs");
    assert!(!out.status.success(), "reachable unwrap passed:\n{stdout}");
    assert!(
        stdout.contains(
            "panic source `unwrap` at crates/lint/tests/fixtures/d009_reach.rs:15 \
             is reachable from hot-path root `driver` — chain: driver → helper → inner"
        ),
        "chain message missing or wrong:\n{stdout}"
    );
    // The finding anchors on the root frame, where an allow would go.
    assert!(
        stdout.contains("fixtures/d009_reach.rs:6: D009"),
        "finding not at the root fn line:\n{stdout}"
    );
}

#[test]
fn d009_allow_on_the_root_frame_suppresses_the_chain() {
    let (out, stdout) = deny_fixture("d009_allowed.rs");
    assert!(out.status.success(), "root-frame allow ignored:\n{stdout}");
    assert!(
        stdout.contains("0 violation(s), 1 allowed"),
        "summary: {stdout}"
    );
}

#[test]
fn d010_reports_undocumented_and_non_literal_keys() {
    let (out, stdout) = deny_fixture("d010_counters.rs");
    assert!(!out.status.success(), "bad counter keys passed:\n{stdout}");
    assert!(
        stdout.contains(
            "counter key `fixture_unregistered_key` is not documented in \
             README's counter-key registry"
        ),
        "undocumented-key message missing:\n{stdout}"
    );
    assert!(
        stdout.contains("counter key is not a string literal"),
        "non-literal-key message missing:\n{stdout}"
    );
}

#[test]
fn d010_documented_match_arm_and_allowed_keys_pass() {
    // Registry-listed keys (including per-arm keys of a `match` argument)
    // are clean; the fixture-local key rides on an explicit allow.
    let (out, stdout) = deny_fixture("d010_counters_ok.rs");
    assert!(out.status.success(), "documented keys flagged:\n{stdout}");
    assert!(
        stdout.contains("0 violation(s), 1 allowed"),
        "summary: {stdout}"
    );
}

#[test]
fn d011_reports_cycle_and_lock_across_par_map() {
    let (out, stdout) = deny_fixture("d011_lock_cycle.rs");
    assert!(!out.status.success(), "lock-order cycle passed:\n{stdout}");
    assert!(
        stdout.contains("cycle: cache → stats → cache"),
        "cycle path missing:\n{stdout}"
    );
    assert!(
        stdout.contains("lock `cache` is held across the `par_map` boundary"),
        "par_map-under-lock message missing:\n{stdout}"
    );
}

#[test]
fn d011_consistent_order_and_scoped_guards_pass() {
    let (out, stdout) = deny_fixture("d011_lock_ok.rs");
    assert!(out.status.success(), "safe locking flagged:\n{stdout}");
    assert!(stdout.contains("0 violation(s)"), "summary: {stdout}");
}

#[test]
fn doc_comment_fixture_with_fake_violations_is_clean() {
    // Inner docs (`//!`, `/*! … */`) and code fences quoting real
    // violations are comment tokens end to end — nothing may fire.
    let (out, stdout) = deny_fixture("doc_comments.rs");
    assert!(
        out.status.success(),
        "doc text produced findings:\n{stdout}"
    );
    assert!(
        stdout.contains("0 violation(s), 0 allowed"),
        "summary: {stdout}"
    );
}

#[test]
fn exit_code_is_zero_on_a_clean_deny_run() {
    let (out, _) = deny_fixture("clean.rs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn exit_code_is_one_on_deny_violations() {
    let (out, _) = deny_fixture("d001_wallclock.rs");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn exit_code_is_two_on_unreadable_input() {
    // A missing file is a broken scan, not a red tree: exit 2 even
    // without --deny, so CI never mistakes a partial run for a pass.
    let out = run_lint(
        &workspace_root(),
        &["crates/lint/tests/fixtures/no_such_file.rs"],
    );
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn exit_code_is_two_on_unknown_flag() {
    let out = run_lint(&workspace_root(), &["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn d012_subset_sites_and_conditional_fields_pass() {
    let (out, stdout) = deny_fixture("d012_fields_ok.rs");
    assert!(out.status.success(), "clean D012 shapes flagged:\n{stdout}");
    assert!(stdout.contains("0 violation(s)"), "summary: {stdout}");
}

#[test]
fn d012_reports_incomparable_sets_and_non_literal_key() {
    let (out, stdout) = deny_fixture("d012_fields.rs");
    assert!(!out.status.success(), "bad field sets passed:\n{stdout}");
    assert!(
        stdout.contains("emit sites of trace kind `rotation` disagree on required fields"),
        "incomparable-set message missing:\n{stdout}"
    );
    assert!(
        stdout.contains("trace field key is not a string literal"),
        "non-literal-key message missing:\n{stdout}"
    );
}

#[test]
fn d013_reports_unknown_kind_and_unknown_field() {
    let (out, stdout) = deny_fixture("d013_docs.rs");
    assert!(!out.status.success(), "doc drift passed:\n{stdout}");
    assert!(
        stdout.contains(
            "trace kind `schema_fixture_unknown_kind` is not documented in \
             README.md's trace-schema table"
        ),
        "unknown-kind message missing:\n{stdout}"
    );
    assert!(
        stdout.contains(
            "trace field `fixture_undocumented_field` of kind `rotation` is not \
             documented in README.md's trace-schema table"
        ),
        "unknown-field message missing:\n{stdout}"
    );
}

#[test]
fn d014_flags_every_conformance_break_in_the_malformed_golden() {
    // Library-driven: build a schema from a synthetic emitter, then check
    // the malformed golden fixture against it. One conforming line, then
    // unknown kind / unknown field / class mismatch / missing required
    // field / unparseable JSON.
    let src = r#"fn f(ctx: &C, frame: u64, rotations: u64) {
        ctx.emit(TraceRecord::new(ctx.now(), "host", "rotation")
            .with("frame", frame)
            .with("rotations", rotations));
    }"#;
    let scan = dles_lint::scan_file("crates/core/src/rotation.rs", src);
    let (schema, findings) = dles_lint::schema::analyze(&[scan.schema], None, false, Vec::new());
    assert!(
        findings.is_empty(),
        "synthetic emitter flagged: {findings:?}"
    );
    let (findings, io_errors) = dles_lint::schema::check_goldens(
        &schema,
        &workspace_root(),
        "crates/lint/tests/fixtures/goldens",
    );
    assert_eq!(io_errors, 0);
    let msgs: Vec<(u32, &str)> = findings
        .iter()
        .map(|f| {
            assert_eq!(f.rule, dles_lint::RuleId::D014);
            assert_eq!(f.path, "crates/lint/tests/fixtures/goldens/malformed.jsonl");
            (f.line, f.message.as_str())
        })
        .collect();
    assert_eq!(msgs.len(), 5, "{msgs:?}");
    assert!(msgs[0].0 == 2 && msgs[0].1.contains("unknown trace kind `mystery`"));
    assert!(msgs[1].0 == 3 && msgs[1].1.contains("field `ghost` is not in the schema"));
    assert!(msgs[2].0 == 4 && msgs[2].1.contains("is str but the schema says int"));
    assert!(msgs[3].0 == 5 && msgs[3].1.contains("missing required field `frame`"));
    assert!(msgs[4].0 == 6 && msgs[4].1.contains("malformed JSONL record"));
}

#[test]
fn check_goldens_passes_on_the_committed_goldens() {
    let out = run_lint(&workspace_root(), &["--deny", "--check-goldens"]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(
        out.status.success(),
        "committed goldens do not conform to the schema:\n{stdout}"
    );
    assert!(stdout.contains("0 violation(s)"), "summary: {stdout}");
}

#[test]
fn check_goldens_requires_a_full_workspace_scan() {
    let path = fixture("clean.rs");
    let out = run_lint(
        &workspace_root(),
        &["--check-goldens", path.to_str().expect("utf-8 path")],
    );
    assert_eq!(
        out.status.code(),
        Some(2),
        "partial schema must not judge goldens"
    );
}

#[test]
fn schema_dump_json_matches_the_committed_lockfile() {
    // Cargo.lock discipline: a fresh dump must be byte-identical to the
    // committed trace_schema.json, or the change ships a lockfile update.
    let out = run_lint(&workspace_root(), &["--schema-dump", "--json"]);
    assert!(out.status.success());
    let fresh = String::from_utf8(out.stdout).expect("utf-8 output");
    let committed = std::fs::read_to_string(workspace_root().join("trace_schema.json"))
        .expect("trace_schema.json is committed at the workspace root");
    assert_eq!(
        fresh, committed,
        "trace_schema.json is stale — rerun `cargo run -p lint -- --schema-dump --json`"
    );
}

#[test]
fn schema_drift_is_visible_in_the_lockfile_render() {
    // A field added to an emitter without touching anything else must
    // change the dump — this is what the CI lockfile diff trips on.
    let base = r#"fn f(ctx: &C, frame: u64) {
        ctx.emit(TraceRecord::new(ctx.now(), "host", "rotation").with("frame", frame));
    }"#;
    let drifted = r#"fn f(ctx: &C, frame: u64) {
        ctx.emit(TraceRecord::new(ctx.now(), "host", "rotation")
            .with("frame", frame)
            .with("extra_field", 1u64));
    }"#;
    let render = |src: &str| {
        let scan = dles_lint::scan_file("crates/core/src/rotation.rs", src);
        let (schema, _) = dles_lint::schema::analyze(&[scan.schema], None, false, Vec::new());
        dles_lint::render_schema_json(&schema)
    };
    let (a, b) = (render(base), render(drifted));
    assert_ne!(a, b, "drifted emitter rendered identically");
    assert!(!a.contains("extra_field") && b.contains("extra_field"));
}

#[test]
fn schema_dump_human_lists_kinds_and_sites() {
    let out = run_lint(&workspace_root(), &["--schema-dump"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(
        stdout.contains("state_transition (3 emit site(s))"),
        "{stdout}"
    );
    assert!(stdout.contains("10 kind(s)"), "{stdout}");
}

#[test]
fn workspace_json_report_has_the_schema_section() {
    let out = run_lint(&workspace_root(), &["--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("\"schema\": {"), "{stdout}");
    assert!(stdout.contains("\"kinds\": 10"), "{stdout}");
    // The transaction kind merges the constructor helper's chain fields:
    // 4 required from Transaction::trace_record + 2 optional caller-side.
    assert!(
        stdout.contains("\"transaction\": {\"fields\": 6, \"emit_sites\": 1}"),
        "{stdout}"
    );
}

#[test]
fn d015_finding_renders_chain_and_loop_depth() {
    let (out, stdout) = deny_fixture("d015_alloc.rs");
    assert_eq!(out.status.code(), Some(1), "loop sinks passed:\n{stdout}");
    // Depth-1 sink in the root itself: single-frame chain.
    assert!(
        stdout.contains(
            "allocation sink `to_string` inside a loop (depth 1) on a hot path — \
             chain: drive"
        ),
        "root-frame sink message missing:\n{stdout}"
    );
    // Depth-2 sink one call below: the chain walks root → callee.
    assert!(
        stdout.contains(
            "allocation sink `format!` inside a loop (depth 2) on a hot path — \
             chain: drive → shout"
        ),
        "callee sink message missing:\n{stdout}"
    );
    // Unlike D009, the finding anchors on the sink's own line.
    assert!(
        stdout.contains("fixtures/d015_alloc.rs:11: D015"),
        "finding not at the sink line:\n{stdout}"
    );
    assert!(
        stdout.contains("fixtures/d015_alloc.rs:21: D015"),
        "finding not at the nested sink line:\n{stdout}"
    );
}

#[test]
fn d015_buffer_reuse_passes_and_allow_is_honored() {
    // `write!` into a reused buffer is not a sink; the contractual clone
    // rides its above-line allow. Exit code 0 is the clean --deny path.
    let (out, stdout) = deny_fixture("d015_alloc_ok.rs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean fixture flagged:\n{stdout}"
    );
    assert!(
        stdout.contains("0 violation(s), 1 allowed"),
        "summary: {stdout}"
    );
}

#[test]
fn d016_finding_renders_the_hoist_suggestion() {
    let (out, stdout) = deny_fixture("d016_hoist.rs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "invariant rebuild passed:\n{stdout}"
    );
    assert!(
        stdout.contains(
            "`let tag` rebuilds loop-invariant `format!` every iteration — \
             hoist it above the loop at line 14 (chain: drive → chew)"
        ),
        "hoist suggestion missing:\n{stdout}"
    );
    assert!(
        stdout.contains("fixtures/d016_hoist.rs:15: D016"),
        "finding not at the let line:\n{stdout}"
    );
    // The loop-variable-dependent `var` is D015-only, never D016.
    assert!(
        !stdout.contains("`let var` rebuilds"),
        "loop-dependent let flagged as invariant:\n{stdout}"
    );
}

#[test]
fn graph_dump_shows_roots_edges_and_sinks() {
    let path = fixture("d009_reach.rs");
    let out = run_lint(
        &workspace_root(),
        &["--graph-dump", path.to_str().expect("utf-8 path")],
    );
    assert!(out.status.success(), "--graph-dump must exit 0 when clean");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(
        stdout.contains("file crates/lint/tests/fixtures/d009_reach.rs"),
        "{stdout}"
    );
    assert!(stdout.contains("fn driver @6 [root]"), "{stdout}");
    assert!(
        stdout.contains("call helper @7 -> crates/lint/tests/fixtures/d009_reach.rs::helper"),
        "{stdout}"
    );
    assert!(
        stdout.contains("sink panic source `unwrap` @15"),
        "{stdout}"
    );
}
