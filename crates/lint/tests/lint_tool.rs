//! End-to-end tests for the `dles-lint` binary: every bad fixture must
//! fail `--deny` with the expected rule, the clean fixture and the real
//! workspace must pass, and `--json` must produce the CI artifact shape.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_lint(cwd: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dles-lint"))
        .current_dir(cwd)
        .args(args)
        .output()
        .expect("dles-lint runs")
}

fn deny_fixture(name: &str) -> (Output, String) {
    let path = fixture(name);
    let out = run_lint(
        &workspace_root(),
        &["--deny", path.to_str().expect("utf-8 path")],
    );
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf-8 output");
    (out, stdout)
}

#[test]
fn workspace_is_clean_in_deny_mode() {
    let out = run_lint(&workspace_root(), &["--deny"]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(
        out.status.success(),
        "dles-lint --deny failed on the workspace:\n{stdout}"
    );
    assert!(stdout.contains("0 violation(s)"), "summary: {stdout}");
}

#[test]
fn clean_fixture_passes_deny() {
    let (out, stdout) = deny_fixture("clean.rs");
    assert!(out.status.success(), "clean fixture flagged:\n{stdout}");
    // Its two justified allows must be accepted, not counted as violations.
    assert!(stdout.contains("2 allowed"), "summary: {stdout}");
}

#[test]
fn each_bad_fixture_fails_deny_with_its_rule() {
    let cases = [
        ("d001_wallclock.rs", "D001", 3),
        ("d002_entropy.rs", "D002", 3),
        ("d003_hashmap.rs", "D003", 3),
        ("d004_partial_cmp.rs", "D004", 2),
        ("pipeline.rs", "D005", 2),
        ("d000_bad_allow.rs", "D000", 3),
        ("d006_kind.rs", "D006", 2),
        // The unit-discipline fixtures live under a `crates/core/`
        // subdirectory because D007/D008 apply only to unit-bearing
        // crate paths.
        ("crates/core/d007_bare_units.rs", "D007", 5),
        ("crates/core/d008_mixed_units.rs", "D008", 3),
    ];
    for (name, rule, expected) in cases {
        let (out, stdout) = deny_fixture(name);
        assert!(
            !out.status.success(),
            "{name} should fail --deny but passed:\n{stdout}"
        );
        let hits = stdout.matches(rule).count();
        assert!(
            hits >= expected,
            "{name}: expected ≥{expected} {rule} findings, got {hits}:\n{stdout}"
        );
    }
}

#[test]
fn bad_allow_fixture_still_reports_the_unsuppressed_rule() {
    // A reasonless allow must not suppress: the raw D003 stays visible.
    let (_, stdout) = deny_fixture("d000_bad_allow.rs");
    assert!(stdout.contains("D003"), "missing D003 in:\n{stdout}");
    assert!(
        stdout.contains("without a reason"),
        "missing hygiene message:\n{stdout}"
    );
}

#[test]
fn d005_is_scoped_to_hot_path_file_names() {
    // The same unwrap-bearing code under a non-hot-path name passes.
    let (out, stdout) = deny_fixture("clean.rs");
    assert!(out.status.success());
    assert!(!stdout.contains("D005"), "D005 leaked: {stdout}");
}

#[test]
fn json_output_has_findings_and_summary() {
    let path = fixture("d003_hashmap.rs");
    let out = run_lint(
        &workspace_root(),
        &["--json", path.to_str().expect("utf-8 path")],
    );
    assert!(out.status.success(), "--json without --deny must exit 0");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("\"findings\""), "{stdout}");
    assert!(stdout.contains("\"rule\": \"D003\""), "{stdout}");
    // by_rule lists every rule, zero counts included, so CI can diff runs.
    assert!(
        stdout.contains(
            "\"by_rule\": {\"D000\": 0, \"D001\": 0, \"D002\": 0, \"D003\": 4, \
             \"D004\": 0, \"D005\": 0, \"D006\": 0, \"D007\": 0, \"D008\": 0}"
        ),
        "{stdout}"
    );
    assert!(stdout.contains("\"files_scanned\": 1"), "{stdout}");
}

#[test]
fn lexer_hardening_fixture_is_clean() {
    // Shebang line, byte-char literal, float suffixes and signed
    // exponents must lex without producing phantom findings.
    let (out, stdout) = deny_fixture("lexer_hardening.rs");
    assert!(out.status.success(), "hardening fixture flagged:\n{stdout}");
    assert!(stdout.contains("0 violation(s)"), "summary: {stdout}");
}

#[test]
fn d007_exempts_constructors_returning_self() {
    // The fixture's `new` takes bare f64 under suffixed names but returns
    // Self; none of its lines (25+) may appear among the findings.
    let (_, stdout) = deny_fixture("crates/core/d007_bare_units.rs");
    for line in stdout.lines().filter(|l| l.contains("D007")) {
        let n: u32 = line
            .split(':')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("line number in finding");
        assert!(n < 23, "constructor param flagged: {line}");
    }
}

#[test]
fn d008_does_not_flag_compound_products_or_conversions() {
    let (_, stdout) = deny_fixture("crates/core/d008_mixed_units.rs");
    assert!(
        !stdout.contains("ok_product") && !stdout.contains("`i_ma` * `dur_h`"),
        "compound-unit product flagged:\n{stdout}"
    );
    assert_eq!(
        stdout.matches("D008").count(),
        3,
        "expected exactly 3 D008 findings:\n{stdout}"
    );
}

#[test]
fn non_deny_mode_reports_but_exits_zero() {
    let path = fixture("d001_wallclock.rs");
    let out = run_lint(&workspace_root(), &[path.to_str().expect("utf-8 path")]);
    assert!(out.status.success(), "report mode must not fail the build");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("D001"), "{stdout}");
}

#[test]
fn workspace_json_report_shape_for_ci_artifact() {
    let out = run_lint(&workspace_root(), &["--deny", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(stdout.contains("\"violations\": 0"), "{stdout}");
    assert!(stdout.contains("\"summary\""), "{stdout}");
}
