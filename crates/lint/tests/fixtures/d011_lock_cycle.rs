//! D011 fixture: lock-order violations — two functions acquiring the
//! same pair of locks in opposite orders (a deadlock waiting for the
//! right interleaving), and a lock held across a `par_map` boundary.

impl Engine {
    pub fn forward(&self) {
        let cache = self.cache.lock();
        let stats = self.stats.lock();
        drop((cache, stats));
    }

    pub fn backward(&self) {
        let stats = self.stats.lock();
        let cache = self.cache.lock();
        drop((stats, cache));
    }

    pub fn fan_out(&self, jobs: usize) {
        let guard = self.cache.lock();
        par_map(jobs, 0, |i| i * 2);
        drop(guard);
    }
}
