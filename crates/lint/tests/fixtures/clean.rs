//! Fixture: constructs that look like violations but are not — the lexer
//! and rules must produce ZERO violations for this file.
//!
//! Prose mentions of HashMap, Instant::now() and thread_rng() in doc
//! comments are fine, as is /* SystemTime in a block comment */.

use std::cmp::Ordering;
use std::collections::HashSet; // lint: allow(D003) — fixture: justified allows are accepted

/// Banned names inside string literals are data, not code.
pub fn strings() -> Vec<String> {
    vec![
        "use std::collections::HashMap;".to_owned(),
        String::from("Instant::now() and SystemTime::now()"),
        r#"raw string: thread_rng() and OsRng "quoted" too"#.to_owned(),
        r##"nested raw # with partial_cmp().unwrap()"##.to_owned(),
    ]
}

/* Nested block comments:
   /* inner HashMap Instant thread_rng */
   still inside the outer comment. */

/// Char literals and lifetimes must not confuse the string lexer.
pub fn chars<'a>(input: &'a str) -> (char, char, char, &'a str) {
    let quote = '"';
    let escaped = '\'';
    let newline = '\n';
    (quote, escaped, newline, input)
}

pub struct Score(pub u64);

impl PartialEq for Score {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Score {}
impl PartialOrd for Score {
    /// Defining `partial_cmp` is fine; only *calling* it on floats is D004.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Score {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

/// Integer comparisons never need total_cmp; unwrap outside the
/// event-dispatch files is not D005's business.
pub fn sorted(mut xs: Vec<u64>) -> Vec<u64> {
    let mut seen = HashSet::new(); // lint: allow(D003) — fixture: membership only, never iterated
    xs.sort_unstable();
    xs.retain(|x| seen.insert(*x));
    let first: Option<&u64> = xs.first();
    let _ = first.copied().unwrap_or_default();
    xs
}

#[cfg(test)]
mod tests {
    /// Wall-clock and entropy in test modules are tolerated (D001/D002
    /// skip `#[cfg(test)]`); determinism of shipped simulation code is
    /// what the rules protect.
    #[test]
    fn wall_clock_in_tests() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 3600);
    }
}
