//! Fixture: float ordering through partial_cmp must flag D004 (two sites).

pub fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs
}

pub fn best(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("NaN"))
}
