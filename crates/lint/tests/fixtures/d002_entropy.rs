//! Fixture: entropy sources and env-dependent seeds must flag D002.

pub fn bad_seed() -> u64 {
    let mut rng = thread_rng();
    let os = OsRng;
    let from_env: u64 = std::env::var("DLES_SEED").unwrap().parse().unwrap();
    let _ = (&mut rng, os);
    from_env
}
