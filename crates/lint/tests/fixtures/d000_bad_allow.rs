//! Fixture: allow-comment hygiene violations (all three D000 shapes).

use std::collections::HashMap; // lint: allow(D003)

pub fn stale() {} // lint: allow(D001) — nothing on this line needs an allow

pub fn unknown() {} // lint: allow(D999) — no such rule exists

pub fn user(m: &HashMap<u32, u32>) -> usize {
    m.len()
}
