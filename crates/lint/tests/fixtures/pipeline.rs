//! Fixture: named like the event-dispatch hot path, so naked unwrap and
//! expect in handler code must flag D005 (two sites). The test module at
//! the bottom must NOT flag.

pub fn handle_transfer(share: Option<usize>, level: Option<f64>) -> f64 {
    let s = share.unwrap();
    let l = level.expect("a data transfer always carries a level");
    s as f64 * l
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
