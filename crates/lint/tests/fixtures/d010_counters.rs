//! D010 fixture: counter-key discipline violations — a key that is
//! missing from README's counter-key registry, and a key that is not a
//! string literal at all (so the registry cross-check cannot see it).

pub fn emit(counters: &mut CounterSet, which: usize) {
    counters.incr("fixture_unregistered_key");
    let key = if which == 0 { "a" } else { "b" };
    counters.incr(key);
}
