//! D008 fixture: arithmetic mixing conflicting unit suffixes. The three
//! `bad_*` lines must be flagged; the compound-unit product and the line
//! with an explicit conversion call must not be.

fn mix() -> f64 {
    let dur_s = 10.0;
    let dur_h = 2.0;
    let i_ma = 40.0;
    let q_mah = 5.0;
    let to_secs = 3600.0;
    let bad_sum = dur_s + dur_h; // D008: seconds + hours
    let bad_diff = q_mah - i_ma; // D008: charge - current
    let bad_scale = dur_s * dur_h; // D008: same dimension, different scale
    let ok_product = i_ma * dur_h; // mA x h builds a compound unit: fine
    let ok_conv = dur_s + dur_h * to_secs; // conversion call on the line: fine
    bad_sum + bad_diff + bad_scale + ok_product + ok_conv
}

fn main() {
    let _ = mix();
}
