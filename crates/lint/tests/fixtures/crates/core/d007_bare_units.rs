//! D007 fixture: bare `f64` under unit-suffixed names in a unit-bearing
//! crate path. Each annotated line below must be flagged; the constructor
//! at the bottom must NOT be (it returns `Self`).

pub struct NodeBudget {
    pub drain_ma: f64,   // D007: struct field
    pub window_s: f64,   // D007: struct field
    pub stored_mah: f64, // D007: struct field
    label: String,
}

pub fn schedule_rate_mhz(load: f64) -> f64 {
    // D007: public fn with a unit-suffixed name returning bare f64
    load * 2.0
}

pub fn set_voltage(core_v: f64) {
    // D007: public fn taking a bare f64 under a unit-suffixed name
    let _ = core_v;
}

impl NodeBudget {
    /// Constructor boundary: raw measurements get wrapped here, so the
    /// bare f64 parameters are exempt.
    pub fn new(drain_ma: f64, window_s: f64) -> Self {
        NodeBudget {
            drain_ma,
            window_s,
            stored_mah: 0.0,
            label: String::new(),
        }
    }
}
