//! Fixture: D006 — a `TraceRecord::new` whose kind is not a string
//! literal cannot be cross-checked against the schema table, and a
//! literal kind that no documentation mentions fails the cross-check.

pub fn emit(ctx: &mut Ctx, kind: &'static str) {
    ctx.emit(TraceRecord::new(ctx.now(), component, kind));
    ctx.emit(TraceRecord::new(ctx.now(), "node1", "totally_undocumented_kind"));
}
