//! D009 fixture: a hot-path root (a `par_map` caller) reaching an
//! `unwrap` two calls away. The per-file rules cannot see this — the
//! unwrap is in a helper, not in the dispatch code — so only the
//! interprocedural pass flags it, with the full chain in the message.

pub fn driver(jobs: usize, threads: usize) -> Vec<u64> {
    par_map(jobs, threads, |i| helper(i))
}

fn helper(i: usize) -> u64 {
    inner(i)
}

fn inner(i: usize) -> u64 {
    lookup(i).unwrap()
}

fn lookup(i: usize) -> Option<u64> {
    (i < 100).then(|| i as u64 * 2)
}
