//! Fixture: wall-clock time sources must flag D001 (twice here).

use std::time::{Instant, SystemTime};

pub fn jitter_seed() -> u64 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let _ = (t0, wall);
    0
}
