//! D016 fixture: a loop-invariant `let` rebuilt every iteration next to a
//! per-iteration one that genuinely depends on the loop variable.

/// Root: calls the parallel executor.
pub fn drive(base: u32) -> usize {
    par_map(4, 0, |i| chew(base, i))
}

/// `tag` uses only `base` (defined outside the loop): hoistable → D016
/// (and its `format!` is a D015 sink too). `var` uses the loop variable
/// `j`: not hoistable, but still a D015 loop sink.
fn chew(base: u32, n: u32) -> usize {
    let mut total = 0;
    for j in 0..n {
        let tag = format!("run-{}", base);
        let var = format!("{}", j);
        total += tag.len() + var.len();
    }
    total
}
