//! Fixture: D013 — an emitted kind absent from README's trace-schema
//! table, and a documented kind emitting a field no table row mentions.

pub fn emit_unknown_kind(ctx: &mut Ctx, frame: u64) {
    ctx.emit(TraceRecord::new(ctx.now(), "host", "schema_fixture_unknown_kind").with("frame", frame));
}

pub fn emit_unknown_field(ctx: &mut Ctx, frame: u64) {
    ctx.emit(
        TraceRecord::new(ctx.now(), "host", "rotation")
            .with("frame", frame)
            .with("fixture_undocumented_field", 1u64),
    );
}
