//! D015 fixture: allocation sinks inside loops on a hot path.
//!
//! `drive` calls `par_map`, so it is a hot-path root; `shout` is one call
//! below it. Both hold alloc/copy sinks inside loop regions: `to_string`
//! at depth 1 in the root itself, `format!` at depth 2 in the callee.

/// Root: calls the parallel executor.
pub fn drive(seeds: &[u32]) -> usize {
    let mut out = Vec::new();
    for seed in seeds {
        out.push(seed.to_string());
    }
    par_map(out.len(), 0, |i| shout(i))
}

/// Reachable from `drive`: nested loops with a `format!` at depth 2.
fn shout(n: usize) -> usize {
    let mut total = 0;
    for i in 0..n {
        for j in 0..i {
            let s = format!("{}-{}", i, j);
            total += s.len();
        }
    }
    total
}
