//! Fixture: D012 — two emit sites of one kind whose required field sets
//! are incomparable (neither a subset of the other), and a `.with` whose
//! key is not a string literal. The kind and fields are real documented
//! ones (`rotation`: `frame`, `rotations`) so this file trips D012 only.

pub fn emit_frame_only(ctx: &mut Ctx, frame: u64) {
    ctx.emit(TraceRecord::new(ctx.now(), "host", "rotation").with("frame", frame));
}

pub fn emit_rotations_only(ctx: &mut Ctx, rotations: u64) {
    ctx.emit(TraceRecord::new(ctx.now(), "host", "rotation").with("rotations", rotations));
}

pub fn emit_computed_key(ctx: &mut Ctx, key: &'static str, frame: u64) {
    ctx.emit(TraceRecord::new(ctx.now(), "host", "rotation").with(key, frame));
}
