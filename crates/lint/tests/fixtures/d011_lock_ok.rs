//! D011 fixture, clean variant: the same locks used safely — a globally
//! consistent acquisition order, block-scoped guards that are never held
//! simultaneously, and the lock dropped before the parallel region.

impl Engine {
    pub fn forward(&self) {
        let cache = self.cache.lock();
        let stats = self.stats.lock();
        drop((cache, stats));
    }

    pub fn also_forward(&self) {
        let cache = self.cache.lock();
        let stats = self.stats.lock();
        drop((cache, stats));
    }

    pub fn scoped(&self) {
        {
            let stats = self.stats.lock();
            drop(stats);
        }
        {
            let cache = self.cache.lock();
            drop(cache);
        }
    }

    pub fn fan_out(&self, jobs: usize) {
        {
            let guard = self.cache.lock();
            drop(guard);
        }
        par_map(jobs, 0, |i| i * 2);
    }
}
