#!/usr/bin/env run-cargo-script
//! Lexer-hardening fixture: the shebang above, byte-char literals,
//! float-literal suffixes and signed exponents must all lex cleanly.
//! This file carries no violations, so `--deny` must pass.

fn main() {
    let tiny = 1.5e-3;
    let big = 2.5e+6;
    let suffixed = 1.0f64;
    let byte = b'x';
    let hex = 0xFF_u8;
    println!("{tiny} {big} {suffixed} {byte} {hex}");
}
