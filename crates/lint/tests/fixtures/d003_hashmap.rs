//! Fixture: hash-ordered containers must flag D003 (three sites).

use std::collections::{HashMap, HashSet};

pub fn render_report(counters: &HashMap<String, u64>) -> String {
    let mut seen = HashSet::new();
    let mut out = String::new();
    for (name, v) in counters {
        if seen.insert(name.clone()) {
            out.push_str(&format!("{name}: {v}\n"));
        }
    }
    out
}
