//! Lexer fixture: doc text must never produce findings. This inner doc
//! mentions `HashMap`, `Instant::now()` and even `thread_rng()` — all as
//! prose — and the code fences below spell out full fake violations:
//!
//! ```ignore
//! use std::collections::HashMap;
//! let t = Instant::now();
//! let mut rng = thread_rng();
//! scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
//! ```

/*!
Block-style inner docs too: SystemTime, OsRng, HashSet — still prose.
*/

/// Outer docs with a fence:
///
/// ```ignore
/// let m: HashMap<String, u64> = HashMap::new();
/// counters.incr(non_literal_key);
/// let a = x.lock();
/// let b = y.lock();
/// ```
pub fn documented() -> u64 {
    /* A plain block comment with Instant and HashMap inside. */
    42 // trailing comment mentioning SystemTime::now()
}
