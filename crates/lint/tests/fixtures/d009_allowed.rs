//! D009 fixture, allowed variant: the same reachable-unwrap shape as
//! `d009_reach.rs`, but with the allow on the *root* frame — the only
//! place a D009 suppression is honored, because the root owns the
//! decision that the whole chain below it is panic-safe.

pub fn driver(jobs: usize, threads: usize) -> Vec<u64> { // lint: allow(D009) — fixture: `lookup` is total for every index the driver hands out
    par_map(jobs, threads, |i| helper(i))
}

fn helper(i: usize) -> u64 {
    lookup(i).unwrap()
}

fn lookup(i: usize) -> Option<u64> {
    Some(i as u64 * 2)
}
