//! D010 fixture, clean variant: a documented key passes as-is, a
//! `match`-shaped key site is understood arm by arm, and a deliberate
//! fixture-local key is justified with an on-line allow.

pub fn emit(counters: &mut CounterSet, kind: TransferKind) {
    counters.incr("sweep_jobs");
    counters.incr(match kind {
        TransferKind::Data => "transfers_data",
        TransferKind::Ack => "transfers_ack",
    });
    counters.incr("fixture_scratch"); // lint: allow(D010) — fixture-local scratch key, never merged into real reports
}
