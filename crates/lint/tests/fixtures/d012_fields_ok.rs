//! Fixture: the D012 shapes that must NOT be violations — a subset chain
//! of required field sets across sites, and conditional fields appended
//! through a `let`-bound record (merged as optional, not as a conflict).

pub fn emit_minimal(ctx: &mut Ctx, frame: u64) {
    ctx.emit(TraceRecord::new(ctx.now(), "host", "rotation").with("frame", frame));
}

pub fn emit_superset(ctx: &mut Ctx, frame: u64, rotations: u64) {
    ctx.emit(
        TraceRecord::new(ctx.now(), "host", "rotation")
            .with("frame", frame)
            .with("rotations", rotations),
    );
}

pub fn emit_conditional(ctx: &mut Ctx, frame: u64, deep: bool, rotations: u64) {
    let mut rec = TraceRecord::new(ctx.now(), "host", "rotation").with("frame", frame);
    if deep {
        rec = rec.with("rotations", rotations);
    }
    ctx.emit(rec);
}
