//! D015 fixture (clean): hot loops that reuse a buffer instead of
//! allocating per iteration, plus one justified allow on a clone whose
//! copy is the function's contract.

use std::fmt::Write as _;

/// Root: calls the parallel executor. The loop renders into a reused
/// buffer — `write!` into a cleared `String` is not an alloc sink.
pub fn drive(names: &[String]) -> usize {
    let mut buf = String::new();
    let mut total = 0;
    for (i, _) in names.iter().enumerate() {
        buf.clear();
        let _ = write!(buf, "frame-{}", i);
        total += buf.len();
    }
    let kept = keep(names);
    par_map(kept.len(), 0, |i| i)
}

/// Reachable from `drive`: the per-item clone is the point of the
/// function (it returns owned copies), so it carries a reasoned allow.
fn keep(xs: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(xs.len());
    for x in xs {
        // lint: allow(D015) — returning owned copies is this function's contract; the clone is the payload, not churn
        out.push(x.clone());
    }
    out
}
