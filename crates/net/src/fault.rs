//! Link-level fault modelling hooks.
//!
//! The fault-injection layer in `dles-core` decides *whether* a serial
//! transfer is hit by bit errors; this module decides what those errors
//! *do*, by pushing a representative payload through the real PPP codec
//! ([`crate::ppp`]) with random wire bits flipped. The FCS and
//! byte-stuffing logic are therefore load-bearing: a flip that lands on a
//! flag, an escape, the checksum, or the payload must be detected (and the
//! transfer treated as lost), while a flip the framing provably survives
//! leaves the transfer intact.

use crate::ppp::{decode_frames, encode_frame};
use dles_sim::SimRng;

/// Deterministic stand-in payload for a transfer of `len` bytes: the frame
/// number seeds a byte pattern so different frames exercise different
/// escape densities (0x7D/0x7E bytes included).
pub fn synthetic_payload(len: u64, frame: u64) -> Vec<u8> {
    let len = len as usize;
    let mut out = Vec::with_capacity(len);
    let mut x = frame
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(len as u64);
    for _ in 0..len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.push((x >> 24) as u8);
    }
    out
}

/// Encode `bytes` worth of payload for `frame`, flip `flips` random wire
/// bits, and decode with the streaming [`crate::ppp::FrameDecoder`].
/// Returns `true` when the payload does *not* survive intact — i.e. the
/// receiver either sees a framing/FCS error or garbage, so the transfer
/// must be treated as corrupted.
pub fn frame_corrupted_by_flips(bytes: u64, frame: u64, flips: u32, rng: &mut SimRng) -> bool {
    let payload = synthetic_payload(bytes, frame);
    let mut wire = encode_frame(&payload);
    let wire_bits = wire.len() as u64 * 8;
    for _ in 0..flips {
        let bit = rng.uniform_u64(0, wire_bits - 1);
        wire[(bit / 8) as usize] ^= 1 << (bit % 8);
    }
    let decoded = decode_frames(&wire);
    !(decoded.len() == 1 && decoded[0].as_deref() == Ok(payload.as_slice()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_payload_is_deterministic_and_sized() {
        let a = synthetic_payload(512, 7);
        let b = synthetic_payload(512, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 512);
        assert_ne!(a, synthetic_payload(512, 8), "frames differ");
    }

    #[test]
    fn zero_flips_always_survive() {
        let mut rng = SimRng::seed_from_u64(1);
        for frame in 0..8 {
            assert!(!frame_corrupted_by_flips(256, frame, 0, &mut rng));
        }
    }

    #[test]
    fn flips_are_detected_by_the_codec() {
        // A single bit flip anywhere in an HDLC/FCS-16 frame must never be
        // silently accepted as the original payload: either the checksum
        // or the framing catches it.
        let mut rng = SimRng::seed_from_u64(42);
        let mut corrupted = 0;
        for frame in 0..200u64 {
            if frame_corrupted_by_flips(100, frame, 1, &mut rng) {
                corrupted += 1;
            }
        }
        assert_eq!(corrupted, 200, "every single-bit flip must be detected");
    }
}
