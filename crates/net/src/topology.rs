//! Network endpoints and routes under host-side IP forwarding.
//!
//! The physical topology (Fig. 5) is a star: every node has one serial
//! line to the host. The host is both the external source/destination and
//! the IP-forwarding hub, so a node-to-node transfer occupies *two* serial
//! lines (sender→host and host→receiver) for the duration of the transfer
//! (forwarding is cut-through at the IP packet level, so the end-to-end
//! latency is still a single transfer time, as the paper's Fig. 3 timing
//! budget assumes).

use std::fmt;

/// A communication endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The host computer (external source, destination, and hub).
    Host,
    /// Node `i` (0-based).
    Node(usize),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Host => write!(f, "host"),
            Endpoint::Node(i) => write!(f, "node{}", i + 1),
        }
    }
}

/// The serial lines a transfer occupies: link `i` is node `i`'s line to
/// the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    links: Vec<usize>,
}

impl Route {
    /// Compute the route between two endpoints. Panics on a self-route —
    /// a node never sends to itself (the rotation technique exists
    /// precisely to replace such a send with local reconfiguration).
    pub fn between(from: Endpoint, to: Endpoint) -> Route {
        let links = match (from, to) {
            (Endpoint::Host, Endpoint::Node(i)) | (Endpoint::Node(i), Endpoint::Host) => vec![i],
            (Endpoint::Node(a), Endpoint::Node(b)) => {
                assert_ne!(a, b, "self-route requested for node {a}");
                vec![a, b]
            }
            (Endpoint::Host, Endpoint::Host) => panic!("self-route requested for host"),
        };
        Route { links }
    }

    /// Indices of the serial lines this route occupies.
    pub fn links(&self) -> &[usize] {
        &self.links
    }

    /// Whether the transfer transits the hub (two serial lines).
    pub fn is_forwarded(&self) -> bool {
        self.links.len() == 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_node_routes_use_one_link() {
        let r = Route::between(Endpoint::Host, Endpoint::Node(0));
        assert_eq!(r.links(), &[0]);
        assert!(!r.is_forwarded());
        let r = Route::between(Endpoint::Node(2), Endpoint::Host);
        assert_eq!(r.links(), &[2]);
    }

    #[test]
    fn node_node_routes_are_forwarded() {
        let r = Route::between(Endpoint::Node(0), Endpoint::Node(1));
        assert_eq!(r.links(), &[0, 1]);
        assert!(r.is_forwarded());
    }

    #[test]
    #[should_panic(expected = "self-route")]
    fn self_route_rejected() {
        let _ = Route::between(Endpoint::Node(1), Endpoint::Node(1));
    }

    #[test]
    fn endpoint_display_is_one_based() {
        assert_eq!(format!("{}", Endpoint::Node(0)), "node1");
        assert_eq!(format!("{}", Endpoint::Host), "host");
    }
}
