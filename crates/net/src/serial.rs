//! Serial-link timing: the paper's measured PPP-over-RS-232 behaviour.
//!
//! §4.3: "The PPP connection on the serial port has a maximum data rate of
//! 115.2 Kbps, though our measured data rate is roughly 80 Kbps. In
//! addition, the startup time for establishing a single communication
//! transaction takes 50–100 ms."
//!
//! A transfer of `B` bytes therefore costs
//! `t = t_startup + 8·B / effective_bps`, with `t_startup` uniform in
//! [50 ms, 100 ms] (deterministic midpoint when no RNG is supplied). This
//! reconstruction reproduces every latency in Fig. 6 (10.1 KB → ~1.1 s,
//! 7.5 KB → ~0.85 s, 0.1 KB → ~0.09 s).

use dles_sim::{SimRng, SimTime};

/// Timing parameters of one serial link.
#[derive(Debug, Clone, Copy)]
pub struct SerialConfig {
    /// Raw UART line rate, bits/s (115 200 on Itsy).
    pub line_bps: f64,
    /// Measured effective payload throughput, bits/s (~80 000).
    pub effective_bps: f64,
    /// Minimum per-transaction startup latency.
    pub startup_min: SimTime,
    /// Maximum per-transaction startup latency.
    pub startup_max: SimTime,
}

impl SerialConfig {
    /// The paper's measured configuration.
    pub fn paper() -> Self {
        SerialConfig {
            line_bps: 115_200.0,
            effective_bps: 80_000.0,
            startup_min: SimTime::from_millis(50),
            startup_max: SimTime::from_millis(100),
        }
    }

    /// A configuration with a different effective data rate (ablations).
    pub fn with_effective_bps(mut self, bps: f64) -> Self {
        assert!(bps > 0.0, "data rate must be positive");
        self.effective_bps = bps;
        self
    }

    /// A configuration with a fixed startup latency (ablations).
    pub fn with_startup(mut self, startup: SimTime) -> Self {
        self.startup_min = startup;
        self.startup_max = startup;
        self
    }

    /// Midpoint of the startup window — the deterministic default.
    pub fn startup_nominal(&self) -> SimTime {
        SimTime::from_micros((self.startup_min.as_micros() + self.startup_max.as_micros()) / 2)
    }

    /// Startup latency drawn uniformly from the configured window.
    pub fn startup_jittered(&self, rng: &mut SimRng) -> SimTime {
        SimTime::from_micros(
            rng.uniform_u64(self.startup_min.as_micros(), self.startup_max.as_micros()),
        )
    }

    /// Wire time for `bytes` of payload, excluding startup.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * 8.0 / self.effective_bps)
    }

    /// Total deterministic transfer latency in seconds (nominal startup).
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        (self.startup_nominal() + self.wire_time(bytes)).as_secs_f64()
    }

    /// Total transfer latency with jittered startup.
    pub fn transfer_time(&self, bytes: u64, rng: Option<&mut SimRng>) -> SimTime {
        let startup = match rng {
            Some(r) => self.startup_jittered(r),
            None => self.startup_nominal(),
        };
        startup + self.wire_time(bytes)
    }

    /// Latency of a zero-payload transaction — an acknowledgment. §5.4:
    /// "the acknowledgment signal requires a separate transaction, which
    /// typically costs 50–100 ms".
    pub fn ack_time(&self, rng: Option<&mut SimRng>) -> SimTime {
        self.transfer_time(0, rng)
    }

    /// Link efficiency: effective over raw line rate (~69% on Itsy, the
    /// PPP/TCP/interrupt overhead the measured 80 kbps reflects).
    pub fn efficiency(&self) -> f64 {
        self.effective_bps / self.line_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig6_latencies() {
        let cfg = SerialConfig::paper();
        // (payload KB, expected seconds) from Fig. 6.
        let cases = [
            (10_342u64, 1.1, 0.05),
            (7_680, 0.85, 0.04),
            (614, 0.16, 0.04),
            (102, 0.1, 0.02),
        ];
        for (bytes, expected, tol) in cases {
            let t = cfg.transfer_secs(bytes);
            assert!(
                (t - expected).abs() <= tol,
                "{bytes} B: got {t:.3} s, paper says {expected} s"
            );
        }
    }

    #[test]
    fn startup_window_respected() {
        let cfg = SerialConfig::paper();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = cfg.startup_jittered(&mut rng);
            assert!(s >= SimTime::from_millis(50) && s <= SimTime::from_millis(100));
        }
        assert_eq!(cfg.startup_nominal(), SimTime::from_millis(75));
    }

    #[test]
    fn ack_costs_only_startup() {
        let cfg = SerialConfig::paper();
        let ack = cfg.ack_time(None);
        assert_eq!(ack, cfg.startup_nominal());
        // §5.4: 50–100 ms per ack.
        assert!(ack >= SimTime::from_millis(50) && ack <= SimTime::from_millis(100));
    }

    #[test]
    fn wire_time_is_linear_in_bytes() {
        let cfg = SerialConfig::paper();
        let t1 = cfg.wire_time(1000).as_secs_f64();
        let t2 = cfg.wire_time(2000).as_secs_f64();
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
        assert!((t1 - 0.1).abs() < 1e-9); // 8000 bits at 80 kbps
    }

    #[test]
    fn efficiency_matches_measurement() {
        let cfg = SerialConfig::paper();
        assert!((cfg.efficiency() - 80.0 / 115.2).abs() < 1e-9);
    }

    #[test]
    fn ablation_constructors() {
        let fast = SerialConfig::paper().with_effective_bps(1_000_000.0);
        assert!(fast.transfer_secs(10_342) < 0.2);
        let fixed = SerialConfig::paper().with_startup(SimTime::from_millis(50));
        assert_eq!(fixed.startup_nominal(), SimTime::from_millis(50));
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(fixed.startup_jittered(&mut rng), SimTime::from_millis(50));
    }

    #[test]
    fn jittered_transfer_deterministic_per_seed() {
        let cfg = SerialConfig::paper();
        let mut r1 = SimRng::seed_from_u64(9);
        let mut r2 = SimRng::seed_from_u64(9);
        for bytes in [10u64, 1000, 100_000] {
            assert_eq!(
                cfg.transfer_time(bytes, Some(&mut r1)),
                cfg.transfer_time(bytes, Some(&mut r2))
            );
        }
    }
}
