//! The reliable-transaction layer (§5.4).
//!
//! "Each sending transaction must be acknowledged by the receiver. A
//! timeout mechanism is used on each node to detect the failure of the
//! neighboring nodes." A [`Transaction`] describes one payload or
//! acknowledgment movement between endpoints; its latency comes from the
//! serial configuration and its route from the topology.

use crate::serial::SerialConfig;
use crate::topology::{Endpoint, Route};
use dles_sim::{SimRng, SimTime, TraceRecord};

/// What a transaction carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransactionKind {
    /// A data payload (frame, intermediate result, or final result).
    Payload,
    /// A zero-payload acknowledgment (power-failure-recovery protocol).
    Ack,
}

impl TransactionKind {
    pub fn name(self) -> &'static str {
        match self {
            TransactionKind::Payload => "data",
            TransactionKind::Ack => "ack",
        }
    }
}

/// One point-to-point transfer over the serial network.
#[derive(Debug, Clone)]
pub struct Transaction {
    pub from: Endpoint,
    pub to: Endpoint,
    pub kind: TransactionKind,
    /// Payload size (0 for acks).
    pub bytes: u64,
}

impl Transaction {
    pub fn payload(from: Endpoint, to: Endpoint, bytes: u64) -> Self {
        Transaction {
            from,
            to,
            kind: TransactionKind::Payload,
            bytes,
        }
    }

    pub fn ack(from: Endpoint, to: Endpoint) -> Self {
        Transaction {
            from,
            to,
            kind: TransactionKind::Ack,
            bytes: 0,
        }
    }

    /// The serial lines this transaction occupies.
    pub fn route(&self) -> Route {
        Route::between(self.from, self.to)
    }

    /// Transfer latency under `cfg`; deterministic when `rng` is `None`.
    pub fn latency(&self, cfg: &SerialConfig, rng: Option<&mut SimRng>) -> SimTime {
        cfg.transfer_time(self.bytes, rng)
    }

    /// Latency of this transaction plus its acknowledgment — the §5.4
    /// cost of one *reliable* delivery.
    pub fn reliable_latency(&self, cfg: &SerialConfig, mut rng: Option<&mut SimRng>) -> SimTime {
        let data = cfg.transfer_time(self.bytes, rng.as_deref_mut());
        let ack = cfg.ack_time(rng);
        data + ack
    }

    /// The component name of the link this transaction travels, in the
    /// README-documented `a->b` convention (`host->node2`): directed
    /// endpoint pair, `->` separator, no spaces.
    pub fn component(&self) -> String {
        link_component(self.from, self.to)
    }

    /// Structured trace record for a lifecycle `event` of this transaction
    /// (`"start"`, `"delivered"`, `"retransmit"`, `"timeout"`), tagged with
    /// the frame it carries.
    pub fn trace_record(&self, time: SimTime, event: &'static str, frame: u64) -> TraceRecord {
        TraceRecord::new(time, self.component(), "transaction")
            .with("event", event)
            .with("payload", self.kind.name())
            .with("bytes", self.bytes)
            .with("frame", frame)
    }
}

/// Build an `a->b` link component name from a directed endpoint pair —
/// the single place the convention is spelled, so every emitter (and the
/// trace-schema docs) agree on it.
pub fn link_component(from: Endpoint, to: Endpoint) -> String {
    format!("{from}->{to}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_vs_ack_costs() {
        let cfg = SerialConfig::paper();
        let data = Transaction::payload(Endpoint::Host, Endpoint::Node(0), 10_342);
        let ack = Transaction::ack(Endpoint::Node(0), Endpoint::Host);
        let t_data = data.latency(&cfg, None);
        let t_ack = ack.latency(&cfg, None);
        assert!(t_data > SimTime::from_secs(1));
        assert_eq!(t_ack, cfg.startup_nominal());
    }

    #[test]
    fn reliable_delivery_adds_one_ack() {
        let cfg = SerialConfig::paper();
        let tx = Transaction::payload(Endpoint::Node(0), Endpoint::Node(1), 614);
        let plain = tx.latency(&cfg, None);
        let reliable = tx.reliable_latency(&cfg, None);
        assert_eq!(reliable, plain + cfg.ack_time(None));
        // §5.4: the ack adds 50–100 ms on top of the payload transfer.
        let extra = (reliable - plain).as_secs_f64();
        assert!((0.05..=0.1).contains(&extra));
    }

    #[test]
    fn trace_record_names_the_link() {
        let tx = Transaction::payload(Endpoint::Host, Endpoint::Node(1), 614);
        let rec = tx.trace_record(SimTime::from_secs(5), "start", 12);
        assert_eq!(rec.component, "host->node2");
        assert_eq!(rec.kind, "transaction");
        assert_eq!(rec.str_field("event"), Some("start"));
        assert_eq!(rec.str_field("payload"), Some("data"));
        assert_eq!(rec.u64_field("bytes"), Some(614));
        assert_eq!(rec.u64_field("frame"), Some(12));
        let ack = Transaction::ack(Endpoint::Node(1), Endpoint::Host);
        assert_eq!(
            ack.trace_record(SimTime::ZERO, "delivered", 0)
                .str_field("payload"),
            Some("ack")
        );
    }

    #[test]
    fn route_derivation() {
        let tx = Transaction::payload(Endpoint::Node(0), Endpoint::Node(1), 100);
        assert!(tx.route().is_forwarded());
        let tx2 = Transaction::payload(Endpoint::Host, Endpoint::Node(1), 100);
        assert!(!tx2.route().is_forwarded());
    }

    #[test]
    fn jittered_latency_in_window() {
        let cfg = SerialConfig::paper();
        let tx = Transaction::payload(Endpoint::Host, Endpoint::Node(0), 1000);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..100 {
            let t = tx.latency(&cfg, Some(&mut rng)).as_secs_f64();
            let wire = 1000.0 * 8.0 / 80_000.0;
            assert!(t >= wire + 0.05 && t <= wire + 0.1);
        }
    }
}
