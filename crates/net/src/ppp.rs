//! PPP/HDLC-style framing: the byte-level encoding on the serial lines.
//!
//! Implements the framing PPP uses in asynchronous (RFC 1662) style:
//!
//! * frames delimited by the flag byte `0x7E`;
//! * payload bytes `0x7E` and `0x7D` escaped as `0x7D, byte ^ 0x20`;
//! * a 16-bit FCS (CRC-16/X.25, the PPP polynomial) appended before
//!   escaping, verified on decode.
//!
//! The codec is exercised both directly (unit + property tests) and by the
//! overhead accounting that justifies the measured-vs-line rate gap of
//! §4.3.

/// Frame delimiter.
pub const FLAG: u8 = 0x7E;
/// Escape byte.
pub const ESCAPE: u8 = 0x7D;
/// XOR applied to escaped bytes.
const ESCAPE_XOR: u8 = 0x20;

/// CRC-16/X.25 (the PPP FCS): reflected polynomial 0x8408, init 0xFFFF,
/// final XOR 0xFFFF.
pub fn fcs16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc ^= b as u16;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0x8408;
            } else {
                crc >>= 1;
            }
        }
    }
    !crc
}

/// Encode one payload into a flagged, stuffed, checksummed frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + payload.len() / 8 + 6);
    out.push(FLAG);
    let crc = fcs16(payload);
    let put_escaped = |b: u8, out: &mut Vec<u8>| {
        if b == FLAG || b == ESCAPE {
            out.push(ESCAPE);
            out.push(b ^ ESCAPE_XOR);
        } else {
            out.push(b);
        }
    };
    for &b in payload {
        put_escaped(b, &mut out);
    }
    // FCS transmitted LSB first, also subject to stuffing.
    put_escaped((crc & 0xFF) as u8, &mut out);
    put_escaped((crc >> 8) as u8, &mut out);
    out.push(FLAG);
    out
}

/// Errors surfaced by the streaming decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// FCS mismatch — the frame was corrupted on the wire.
    BadChecksum,
    /// A frame shorter than the 2-byte FCS.
    Truncated,
    /// An escape byte immediately followed by a flag (protocol violation).
    DanglingEscape,
    /// An escape byte immediately followed by another escape byte — a
    /// conforming encoder emits `0x7D 0x5D` for a literal `0x7D`, never
    /// `0x7D 0x7D`, so the frame is aborted rather than decoded to a
    /// silently wrong payload.
    InvalidEscape,
}

/// Incremental frame decoder: feed wire bytes in arbitrary chunks, collect
/// completed frames.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    in_frame: bool,
    escaping: bool,
}

impl FrameDecoder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed wire bytes; returns the payloads of every frame completed by
    /// this chunk (each `Ok(payload)` or a framing error).
    ///
    /// Malformed escape sequences abort the current frame cleanly: the
    /// decoder reports the error, discards buffered bytes, and resyncs at
    /// the next flag.
    pub fn feed(&mut self, wire: &[u8]) -> Vec<Result<Vec<u8>, FrameError>> {
        let mut out = Vec::new();
        for &b in wire {
            if b == FLAG {
                if self.escaping {
                    out.push(Err(FrameError::DanglingEscape));
                    self.escaping = false;
                    self.buf.clear();
                    self.in_frame = true; // this flag also opens a new frame
                    continue;
                }
                if self.in_frame && !self.buf.is_empty() {
                    out.push(Self::close_frame(&self.buf));
                }
                self.buf.clear();
                self.in_frame = true;
                continue;
            }
            if !self.in_frame {
                continue; // garbage between frames
            }
            if self.escaping {
                if b == ESCAPE {
                    // Doubled escape: abort the frame and skip to the next
                    // flag instead of unstuffing to a corrupt payload.
                    out.push(Err(FrameError::InvalidEscape));
                    self.escaping = false;
                    self.buf.clear();
                    self.in_frame = false;
                    continue;
                }
                self.buf.push(b ^ ESCAPE_XOR);
                self.escaping = false;
            } else if b == ESCAPE {
                self.escaping = true;
            } else {
                self.buf.push(b);
            }
        }
        out
    }

    fn close_frame(buf: &[u8]) -> Result<Vec<u8>, FrameError> {
        if buf.len() < 2 {
            return Err(FrameError::Truncated);
        }
        let payload_len = buf.len() - 2;
        let received = u16::from_le_bytes([buf[payload_len], buf[payload_len + 1]]);
        let computed = fcs16(&buf[..payload_len]);
        if received != computed {
            return Err(FrameError::BadChecksum);
        }
        Ok(buf[..payload_len].to_vec())
    }
}

/// Decode a complete wire buffer into frames (convenience wrapper).
pub fn decode_frames(wire: &[u8]) -> Vec<Result<Vec<u8>, FrameError>> {
    FrameDecoder::new().feed(wire)
}

/// Framing overhead ratio for a payload: encoded size / payload size.
pub fn overhead_ratio(payload: &[u8]) -> f64 {
    if payload.is_empty() {
        return f64::INFINITY;
    }
    encode_frame(payload).len() as f64 / payload.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_roundtrip() {
        let payload = b"hello itsy".to_vec();
        let wire = encode_frame(&payload);
        let frames = decode_frames(&wire);
        assert_eq!(frames, vec![Ok(payload)]);
    }

    #[test]
    fn escapes_flag_and_escape_bytes() {
        let payload = vec![0x7E, 0x7D, 0x00, 0x7E];
        let wire = encode_frame(&payload);
        // No raw flag/escape inside the body.
        let body = &wire[1..wire.len() - 1];
        assert!(!body.contains(&FLAG));
        let frames = decode_frames(&wire);
        assert_eq!(frames, vec![Ok(payload)]);
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let payload = b"data".to_vec();
        let mut wire = encode_frame(&payload);
        wire[2] ^= 0x01; // flip a payload bit
        let frames = decode_frames(&wire);
        assert_eq!(frames, vec![Err(FrameError::BadChecksum)]);
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_frame(b"one"));
        wire.extend_from_slice(&encode_frame(b"two"));
        wire.extend_from_slice(&encode_frame(b"three"));
        let frames = decode_frames(&wire);
        assert_eq!(
            frames,
            vec![
                Ok(b"one".to_vec()),
                Ok(b"two".to_vec()),
                Ok(b"three".to_vec())
            ]
        );
    }

    #[test]
    fn decoder_handles_arbitrary_chunking() {
        let payload: Vec<u8> = (0..=255).collect();
        let wire = encode_frame(&payload);
        for chunk_size in [1usize, 3, 7, 64] {
            let mut dec = FrameDecoder::new();
            let mut frames = Vec::new();
            for chunk in wire.chunks(chunk_size) {
                frames.extend(dec.feed(chunk));
            }
            assert_eq!(frames, vec![Ok(payload.clone())], "chunk {chunk_size}");
        }
    }

    #[test]
    fn garbage_between_frames_ignored() {
        let mut wire = vec![0xAA, 0xBB];
        wire.extend_from_slice(&encode_frame(b"ok"));
        let frames = decode_frames(&wire);
        assert_eq!(frames, vec![Ok(b"ok".to_vec())]);
    }

    #[test]
    fn truncated_frame_reported() {
        // FLAG, one byte, FLAG: cannot hold a 2-byte FCS.
        let wire = [FLAG, 0x41, FLAG];
        let frames = decode_frames(&wire);
        assert_eq!(frames, vec![Err(FrameError::Truncated)]);
    }

    #[test]
    fn dangling_escape_reported() {
        let wire = [FLAG, 0x41, ESCAPE, FLAG];
        let frames = decode_frames(&wire);
        assert_eq!(frames, vec![Err(FrameError::DanglingEscape)]);
    }

    #[test]
    fn dangling_escape_then_valid_frame_resyncs() {
        let mut wire = vec![FLAG, 0x41, ESCAPE];
        wire.extend_from_slice(&encode_frame(b"after"));
        let frames = decode_frames(&wire);
        assert_eq!(
            frames,
            vec![Err(FrameError::DanglingEscape), Ok(b"after".to_vec())]
        );
    }

    #[test]
    fn doubled_escape_aborts_frame() {
        // 0x7D 0x7D on the wire is a protocol violation the old decoder
        // silently unstuffed to 0x5D; it must abort the frame instead.
        let wire = [FLAG, 0x41, ESCAPE, ESCAPE, 0x42, FLAG];
        let frames = decode_frames(&wire);
        assert_eq!(frames, vec![Err(FrameError::InvalidEscape)]);
    }

    #[test]
    fn doubled_escape_resyncs_on_next_frame() {
        let mut wire = vec![FLAG, 0x41, ESCAPE, ESCAPE, 0x42, 0x43, FLAG];
        wire.extend_from_slice(&encode_frame(b"clean"));
        let frames = decode_frames(&wire);
        // The flag closing the aborted region opens the next frame, which
        // then decodes normally.
        assert_eq!(
            frames,
            vec![Err(FrameError::InvalidEscape), Ok(b"clean".to_vec())]
        );
    }

    #[test]
    fn doubled_escape_split_across_chunks() {
        let wire = [FLAG, ESCAPE];
        let mut dec = FrameDecoder::new();
        assert!(dec.feed(&wire).is_empty());
        let frames = dec.feed(&[ESCAPE, 0x10, FLAG]);
        assert_eq!(frames, vec![Err(FrameError::InvalidEscape)]);
    }

    #[test]
    fn fcs16_known_vector() {
        // The classic PPP check value: FCS over "123456789" is 0x906E.
        assert_eq!(fcs16(b"123456789"), 0x906E);
    }

    #[test]
    fn overhead_is_small_for_typical_payloads() {
        let payload: Vec<u8> = (0..7_680u32).map(|i| (i % 251) as u8).collect();
        let ratio = overhead_ratio(&payload);
        assert!(ratio > 1.0 && ratio < 1.05, "ratio {ratio}");
    }

    #[test]
    fn worst_case_overhead_doubles() {
        // All-flag payload: every byte escapes to two.
        let payload = vec![FLAG; 512];
        let ratio = overhead_ratio(&payload);
        assert!(ratio > 1.9 && ratio < 2.1, "ratio {ratio}");
        let frames = decode_frames(&encode_frame(&payload));
        assert_eq!(frames, vec![Ok(payload)]);
    }
}

#[cfg(test)]
mod proptests {
    //! Seeded randomized tests (deterministic: fixed seeds, no external
    //! property-testing framework).

    use super::*;
    use dles_sim::SimRng;

    fn random_payload(rng: &mut SimRng, max_len: u64) -> Vec<u8> {
        let len = rng.uniform_u64(0, max_len) as usize;
        (0..len).map(|_| rng.uniform_u64(0, 255) as u8).collect()
    }

    /// Payloads dense in the bytes the codec treats specially: flag,
    /// escape, and their unstuffed forms.
    fn escape_dense_payload(rng: &mut SimRng, max_len: u64) -> Vec<u8> {
        let len = rng.uniform_u64(0, max_len) as usize;
        (0..len)
            .map(|_| match rng.uniform_u64(0, 9) {
                0..=2 => FLAG,
                3..=5 => ESCAPE,
                6 => FLAG ^ 0x20,
                7 => ESCAPE ^ 0x20,
                _ => rng.uniform_u64(0, 255) as u8,
            })
            .collect()
    }

    /// encode → decode recovers any payload exactly.
    #[test]
    fn prop_roundtrip() {
        let mut rng = SimRng::seed_from_u64(0x9199);
        for _ in 0..256 {
            let payload = random_payload(&mut rng, 2048);
            let frames = decode_frames(&encode_frame(&payload));
            assert_eq!(frames, vec![Ok(payload)]);
        }
    }

    /// Round-trip over payloads dense in 0x7D/0x7E, including chunked
    /// feeding so escape sequences split across chunk boundaries.
    #[test]
    fn prop_roundtrip_dense_in_escapes() {
        let mut rng = SimRng::seed_from_u64(0xE5C);
        for round in 0..256 {
            let payload = escape_dense_payload(&mut rng, 512);
            let wire = encode_frame(&payload);
            assert_eq!(
                decode_frames(&wire),
                vec![Ok(payload.clone())],
                "round {round}"
            );
            let chunk = 1 + (round % 7) as usize;
            let mut dec = FrameDecoder::new();
            let mut frames = Vec::new();
            for c in wire.chunks(chunk) {
                frames.extend(dec.feed(c));
            }
            assert_eq!(frames, vec![Ok(payload)], "round {round} chunk {chunk}");
        }
    }

    /// Concatenated frames decode to the original sequence.
    #[test]
    fn prop_frame_sequence() {
        let mut rng = SimRng::seed_from_u64(0x5E9);
        for _ in 0..64 {
            let n = rng.uniform_u64(1, 7) as usize;
            let payloads: Vec<Vec<u8>> = (0..n)
                .map(|_| escape_dense_payload(&mut rng, 256))
                .collect();
            let mut wire = Vec::new();
            for p in &payloads {
                wire.extend_from_slice(&encode_frame(p));
            }
            let frames = decode_frames(&wire);
            let expect: Vec<_> = payloads.into_iter().map(Ok).collect();
            assert_eq!(frames, expect);
        }
    }

    /// Any single-bit corruption in the body is detected (never returns a
    /// *wrong* payload as Ok).
    #[test]
    fn prop_corruption_detected() {
        let mut rng = SimRng::seed_from_u64(0xC0);
        for _ in 0..256 {
            let mut payload = random_payload(&mut rng, 256);
            payload.resize(payload.len().max(4), 0);
            let mut wire = encode_frame(&payload);
            let body = wire.len() - 2;
            let pos = 1 + rng.uniform_u64(0, (body - 1) as u64) as usize;
            let bit = rng.uniform_u64(0, 7) as u8;
            wire[pos] ^= 1 << bit;
            for frame in decode_frames(&wire).into_iter().flatten() {
                // If a frame still decodes, it must be the original payload
                // surviving intact (e.g. a flip that only creates an extra
                // empty frame); a wrong payload passed off as valid is a
                // codec bug.
                assert_eq!(&frame, &payload);
            }
        }
    }
}
