//! # dles-net — the serial-link network substrate
//!
//! Models the paper's interconnect (§4.2): each Itsy node hangs off the
//! host computer on a dedicated RS-232 serial line carrying PPP; the host
//! runs IP forwarding so nodes can reach each other "transparently as if
//! they were on the same TCP/IP network" (Fig. 5).
//!
//! Layers, bottom-up:
//!
//! * [`serial`] — UART timing: 115.2 kbps line rate, ~80 kbps measured
//!   effective throughput, and the 50–100 ms per-transaction startup cost
//!   the paper repeatedly charges (§4.3);
//! * [`ppp`] — an HDLC/PPP-style framing codec (flag bytes, byte stuffing,
//!   FCS-16) actually implemented and property-tested, with overhead
//!   accounting;
//! * [`topology`] — endpoints (host / node *i*) and the links a transfer
//!   occupies under host-side IP forwarding;
//! * [`hub`] — link occupancy bookkeeping: reserving the serial lines a
//!   transfer needs, with cut-through forwarding across the hub;
//! * [`transaction`] — the reliable-transaction layer of §5.4: payload
//!   transfers and the separate acknowledgment transactions whose startup
//!   cost makes power-failure recovery expensive;
//! * [`fault`] — link-fault hooks: bit errors realized by flipping wire
//!   bits and pushing the result through the real PPP codec.
//!
//! ```
//! use dles_net::serial::SerialConfig;
//!
//! let cfg = SerialConfig::paper();
//! // The paper's Fig. 6: a 10.1 KB frame takes ~1.1 s to transfer.
//! let t = cfg.transfer_secs(10_342);
//! assert!((t - 1.1).abs() < 0.05);
//! ```
#![forbid(unsafe_code)]

pub mod fault;
pub mod hub;
pub mod ppp;
pub mod serial;
pub mod topology;
pub mod transaction;

pub use hub::LinkSchedule;
pub use ppp::{decode_frames, encode_frame, FrameDecoder};
pub use serial::SerialConfig;
pub use topology::{Endpoint, Route};
pub use transaction::{Transaction, TransactionKind};
