//! Serial-line occupancy: when can a transfer actually start?
//!
//! Each node's serial line is a single half-duplex resource in our model
//! (the paper's nodes fully serialize RECV/PROC/SEND anyway, §3). The
//! [`LinkSchedule`] tracks, per line, the time it becomes free, and admits
//! a transfer only when *every* line on its route is free — this is where
//! "additional communication can potentially saturate the network" (§5.3)
//! becomes observable in the simulator.

use crate::topology::Route;
use dles_sim::SimTime;

/// Busy-until bookkeeping for the hub's serial lines.
#[derive(Debug, Clone)]
pub struct LinkSchedule {
    free_at: Vec<SimTime>,
}

impl LinkSchedule {
    /// A hub with `n_nodes` serial lines, all idle.
    pub fn new(n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "hub needs at least one line");
        LinkSchedule {
            free_at: vec![SimTime::ZERO; n_nodes],
        }
    }

    pub fn n_links(&self) -> usize {
        self.free_at.len()
    }

    /// Earliest time at or after `earliest` when every line on `route` is
    /// free.
    pub fn earliest_start(&self, route: &Route, earliest: SimTime) -> SimTime {
        route
            .links()
            .iter()
            .fold(earliest, |acc, &l| acc.max(self.free_at[l]))
    }

    /// Reserve every line on `route` from `start` for `duration`; returns
    /// the transfer's end time. Panics if a line is still busy at `start`
    /// (callers must use [`earliest_start`](Self::earliest_start) first) —
    /// silently overlapping reservations would corrupt the timing model.
    pub fn reserve(&mut self, route: &Route, start: SimTime, duration: SimTime) -> SimTime {
        for &l in route.links() {
            assert!(
                self.free_at[l] <= start,
                "link {l} busy until {:?} but reservation starts at {start:?}",
                self.free_at[l]
            );
        }
        let end = start + duration;
        for &l in route.links() {
            self.free_at[l] = end;
        }
        end
    }

    /// When line `link` becomes free.
    pub fn free_at(&self, link: usize) -> SimTime {
        self.free_at[link]
    }

    /// Utilization helper: total busy time assuming reservations began at
    /// time zero (used by saturation diagnostics in reports).
    pub fn horizon(&self) -> SimTime {
        self.free_at
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Endpoint, Route};

    #[test]
    fn independent_lines_do_not_block() {
        let mut s = LinkSchedule::new(2);
        let r0 = Route::between(Endpoint::Host, Endpoint::Node(0));
        let r1 = Route::between(Endpoint::Host, Endpoint::Node(1));
        s.reserve(&r0, SimTime::ZERO, SimTime::from_secs(1));
        // Line 1 is still free at t=0.
        assert_eq!(s.earliest_start(&r1, SimTime::ZERO), SimTime::ZERO);
        s.reserve(&r1, SimTime::ZERO, SimTime::from_secs(2));
        assert_eq!(s.free_at(0), SimTime::from_secs(1));
        assert_eq!(s.free_at(1), SimTime::from_secs(2));
    }

    #[test]
    fn forwarded_transfer_blocks_both_lines() {
        let mut s = LinkSchedule::new(2);
        let fwd = Route::between(Endpoint::Node(0), Endpoint::Node(1));
        s.reserve(&fwd, SimTime::ZERO, SimTime::from_secs(3));
        let r0 = Route::between(Endpoint::Host, Endpoint::Node(0));
        let r1 = Route::between(Endpoint::Host, Endpoint::Node(1));
        assert_eq!(s.earliest_start(&r0, SimTime::ZERO), SimTime::from_secs(3));
        assert_eq!(s.earliest_start(&r1, SimTime::ZERO), SimTime::from_secs(3));
    }

    #[test]
    fn earliest_start_respects_caller_floor() {
        let s = LinkSchedule::new(1);
        let r = Route::between(Endpoint::Host, Endpoint::Node(0));
        assert_eq!(
            s.earliest_start(&r, SimTime::from_secs(5)),
            SimTime::from_secs(5)
        );
    }

    #[test]
    fn sequential_reservations_queue() {
        let mut s = LinkSchedule::new(1);
        let r = Route::between(Endpoint::Host, Endpoint::Node(0));
        let end1 = s.reserve(&r, SimTime::ZERO, SimTime::from_secs(1));
        let start2 = s.earliest_start(&r, SimTime::ZERO);
        assert_eq!(start2, end1);
        let end2 = s.reserve(&r, start2, SimTime::from_secs(1));
        assert_eq!(end2, SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "busy until")]
    fn overlapping_reservation_panics() {
        let mut s = LinkSchedule::new(1);
        let r = Route::between(Endpoint::Host, Endpoint::Node(0));
        s.reserve(&r, SimTime::ZERO, SimTime::from_secs(2));
        s.reserve(&r, SimTime::from_secs(1), SimTime::from_secs(1));
    }
}
