//! The power-state machine of a node: (mode, DVS level) over time.
//!
//! A node is always in exactly one of the Fig. 7 modes at one DVS level; the
//! schedule of §3 (RECV → PROC → SEND, then idle until the next frame) is a
//! walk through these states. The state machine timestamps transitions and
//! exposes the resulting piecewise-constant current waveform.

use crate::current::{CurrentModel, Mode};
use crate::dvs::FreqLevel;
use dles_sim::SimTime;
use dles_units::MilliAmps;

/// Tracks the (mode, level) of one node and the current it implies.
#[derive(Debug, Clone)]
pub struct PowerState {
    model: CurrentModel,
    mode: Mode,
    level: FreqLevel,
    since: SimTime,
    transitions: u64,
}

impl PowerState {
    /// Start in `mode` at `level` at time zero.
    pub fn new(model: CurrentModel, mode: Mode, level: FreqLevel) -> Self {
        PowerState {
            model,
            mode,
            level,
            since: SimTime::ZERO,
            transitions: 0,
        }
    }

    pub fn mode(&self) -> Mode {
        self.mode
    }

    pub fn level(&self) -> FreqLevel {
        self.level
    }

    /// Time the current state was entered.
    pub fn since(&self) -> SimTime {
        self.since
    }

    /// Number of state transitions so far (a DVS-switching-overhead proxy).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Current draw in the present state.
    pub fn current_ma(&self) -> MilliAmps {
        self.model.current_ma(self.mode, self.level)
    }

    /// Enter a new state at `now`. Returns the segment just completed:
    /// `(duration, current_ma)` — the caller feeds this to the battery and
    /// the power monitor. A zero-duration segment is returned as-is (the
    /// caller may skip it).
    pub fn transition(
        &mut self,
        now: SimTime,
        mode: Mode,
        level: FreqLevel,
    ) -> (SimTime, MilliAmps) {
        debug_assert!(now >= self.since, "power state going backwards in time");
        let seg = (now.saturating_sub(self.since), self.current_ma());
        if mode != self.mode || level.index != self.level.index {
            self.transitions += 1;
        }
        self.mode = mode;
        self.level = level;
        self.since = now;
        seg
    }

    /// Close the waveform at `now` without changing state (end of
    /// experiment). Returns the final segment.
    pub fn finish(&mut self, now: SimTime) -> (SimTime, MilliAmps) {
        let seg = (now.saturating_sub(self.since), self.current_ma());
        self.since = now;
        seg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvs::DvsTable;

    #[test]
    fn transitions_emit_completed_segments() {
        let t = DvsTable::sa1100();
        let mut ps = PowerState::new(CurrentModel::itsy(), Mode::Idle, t.lowest());
        let i_idle = ps.current_ma();

        let (d1, i1) = ps.transition(SimTime::from_secs(2), Mode::Computation, t.highest());
        assert_eq!(d1, SimTime::from_secs(2));
        assert_eq!(i1, i_idle);

        let (d2, i2) = ps.transition(SimTime::from_secs(3), Mode::Idle, t.lowest());
        assert_eq!(d2, SimTime::from_secs(1));
        assert!((i2.get() - 130.0).abs() < 1.0);
        assert_eq!(ps.transitions(), 2);
    }

    #[test]
    fn same_state_transition_not_counted() {
        let t = DvsTable::sa1100();
        let mut ps = PowerState::new(CurrentModel::itsy(), Mode::Idle, t.lowest());
        ps.transition(SimTime::from_secs(1), Mode::Idle, t.lowest());
        assert_eq!(ps.transitions(), 0);
    }

    #[test]
    fn finish_closes_waveform() {
        let t = DvsTable::sa1100();
        let mut ps = PowerState::new(CurrentModel::itsy(), Mode::Communication, t.highest());
        let (d, i) = ps.finish(SimTime::from_secs(5));
        assert_eq!(d, SimTime::from_secs(5));
        assert!((i.get() - 110.0).abs() < 1.0);
        // A second finish at the same instant yields a zero-length segment.
        let (d2, _) = ps.finish(SimTime::from_secs(5));
        assert_eq!(d2, SimTime::ZERO);
    }
}
