//! The three-mode current model of Fig. 7.
//!
//! The paper reports net battery current for three modes of operation at
//! each of the 11 DVS levels. We reconstruct the three curves with an
//! analytic model
//!
//! ```text
//! I(mode, f, V) = I_base(mode) + k(mode) · f · V²      [mA; f in MHz]
//! ```
//!
//! anchored to every numeric current the paper states:
//!
//! * computation @ 206.4 MHz ≈ 130 mA (Fig. 7 top of range; §6.3),
//! * communication @ 206.4 MHz = 110 mA (§6.3),
//! * communication @ 103.2 MHz = 55 mA (§6.5),
//! * communication @ 59 MHz = 40 mA (§6.3, §6.5),
//! * idle @ 59 MHz = 30 mA (Fig. 7 bottom of range),
//! * overall range 30–130 mA ⇒ 0.12–0.52 W at 4 V (§4.4).
//!
//! The `f · V²` form is the CMOS dynamic-power law the paper's DVS argument
//! rests on (§1); the base terms capture leakage plus the always-on system
//! components (DRAM refresh, UART) that make Itsy's *net* current non-zero
//! even at idle.

use crate::dvs::FreqLevel;
use crate::sa1100::BATTERY_VOLTS;
use dles_units::{MilliAmps, MilliWatts};

/// Operating mode of a node, as in Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// No I/O and no computation workload.
    Idle,
    /// Sending or receiving on the serial port.
    Communication,
    /// Executing the ATR algorithm.
    Computation,
}

impl Mode {
    pub const ALL: [Mode; 3] = [Mode::Idle, Mode::Communication, Mode::Computation];

    pub fn name(self) -> &'static str {
        match self {
            Mode::Idle => "idle",
            Mode::Communication => "communication",
            Mode::Computation => "computation",
        }
    }
}

/// Per-mode affine-in-`f·V²` current model.
#[derive(Debug, Clone)]
pub struct CurrentModel {
    /// Base (frequency-independent) current per mode.
    pub base_ma: [MilliAmps; 3],
    /// Slope per mode, mA per (MHz·V²) — the model constant that absorbs
    /// the dimensions of the switching-activity proxy.
    pub k: [f64; 3],
}

impl CurrentModel {
    /// The Itsy model fitted to the paper's published anchors (see module
    /// docs). Fit residuals are checked in the unit tests below.
    pub fn itsy() -> Self {
        // Anchors (mode, f·V², mA):
        //   compute: (400.52, 130), and ≥ comm at every level so that
        //            "computation always dominates" (§4.4) holds — the
        //            compute floor sits just above the 40 mA comm current
        //            at 59 MHz
        //   comm:    (400.52, 110), (117.48, ~55), (49.83, 40)
        //   idle:    (49.83, 30) with a 25 mA system floor
        CurrentModel {
            base_ma: [
                MilliAmps::new(25.0),
                MilliAmps::new(30.055),
                MilliAmps::new(29.5),
            ],
            k: [0.100_4, 0.199_5, 0.250_9],
        }
    }

    fn mode_idx(mode: Mode) -> usize {
        match mode {
            Mode::Idle => 0,
            Mode::Communication => 1,
            Mode::Computation => 2,
        }
    }

    /// Net battery current for `mode` at operating point `level`.
    pub fn current_ma(&self, mode: Mode, level: FreqLevel) -> MilliAmps {
        let i = Self::mode_idx(mode);
        self.base_ma[i] + MilliAmps::new(self.k[i] * level.switching_activity())
    }

    /// Power draw at the 4 V pack voltage.
    pub fn power_mw(&self, mode: Mode, level: FreqLevel) -> MilliWatts {
        self.current_ma(mode, level) * BATTERY_VOLTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvs::DvsTable;
    use dles_units::Hertz;

    fn table() -> DvsTable {
        DvsTable::sa1100()
    }

    #[test]
    fn computation_anchor_130ma_at_peak() {
        let m = CurrentModel::itsy();
        let i = m.current_ma(Mode::Computation, table().highest()).get();
        assert!((i - 130.0).abs() < 1.0, "got {i}");
    }

    #[test]
    fn communication_anchors() {
        let m = CurrentModel::itsy();
        let t = table();
        let at = |f: f64| {
            m.current_ma(Mode::Communication, t.by_freq(Hertz::from_mhz(f)).unwrap())
                .get()
        };
        assert!((at(206.4) - 110.0).abs() < 1.0, "peak comm {}", at(206.4));
        assert!((at(59.0) - 40.0).abs() < 1.0, "min comm {}", at(59.0));
        assert!((at(103.2) - 55.0).abs() < 2.0, "mid comm {}", at(103.2));
    }

    #[test]
    fn idle_anchor_30ma_at_min() {
        let m = CurrentModel::itsy();
        let i = m.current_ma(Mode::Idle, table().lowest()).get();
        assert!((i - 30.0).abs() < 1.0, "got {i}");
    }

    #[test]
    fn overall_range_matches_fig7() {
        // §4.4: "the three curves range from 30 mA to 130 mA, indicating a
        // power range from 0.1W to 0.5W".
        let m = CurrentModel::itsy();
        let t = table();
        let mut lo = MilliAmps::new(f64::INFINITY);
        let mut hi = MilliAmps::new(f64::NEG_INFINITY);
        for level in t.iter() {
            for mode in Mode::ALL {
                let i = m.current_ma(mode, level);
                lo = lo.min(i);
                hi = hi.max(i);
            }
        }
        assert!((lo.get() - 30.0).abs() < 1.5, "min {}", lo.get());
        assert!((hi.get() - 130.0).abs() < 1.5, "max {}", hi.get());
        let p_lo = (lo * BATTERY_VOLTS).to_watts().get();
        let p_hi = (hi * BATTERY_VOLTS).to_watts().get();
        assert!((0.1..0.15).contains(&p_lo));
        assert!((0.45..0.55).contains(&p_hi));
    }

    #[test]
    fn computation_dominates_each_level() {
        // §4.4: "The computation always dominates the power consumption."
        let m = CurrentModel::itsy();
        for level in table().iter() {
            let idle = m.current_ma(Mode::Idle, level);
            let comm = m.current_ma(Mode::Communication, level);
            let comp = m.current_ma(Mode::Computation, level);
            assert!(comp > comm && comm > idle, "ordering broken at {level}");
        }
    }

    #[test]
    fn curves_monotone_in_frequency() {
        let m = CurrentModel::itsy();
        let t = table();
        for mode in Mode::ALL {
            let mut prev = MilliAmps::ZERO;
            for level in t.iter() {
                let i = m.current_ma(mode, level);
                assert!(i > prev, "{mode:?} not monotone at {level}");
                prev = i;
            }
        }
    }

    #[test]
    fn power_is_4v_times_current() {
        let m = CurrentModel::itsy();
        let l = table().highest();
        let i = m.current_ma(Mode::Computation, l).get();
        assert!((m.power_mw(Mode::Computation, l).get() - 4.0 * i).abs() < 1e-9);
    }
}
