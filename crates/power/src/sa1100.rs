//! StrongARM SA-1100 / Itsy platform constants, straight from the paper.
//!
//! §4.1: "It supports DVS on the StrongARM SA-1100 processor with 11
//! frequency levels from 59 – 206.4 MHz over 43 different voltage levels.
//! … The power supply is a 4V lithium-ion battery pack."
//!
//! The 11 (frequency, voltage) operating points are the x-axis labels of
//! Fig. 7.

use dles_units::{Hertz, Seconds, Volts};

/// The 11 SA-1100 operating points used by Itsy: raw (MHz, V) pairs, the
/// form [`DvsTable::from_points`](crate::dvs::DvsTable::from_points)
/// ingests before typing them as ([`Hertz`], [`Volts`]).
pub const SA1100_OPERATING_POINTS: [(f64, f64); 11] = [
    (59.0, 0.919),
    (73.7, 0.978),
    (88.5, 1.067),
    (103.2, 1.067),
    (118.0, 1.126),
    (132.7, 1.156),
    (147.5, 1.156),
    (162.2, 1.215),
    (176.9, 1.304),
    (191.7, 1.363),
    (206.4, 1.393),
];

/// Nominal battery pack voltage (4 V lithium-ion, §4.1). Used to convert
/// current draw (mA) into power (mW): `P = V_BATT · I`.
pub const BATTERY_VOLTS: Volts = Volts::new(4.0);

/// Peak clock rate — the baseline configuration's operating point.
pub const PEAK_MHZ: Hertz = Hertz::from_mhz(206.4);

/// Lowest clock rate — the "DVS during I/O" operating point (§5.2).
pub const MIN_MHZ: Hertz = Hertz::from_mhz(59.0);

/// Single-iteration latency of the whole ATR algorithm at the peak clock
/// rate (§4.3: "1.1 seconds to complete on one Itsy node running at the
/// peak clock rate of 206.4 MHz").
pub const ATR_FULL_SECS_AT_PEAK: Seconds = Seconds::new(1.1);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_levels_monotone_in_frequency() {
        assert_eq!(SA1100_OPERATING_POINTS.len(), 11);
        for w in SA1100_OPERATING_POINTS.windows(2) {
            assert!(w[0].0 < w[1].0, "frequencies must strictly increase");
            assert!(w[0].1 <= w[1].1, "voltage must be non-decreasing");
        }
    }

    #[test]
    fn endpoints_match_paper() {
        assert_eq!(SA1100_OPERATING_POINTS[0], (MIN_MHZ.mhz(), 0.919));
        assert_eq!(SA1100_OPERATING_POINTS[10], (PEAK_MHZ.mhz(), 1.393));
    }
}
