//! The power monitor: software model of Itsy's on-board instrumentation.
//!
//! §1: "We also use Itsy's on-board power instrumentation features to
//! collect data for the power characteristics." The monitor consumes the
//! piecewise-constant current segments emitted by
//! [`PowerState`](crate::state::PowerState) and maintains the charge
//! integral, time-weighted mean current, and (optionally) the full waveform
//! for trace-style figures.

use crate::sa1100::BATTERY_VOLTS;
use dles_sim::{SimTime, TimeWeighted, TraceRecord};
use dles_units::{Hertz, MilliAmpHours, MilliAmps, MilliJoules, Seconds};

/// One piecewise-constant piece of a current waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSegment {
    /// When the segment began.
    pub start: SimTime,
    /// How long the current held.
    pub duration: SimTime,
    /// Constant current over the segment.
    pub current_ma: MilliAmps,
}

impl LoadSegment {
    /// Energy drawn over the segment at the pack voltage.
    pub fn energy_mj(&self) -> MilliJoules {
        self.current_ma * BATTERY_VOLTS * Seconds::new(self.duration.as_secs_f64())
    }

    /// Structured trace record for this segment, stamped at the segment's
    /// end (when the draw is known); `mode`/`freq_mhz` describe the power
    /// state that produced it.
    pub fn trace_record(
        &self,
        component: &str,
        mode: &'static str,
        freq_mhz: Hertz,
    ) -> TraceRecord {
        TraceRecord::new(self.start + self.duration, component, "power_segment")
            .with("mode", mode)
            .with("freq_mhz", freq_mhz.mhz())
            .with("duration_us", self.duration)
            .with("current_ma", self.current_ma.get())
            .with("energy_mj", self.energy_mj().get())
    }
}

/// Accumulates a node's discharge waveform.
#[derive(Debug, Clone)]
pub struct PowerMonitor {
    tw: TimeWeighted,
    charge_mah: MilliAmpHours,
    clock: SimTime,
    waveform: Option<Vec<LoadSegment>>,
}

impl PowerMonitor {
    /// A monitor that keeps aggregates only (suitable for multi-hour runs).
    pub fn new() -> Self {
        PowerMonitor {
            tw: TimeWeighted::new(),
            charge_mah: MilliAmpHours::ZERO,
            clock: SimTime::ZERO,
            waveform: None,
        }
    }

    /// A monitor that additionally records every segment (for figures).
    pub fn with_waveform() -> Self {
        PowerMonitor {
            waveform: Some(Vec::new()),
            ..Self::new()
        }
    }

    /// Record a completed segment ending at `end`.
    pub fn record(&mut self, end: SimTime, duration: SimTime, current_ma: MilliAmps) {
        if duration == SimTime::ZERO {
            return;
        }
        let start = end.saturating_sub(duration);
        self.tw.set(start, current_ma.get());
        self.tw.finish(end);
        self.charge_mah += (current_ma * Seconds::new(duration.as_secs_f64())).to_milli_amp_hours();
        self.clock = end;
        if let Some(w) = &mut self.waveform {
            w.push(LoadSegment {
                start,
                duration,
                current_ma,
            });
        }
    }

    /// Total charge drawn so far.
    pub fn charge_mah(&self) -> MilliAmpHours {
        self.charge_mah
    }

    /// Time-weighted mean current over everything recorded.
    pub fn mean_current_ma(&self) -> MilliAmps {
        MilliAmps::new(self.tw.mean())
    }

    /// Peak current seen.
    pub fn peak_current_ma(&self) -> MilliAmps {
        MilliAmps::new(self.tw.max())
    }

    /// Last time a segment ended.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// The recorded waveform, if waveform capture was enabled.
    pub fn waveform(&self) -> Option<&[LoadSegment]> {
        self.waveform.as_deref()
    }
}

impl Default for PowerMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_integral_is_exact() {
        let mut m = PowerMonitor::new();
        // 1.1 s at 130 mA + 1.2 s at 40 mA (the experiment 1A frame shape).
        m.record(
            SimTime::from_secs_f64(1.1),
            SimTime::from_secs_f64(1.1),
            MilliAmps::new(130.0),
        );
        m.record(
            SimTime::from_secs_f64(2.3),
            SimTime::from_secs_f64(1.2),
            MilliAmps::new(40.0),
        );
        let expect = (130.0 * 1.1 + 40.0 * 1.2) / 3600.0;
        assert!((m.charge_mah().get() - expect).abs() < 1e-12);
        let mean = (130.0 * 1.1 + 40.0 * 1.2) / 2.3;
        assert!((m.mean_current_ma().get() - mean).abs() < 1e-9);
        assert_eq!(m.peak_current_ma(), MilliAmps::new(130.0));
    }

    #[test]
    fn segment_trace_record_carries_power_fields() {
        let seg = LoadSegment {
            start: SimTime::from_secs(1),
            duration: SimTime::from_secs(2),
            current_ma: MilliAmps::new(100.0),
        };
        // 100 mA × 4 V × 2 s = 800 mJ.
        assert!((seg.energy_mj().get() - 800.0).abs() < 1e-9);
        let rec = seg.trace_record("node1", "computation", Hertz::from_mhz(103.2));
        assert_eq!(rec.time, SimTime::from_secs(3));
        assert_eq!(rec.kind, "power_segment");
        assert_eq!(rec.str_field("mode"), Some("computation"));
        assert_eq!(rec.u64_field("duration_us"), Some(2_000_000));
    }

    #[test]
    fn zero_duration_segments_ignored() {
        let mut m = PowerMonitor::new();
        m.record(SimTime::from_secs(1), SimTime::ZERO, MilliAmps::new(500.0));
        assert_eq!(m.charge_mah(), MilliAmpHours::ZERO);
        assert_eq!(m.peak_current_ma(), MilliAmps::ZERO);
    }

    #[test]
    fn waveform_capture() {
        let mut m = PowerMonitor::with_waveform();
        m.record(
            SimTime::from_secs(1),
            SimTime::from_secs(1),
            MilliAmps::new(100.0),
        );
        m.record(
            SimTime::from_secs(2),
            SimTime::from_secs(1),
            MilliAmps::new(50.0),
        );
        let w = m.waveform().unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].start, SimTime::ZERO);
        assert_eq!(w[1].start, SimTime::from_secs(1));
        assert_eq!(w[1].current_ma, MilliAmps::new(50.0));
    }

    #[test]
    fn aggregate_only_monitor_stores_no_waveform() {
        let mut m = PowerMonitor::new();
        m.record(
            SimTime::from_secs(1),
            SimTime::from_secs(1),
            MilliAmps::new(100.0),
        );
        assert!(m.waveform().is_none());
    }
}
