//! The DVS frequency/voltage table and performance scaling.
//!
//! §4.3: "When the clock rate is reduced, the performance degrades linearly
//! with the clock rate" — computation at level `f` takes `t · f_peak / f`.
//! Communication latency is *frequency-independent* (§6.3: "communication
//! delay does not increase at a lower clock rate"); that is modelled in
//! `dles-net`, not here.

use crate::sa1100::SA1100_OPERATING_POINTS;
use dles_sim::SimTime;
use dles_units::{Hertz, MegaCycles, Seconds, Volts};
use std::fmt;

/// One DVS operating point: a (frequency, core voltage) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqLevel {
    /// Index into the owning [`DvsTable`] (0 = slowest).
    pub index: usize,
    /// Clock frequency.
    pub freq_mhz: Hertz,
    /// Core voltage.
    pub volts: Volts,
}

impl FreqLevel {
    /// The dynamic-power proxy `f · V²` (MHz·V²) that the current model
    /// scales; CMOS dynamic power is `∝ f V²` (§1). Unitless by
    /// convention — the current model's `k` absorbs the dimensions.
    #[inline]
    pub fn switching_activity(&self) -> f64 {
        self.freq_mhz.mhz() * self.volts.get() * self.volts.get()
    }
}

impl fmt::Display for FreqLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} MHz @ {:.3} V",
            self.freq_mhz.mhz(),
            self.volts.get()
        )
    }
}

/// An ordered table of DVS operating points (slowest first).
#[derive(Debug, Clone)]
pub struct DvsTable {
    levels: Vec<FreqLevel>,
}

impl DvsTable {
    /// The Itsy / SA-1100 table of Fig. 7.
    pub fn sa1100() -> Self {
        Self::from_points(&SA1100_OPERATING_POINTS)
    }

    /// Build a table from raw (MHz, V) pairs; must be sorted by frequency.
    pub fn from_points(points: &[(f64, f64)]) -> Self {
        assert!(!points.is_empty(), "empty DVS table");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "DVS table must be strictly increasing in frequency"
        );
        DvsTable {
            levels: points
                .iter()
                .enumerate()
                .map(|(index, &(mhz, v))| FreqLevel {
                    index,
                    freq_mhz: Hertz::from_mhz(mhz),
                    volts: Volts::new(v),
                })
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.levels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = FreqLevel> + '_ {
        self.levels.iter().copied()
    }

    /// Operating point by index; panics on out-of-range (model bug).
    pub fn level(&self, index: usize) -> FreqLevel {
        self.levels[index]
    }

    /// The slowest operating point (59 MHz on Itsy).
    pub fn lowest(&self) -> FreqLevel {
        self.levels[0]
    }

    /// The fastest operating point (206.4 MHz on Itsy).
    pub fn highest(&self) -> FreqLevel {
        *self.levels.last().expect("non-empty table")
    }

    /// The operating point whose frequency equals `freq_mhz` (within
    /// 0.05 MHz), if any. Convenient for writing experiments in the paper's
    /// own terms ("Node2 at 103.2 MHz").
    pub fn by_freq(&self, freq_mhz: Hertz) -> Option<FreqLevel> {
        self.levels
            .iter()
            .copied()
            .find(|l| (l.freq_mhz - freq_mhz).abs().mhz() < 0.05)
    }

    /// The slowest level that still delivers at least `freq_mhz` of clock —
    /// the level a deadline-feasibility analysis selects. `None` if even the
    /// top level is too slow (the ">206.4 MHz" row of Fig. 8).
    pub fn min_level_at_least(&self, freq_mhz: Hertz) -> Option<FreqLevel> {
        self.levels
            .iter()
            .copied()
            .find(|l| l.freq_mhz.mhz() + 1e-9 >= freq_mhz.mhz())
    }

    /// Scale a duration measured at the peak level to level `at`:
    /// `t · f_peak / f_at` (linear performance degradation, §4.3).
    pub fn scale_from_peak(&self, at_peak: SimTime, at: FreqLevel) -> SimTime {
        at_peak.scale_f64(self.highest().freq_mhz / at.freq_mhz)
    }

    /// Cycle count represented by a duration at the peak frequency
    /// (mega-cycles). Cycle counts are the frequency-independent measure of
    /// computation used by the partitioning analyzer.
    pub fn peak_secs_to_megacycles(&self, secs: Seconds) -> MegaCycles {
        secs * self.highest().freq_mhz
    }

    /// Time to execute `megacycles` at level `at`.
    pub fn megacycles_to_time(&self, megacycles: MegaCycles, at: FreqLevel) -> SimTime {
        SimTime::from_secs_f64((megacycles / at.freq_mhz).get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sa1100_table_shape() {
        let t = DvsTable::sa1100();
        assert_eq!(t.len(), 11);
        assert_eq!(t.lowest().freq_mhz.mhz(), 59.0);
        assert_eq!(t.highest().freq_mhz.mhz(), 206.4);
        assert_eq!(t.level(3).freq_mhz.mhz(), 103.2);
    }

    #[test]
    fn by_freq_finds_paper_levels() {
        let t = DvsTable::sa1100();
        for f in [59.0, 73.7, 103.2, 118.0, 132.7, 191.7, 206.4] {
            assert_eq!(t.by_freq(Hertz::from_mhz(f)).unwrap().freq_mhz.mhz(), f);
        }
        assert!(t.by_freq(Hertz::from_mhz(100.0)).is_none());
    }

    #[test]
    fn min_level_at_least_rounds_up() {
        let t = DvsTable::sa1100();
        // Needing 94.9 MHz selects 103.2 (the scheme-1 Node2 analysis).
        let at_least = |mhz: f64| t.min_level_at_least(Hertz::from_mhz(mhz));
        assert_eq!(at_least(94.9).unwrap().freq_mhz.mhz(), 103.2);
        // Needing exactly 59 selects 59.
        assert_eq!(at_least(59.0).unwrap().freq_mhz.mhz(), 59.0);
        // Needing 380 MHz (scheme-3 Node1) is infeasible.
        assert!(at_least(380.0).is_none());
    }

    #[test]
    fn performance_scales_linearly() {
        let t = DvsTable::sa1100();
        let half = t.by_freq(Hertz::from_mhz(103.2)).unwrap();
        let at_peak = SimTime::from_secs_f64(1.1);
        let scaled = t.scale_from_peak(at_peak, half);
        assert!((scaled.as_secs_f64() - 2.2).abs() < 1e-3);
    }

    #[test]
    fn cycles_roundtrip() {
        let t = DvsTable::sa1100();
        let mc = t.peak_secs_to_megacycles(Seconds::new(1.1));
        assert!((mc.get() - 227.04).abs() < 1e-6);
        let back = t.megacycles_to_time(mc, t.highest());
        assert!((back.as_secs_f64() - 1.1).abs() < 1e-6);
    }

    #[test]
    fn switching_activity_is_fv2() {
        let t = DvsTable::sa1100();
        let top = t.highest();
        assert!((top.switching_activity() - 206.4 * 1.393 * 1.393).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_table_rejected() {
        let _ = DvsTable::from_points(&[(100.0, 1.0), (50.0, 0.9)]);
    }
}
