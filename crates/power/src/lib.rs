//! # dles-power — DVS CPU and power models for the Itsy pocket computer
//!
//! Reproduces the power-relevant behaviour of the Itsy's StrongARM SA-1100
//! as published in Liu & Chou (IPPS 2004):
//!
//! * the 11-level frequency/voltage table of Fig. 7 ([`dvs`], [`sa1100`]);
//! * the three-mode (idle / communication / computation) current profile of
//!   Fig. 7, via an analytic `I = I_base + k · f · V²` model fitted to every
//!   current value the paper states ([`current`]);
//! * linear performance scaling with clock frequency (§4.3);
//! * a power-state machine + monitor that integrates the piecewise-constant
//!   current waveform a node draws, exactly like Itsy's built-in power
//!   monitor ([`state`], [`monitor`]).
//!
//! ```
//! use dles_power::{DvsTable, Mode, CurrentModel};
//!
//! let table = DvsTable::sa1100();
//! let top = table.highest();
//! assert_eq!(top.freq_mhz.mhz(), 206.4);
//!
//! let model = CurrentModel::itsy();
//! let i = model.current_ma(Mode::Computation, top);
//! assert!((i.get() - 130.0).abs() < 1.0); // Fig. 7: ~130 mA computing at 206.4 MHz
//! ```
#![forbid(unsafe_code)]

pub mod current;
pub mod dvs;
pub mod energy;
pub mod monitor;
pub mod sa1100;
pub mod state;

pub use current::{CurrentModel, Mode};
pub use dvs::{DvsTable, FreqLevel};
pub use energy::EnergyAccount;
pub use monitor::{LoadSegment, PowerMonitor};
pub use state::PowerState;
