//! Per-mode energy bookkeeping.
//!
//! The paper's analysis repeatedly splits a node's energy between
//! computation, communication, and idle (e.g. §4.4: "I/O energy becomes a
//! primary target to optimize in addition to DVS on computation").
//! [`EnergyAccount`] attributes each discharge segment to its mode so
//! reports can print that split.

use crate::current::Mode;
use crate::sa1100::BATTERY_VOLTS;
use dles_sim::SimTime;
use dles_units::{Joules, MilliAmps, Seconds};

/// Energy (and time) attributed to each of the three modes.
#[derive(Debug, Clone, Default)]
pub struct EnergyAccount {
    /// Energy per mode, indexed [idle, communication, computation].
    energy_j: [Joules; 3],
    /// Time per mode.
    time_s: [Seconds; 3],
}

impl EnergyAccount {
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(mode: Mode) -> usize {
        match mode {
            Mode::Idle => 0,
            Mode::Communication => 1,
            Mode::Computation => 2,
        }
    }

    /// Attribute a segment of `duration` at `current_ma` to `mode`.
    pub fn add(&mut self, mode: Mode, duration: SimTime, current_ma: MilliAmps) {
        let secs = Seconds::new(duration.as_secs_f64());
        let watts = current_ma.to_amps() * BATTERY_VOLTS;
        self.energy_j[Self::idx(mode)] += watts * secs;
        self.time_s[Self::idx(mode)] += secs;
    }

    /// Energy consumed in `mode`.
    pub fn energy_j(&self, mode: Mode) -> Joules {
        self.energy_j[Self::idx(mode)]
    }

    /// Time spent in `mode`.
    pub fn time_s(&self, mode: Mode) -> Seconds {
        self.time_s[Self::idx(mode)]
    }

    /// Total energy across all modes.
    pub fn total_j(&self) -> Joules {
        self.energy_j.iter().copied().sum()
    }

    /// Fraction of total energy spent in `mode` (0 if nothing recorded).
    pub fn fraction(&self, mode: Mode) -> f64 {
        let total = self.total_j();
        if total > Joules::ZERO {
            self.energy_j(mode) / total
        } else {
            0.0
        }
    }

    /// Merge another account into this one (for fleet-level totals).
    pub fn merge(&mut self, other: &EnergyAccount) {
        for i in 0..3 {
            self.energy_j[i] += other.energy_j[i];
            self.time_s[i] += other.time_s[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_and_totals() {
        let mut a = EnergyAccount::new();
        a.add(
            Mode::Computation,
            SimTime::from_secs_f64(1.1),
            MilliAmps::new(130.0),
        );
        a.add(
            Mode::Communication,
            SimTime::from_secs_f64(1.2),
            MilliAmps::new(110.0),
        );
        let e_comp = 0.130 * 4.0 * 1.1;
        let e_comm = 0.110 * 4.0 * 1.2;
        assert!((a.energy_j(Mode::Computation).get() - e_comp).abs() < 1e-12);
        assert!((a.energy_j(Mode::Communication).get() - e_comm).abs() < 1e-12);
        assert!((a.total_j().get() - (e_comp + e_comm)).abs() < 1e-12);
        assert!((a.fraction(Mode::Computation) - e_comp / (e_comp + e_comm)).abs() < 1e-12);
        assert_eq!(a.energy_j(Mode::Idle), Joules::ZERO);
        assert!((a.time_s(Mode::Communication).get() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn empty_account_fractions_are_zero() {
        let a = EnergyAccount::new();
        assert_eq!(a.fraction(Mode::Idle), 0.0);
        assert_eq!(a.total_j(), Joules::ZERO);
    }

    #[test]
    fn merge_sums_componentwise() {
        let mut a = EnergyAccount::new();
        a.add(Mode::Idle, SimTime::from_secs(10), MilliAmps::new(30.0));
        let mut b = EnergyAccount::new();
        b.add(Mode::Idle, SimTime::from_secs(5), MilliAmps::new(30.0));
        b.add(
            Mode::Computation,
            SimTime::from_secs(1),
            MilliAmps::new(130.0),
        );
        a.merge(&b);
        assert!((a.time_s(Mode::Idle).get() - 15.0).abs() < 1e-12);
        assert!(a.energy_j(Mode::Computation) > Joules::ZERO);
    }
}
