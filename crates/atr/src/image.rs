//! Grayscale images: the data flowing through the ATR pipeline.
//!
//! The paper's input frames are ~10.1 KB (Fig. 6); at 8 bits per pixel that
//! is a 128 × 80 frame, which is the default scene size used throughout
//! this workspace.

/// A row-major grayscale image with `f64` pixels (nominally in `[0, 255]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl Image {
    /// An all-zero image.
    pub fn zeros(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "degenerate image dimensions");
        Image {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Wrap an existing pixel buffer (row-major, `width × height`).
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<f64>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        Image {
            width,
            height,
            pixels,
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// Size of the image serialized at 8 bits/pixel, in bytes — the unit
    /// the paper's payload figures use.
    pub fn byte_size(&self) -> usize {
        self.width * self.height
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x] = v;
    }

    /// Add `v` to the pixel, ignoring out-of-bounds coordinates (used when
    /// painting targets that overlap the frame edge).
    pub fn add_clipped(&mut self, x: isize, y: isize, v: f64) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.pixels[y as usize * self.width + x as usize] += v;
        }
    }

    /// Extract a `w × h` patch with its top-left corner at `(x0, y0)`,
    /// zero-padding where the patch exceeds the frame.
    pub fn patch(&self, x0: isize, y0: isize, w: usize, h: usize) -> Image {
        let mut out = Image::zeros(w, h);
        for dy in 0..h {
            let sy = y0 + dy as isize;
            if sy < 0 || sy as usize >= self.height {
                continue;
            }
            for dx in 0..w {
                let sx = x0 + dx as isize;
                if sx < 0 || sx as usize >= self.width {
                    continue;
                }
                out.pixels[dy * w + dx] = self.pixels[sy as usize * self.width + sx as usize];
            }
        }
        out
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.pixels.iter().sum::<f64>() / self.pixels.len() as f64
    }

    /// Population variance of the pixel values.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.pixels.iter().map(|p| (p - m) * (p - m)).sum::<f64>() / self.pixels.len() as f64
    }

    /// Subtract the mean and scale to unit energy (zero image stays zero).
    /// Standard preprocessing before matched filtering.
    pub fn normalized(&self) -> Image {
        let m = self.mean();
        let energy: f64 = self.pixels.iter().map(|p| (p - m) * (p - m)).sum();
        let scale = if energy > 0.0 {
            energy.sqrt().recip()
        } else {
            0.0
        };
        Image {
            width: self.width,
            height: self.height,
            pixels: self.pixels.iter().map(|p| (p - m) * scale).collect(),
        }
    }

    /// Downsample by integer factor `f` (box filter) — the cheap first pass
    /// of the target-detection block.
    pub fn downsample(&self, f: usize) -> Image {
        assert!(f > 0, "downsample factor must be positive");
        let w = (self.width / f).max(1);
        let h = (self.height / f).max(1);
        let mut out = Image::zeros(w, h);
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0;
                let mut count = 0.0;
                for sy in y * f..((y + 1) * f).min(self.height) {
                    for sx in x * f..((x + 1) * f).min(self.width) {
                        acc += self.pixels[sy * self.width + sx];
                        count += 1.0;
                    }
                }
                out.pixels[y * w + x] = acc / count;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::zeros(4, 3);
        img.set(2, 1, 7.0);
        assert_eq!(img.get(2, 1), 7.0);
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.byte_size(), 12);
    }

    #[test]
    fn default_frame_matches_paper_payload() {
        // 128 × 80 @ 8bpp = 10 240 B ≈ the paper's 10.1 KB input frame.
        let img = Image::zeros(128, 80);
        assert_eq!(img.byte_size(), 10_240);
    }

    #[test]
    fn patch_zero_pads_out_of_bounds() {
        let mut img = Image::zeros(4, 4);
        img.set(0, 0, 5.0);
        let p = img.patch(-1, -1, 3, 3);
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(1, 1), 5.0);
    }

    #[test]
    fn add_clipped_ignores_outside() {
        let mut img = Image::zeros(2, 2);
        img.add_clipped(-1, 0, 9.0);
        img.add_clipped(5, 5, 9.0);
        img.add_clipped(1, 1, 9.0);
        assert_eq!(img.pixels().iter().sum::<f64>(), 9.0);
    }

    #[test]
    fn statistics() {
        let img = Image::from_pixels(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(img.mean(), 2.5);
        assert_eq!(img.variance(), 1.25);
    }

    #[test]
    fn normalized_has_zero_mean_unit_energy() {
        let img = Image::from_pixels(2, 2, vec![1.0, 2.0, 3.0, 10.0]);
        let n = img.normalized();
        assert!(n.mean().abs() < 1e-12);
        let energy: f64 = n.pixels().iter().map(|p| p * p).sum();
        assert!((energy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalizing_constant_image_is_safe() {
        let img = Image::from_pixels(2, 2, vec![3.0; 4]);
        let n = img.normalized();
        assert!(n.pixels().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn downsample_box_filter() {
        let img = Image::from_pixels(4, 2, vec![1.0, 3.0, 5.0, 7.0, 1.0, 3.0, 5.0, 7.0]);
        let d = img.downsample(2);
        assert_eq!(d.width(), 2);
        assert_eq!(d.height(), 1);
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(1, 0), 6.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_buffer_size_rejected() {
        let _ = Image::from_pixels(3, 3, vec![0.0; 8]);
    }
}
