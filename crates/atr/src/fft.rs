//! Radix-2 Cooley–Tukey FFT, 1-D and 2-D, written from scratch.
//!
//! These are the FFT / IFFT functional blocks of the ATR pipeline (Fig. 1).
//! Iterative, in-place, with bit-reversal permutation; the inverse transform
//! conjugates the twiddles and normalizes by `1/N`, so `ifft(fft(x)) = x`.
//!
//! Every public entry point returns the number of floating-point operations
//! it performed. The pipeline uses those counts to check that the relative
//! block costs of the real implementation are rank-consistent with the
//! paper's Fig. 6 measurements — a deterministic substitute for wall-clock
//! profiling.

use crate::complexnum::Complex;

/// Flops per radix-2 butterfly: one complex multiply (6) + two complex
/// additions (4).
const FLOPS_PER_BUTTERFLY: u64 = 10;

/// In-place 1-D FFT (or inverse FFT) of a power-of-two-length buffer.
///
/// Returns the flop count. Panics if the length is not a power of two —
/// the pipeline always works on power-of-two regions of interest.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) -> u64 {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return 0;
    }
    bit_reverse_permute(data);

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut flops = 0u64;
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = Complex::cis(ang * k as f64);
                let a = data[start + k];
                let b = data[start + k + half] * w;
                data[start + k] = a + b;
                data[start + k + half] = a - b;
            }
        }
        flops += (n / 2) as u64 * FLOPS_PER_BUTTERFLY;
        len <<= 1;
    }

    if inverse {
        let scale = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
        flops += 2 * n as u64;
    }
    flops
}

/// Bit-reversal permutation (the standard iterative-FFT reordering).
fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

/// In-place 2-D FFT of a `width × height` row-major buffer: 1-D transforms
/// over every row, then every column. Returns the flop count.
pub fn fft2d_in_place(data: &mut [Complex], width: usize, height: usize, inverse: bool) -> u64 {
    assert_eq!(data.len(), width * height, "buffer/dimension mismatch");
    assert!(
        width.is_power_of_two() && height.is_power_of_two(),
        "2-D FFT dimensions must be powers of two"
    );
    let mut flops = 0u64;
    // Rows.
    for row in data.chunks_exact_mut(width) {
        flops += fft_in_place(row, inverse);
    }
    // Columns, via a scratch column buffer.
    let mut col = vec![Complex::ZERO; height];
    for x in 0..width {
        for (y, c) in col.iter_mut().enumerate() {
            *c = data[y * width + x];
        }
        flops += fft_in_place(&mut col, inverse);
        for (y, c) in col.iter().enumerate() {
            data[y * width + x] = *c;
        }
    }
    flops
}

/// Forward 2-D FFT of a real-valued image patch (convenience wrapper):
/// embeds the reals into ℂ and transforms. Returns `(spectrum, flops)`.
pub fn fft2d_real(pixels: &[f64], width: usize, height: usize) -> (Vec<Complex>, u64) {
    assert_eq!(pixels.len(), width * height);
    let mut buf: Vec<Complex> = pixels.iter().map(|&p| Complex::real(p)).collect();
    let flops = fft2d_in_place(&mut buf, width, height, false);
    (buf, flops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    /// Naive O(n²) DFT for cross-validation.
    fn dft(data: &[Complex]) -> Vec<Complex> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &x) in data.iter().enumerate() {
                    acc += x * Complex::cis(-std::f64::consts::TAU * (k * j) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let data: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut fast = data.clone();
        fft_in_place(&mut fast, false);
        let slow = dft(&data);
        assert!(max_err(&fast, &slow) < 1e-9);
    }

    #[test]
    fn roundtrip_identity() {
        let data: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.1).cos()))
            .collect();
        let mut buf = data.clone();
        fft_in_place(&mut buf, false);
        fft_in_place(&mut buf, true);
        assert!(max_err(&buf, &data) < 1e-10);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut buf = vec![Complex::ZERO; 64];
        buf[0] = Complex::ONE;
        fft_in_place(&mut buf, false);
        for z in &buf {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let data: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.31).cos(), 0.0))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = data;
        fft_in_place(&mut buf, false);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn flop_count_is_nlogn() {
        let mut buf = vec![Complex::ONE; 1024];
        let flops = fft_in_place(&mut buf, false);
        // 1024/2 butterflies × 10 stages × 10 flops.
        assert_eq!(flops, 512 * 10 * 10);
    }

    #[test]
    fn fft2d_roundtrip() {
        let (w, h) = (16, 8);
        let data: Vec<Complex> = (0..w * h)
            .map(|i| Complex::new((i as f64 * 0.17).sin(), (i % 7) as f64))
            .collect();
        let mut buf = data.clone();
        fft2d_in_place(&mut buf, w, h, false);
        fft2d_in_place(&mut buf, w, h, true);
        assert!(max_err(&buf, &data) < 1e-10);
    }

    #[test]
    fn fft2d_dc_component_is_sum() {
        let (w, h) = (8, 8);
        let pixels = vec![2.0; w * h];
        let (spec, _) = fft2d_real(&pixels, w, h);
        assert!((spec[0].re - 2.0 * (w * h) as f64).abs() < 1e-9);
        assert!(spec[0].im.abs() < 1e-9);
        // All other bins of a constant image are zero.
        for z in &spec[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn real_input_spectrum_is_hermitian() {
        let (w, h) = (16, 16);
        let pixels: Vec<f64> = (0..w * h).map(|i| ((i * 37) % 11) as f64).collect();
        let (spec, _) = fft2d_real(&pixels, w, h);
        for y in 0..h {
            for x in 0..w {
                let a = spec[y * w + x];
                let b = spec[((h - y) % h) * w + ((w - x) % w)];
                assert!((a - b.conj()).abs() < 1e-8, "Hermitian broken at ({x},{y})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut buf = vec![Complex::ZERO; 12];
        fft_in_place(&mut buf, false);
    }
}

#[cfg(test)]
mod proptests {
    //! Seeded randomized tests (deterministic, framework-free).

    use super::*;
    use dles_sim::SimRng;

    fn random_signal(rng: &mut SimRng, max_log2: u64) -> Vec<Complex> {
        let log2 = rng.uniform_u64(1, max_log2);
        (0..1usize << log2)
            .map(|_| {
                Complex::new(
                    rng.uniform_f64(-100.0, 100.0),
                    rng.uniform_f64(-100.0, 100.0),
                )
            })
            .collect()
    }

    /// `ifft(fft(x)) == x` for arbitrary power-of-two signals.
    #[test]
    fn prop_roundtrip() {
        let mut rng = SimRng::seed_from_u64(0xFF7);
        for _ in 0..64 {
            let signal = random_signal(&mut rng, 9);
            let mut buf = signal.clone();
            fft_in_place(&mut buf, false);
            fft_in_place(&mut buf, true);
            for (a, b) in buf.iter().zip(&signal) {
                assert!((*a - *b).abs() < 1e-8);
            }
        }
    }

    /// Linearity: fft(a·x + y) == a·fft(x) + fft(y).
    #[test]
    fn prop_linearity() {
        let mut rng = SimRng::seed_from_u64(0x11EA);
        for _ in 0..64 {
            let x = random_signal(&mut rng, 7);
            let scale = rng.uniform_f64(-10.0, 10.0);
            let n = x.len();
            let y: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64, -(i as f64)))
                .collect();
            let combined: Vec<Complex> =
                x.iter().zip(&y).map(|(a, b)| a.scale(scale) + *b).collect();
            let mut f_comb = combined;
            fft_in_place(&mut f_comb, false);
            let mut fx = x.clone();
            fft_in_place(&mut fx, false);
            let mut fy = y;
            fft_in_place(&mut fy, false);
            for i in 0..n {
                let expect = fx[i].scale(scale) + fy[i];
                assert!((f_comb[i] - expect).abs() < 1e-6 * (1.0 + expect.abs()));
            }
        }
    }

    /// Parseval's theorem for arbitrary signals.
    #[test]
    fn prop_parseval() {
        let mut rng = SimRng::seed_from_u64(0x9A25);
        for _ in 0..64 {
            let signal = random_signal(&mut rng, 8);
            let n = signal.len() as f64;
            let e_time: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
            let mut buf = signal;
            fft_in_place(&mut buf, false);
            let e_freq: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
            assert!((e_time - e_freq).abs() < 1e-7 * (1.0 + e_time));
        }
    }

    /// Time shift ⇒ phase ramp: |fft(shift(x))| == |fft(x)|.
    #[test]
    fn prop_shift_preserves_magnitude() {
        let mut rng = SimRng::seed_from_u64(0x5F1F);
        for _ in 0..64 {
            let signal = random_signal(&mut rng, 7);
            let n = signal.len();
            let shift = rng.uniform_u64(0, 63) as usize % n;
            let mut shifted = signal.clone();
            shifted.rotate_right(shift);
            let mut fa = signal;
            fft_in_place(&mut fa, false);
            let mut fb = shifted;
            fft_in_place(&mut fb, false);
            for (a, b) in fa.iter().zip(&fb) {
                assert!((a.abs() - b.abs()).abs() < 1e-6 * (1.0 + a.abs()));
            }
        }
    }
}
