//! A minimal complex number type for the FFT kernels.
//!
//! Written from scratch (no `num-complex` dependency) with exactly the
//! operations the signal path needs.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A real number embedded in ℂ.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `r · e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// The unit phasor `e^{iθ}` — FFT twiddle factors.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²` (avoids the square root).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(a + b, Complex::new(4.0, 1.0)));
        assert!(close(a - b, Complex::new(-2.0, 3.0)));
        assert!(close(a * b, Complex::new(5.0, 5.0)));
        assert!(close((a * b) / b, a));
        assert!(close(-a, Complex::new(-1.0, -2.0)));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, -Complex::ONE));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.conj(), Complex::real(25.0)));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.im.atan2(z.re) - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let theta = k as f64 * 0.3;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scale_is_real_multiplication() {
        let z = Complex::new(1.5, -2.5);
        assert!(close(z.scale(2.0), Complex::new(3.0, -5.0)));
    }
}
