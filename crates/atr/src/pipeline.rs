//! The composed ATR pipeline: Target Detection → FFT → IFFT → Compute
//! Distance, with per-block work accounting.

use crate::blocks::Block;
use crate::detect::{detect_targets, DetectConfig, Roi};
use crate::distance::{compute_distance, DistanceEstimate, DEFAULT_SCALES};
use crate::filter::{fft_block, ifft_block, TemplateSpectra};
use crate::image::Image;
use crate::template::{TargetClass, Template};

/// A fully processed target: where it is, what it is, how far away.
#[derive(Debug, Clone)]
pub struct DetectedTarget {
    pub class: TargetClass,
    /// ROI centre in frame coordinates.
    pub cx: usize,
    pub cy: usize,
    /// Matched-filter score.
    pub match_score: f64,
    /// Estimated range, metres.
    pub distance_m: f64,
}

/// Result of one frame through the pipeline.
#[derive(Debug, Clone)]
pub struct AtrReport {
    pub targets: Vec<DetectedTarget>,
    /// Arithmetic work per block, indexed by [`Block::index`].
    pub block_flops: [u64; Block::COUNT],
}

impl AtrReport {
    pub fn flops(&self, block: Block) -> u64 {
        self.block_flops[block.index()]
    }

    pub fn total_flops(&self) -> u64 {
        self.block_flops.iter().sum()
    }
}

/// The configured pipeline: template bank, spectra, scale ladder.
#[derive(Debug, Clone)]
pub struct AtrPipeline {
    detect: DetectConfig,
    spectra: TemplateSpectra,
    scales: Vec<usize>,
}

impl AtrPipeline {
    /// Standard configuration: full template bank, default detector, the
    /// 8-step scale ladder.
    pub fn standard() -> Self {
        AtrPipeline {
            detect: DetectConfig::default(),
            spectra: TemplateSpectra::build(&Template::bank()),
            scales: DEFAULT_SCALES.to_vec(),
        }
    }

    /// Override the detector configuration.
    pub fn with_detect_config(mut self, cfg: DetectConfig) -> Self {
        self.detect = cfg;
        self
    }

    /// Override the distance scale ladder.
    pub fn with_scales(mut self, scales: Vec<usize>) -> Self {
        assert!(!scales.is_empty(), "empty scale ladder");
        self.scales = scales;
        self
    }

    /// Process one frame end to end.
    // lint: allow(D009) — non-empty invariants: the template bank is statically non-empty and `ifft_block` asserts its input, so the peak/scale expects cannot fire
    pub fn run(&self, frame: &Image) -> AtrReport {
        let mut block_flops = [0u64; Block::COUNT];

        // Block 1: Target Detection.
        let (rois, f_td) = detect_targets(frame, &self.detect);
        block_flops[Block::TargetDetection.index()] += f_td;

        let mut targets = Vec::with_capacity(rois.len());
        for roi in &rois {
            let patch = roi.extract(frame);

            // Block 2: FFT (+ matched-filter products).
            let (filtered, f_fft) = fft_block(&patch, &self.spectra);
            block_flops[Block::Fft.index()] += f_fft;

            // Block 3: IFFT (+ peak scan).
            let (matched, f_ifft) = ifft_block(&filtered);
            block_flops[Block::Ifft.index()] += f_ifft;

            // Block 4: Compute Distance.
            let (estimate, f_cd): (DistanceEstimate, u64) =
                compute_distance(&patch, matched.class, &self.scales);
            block_flops[Block::ComputeDistance.index()] += f_cd;

            targets.push(DetectedTarget {
                class: matched.class,
                cx: roi.cx,
                cy: roi.cy,
                match_score: matched.score,
                distance_m: estimate.distance_m,
            });
        }

        AtrReport {
            targets,
            block_flops,
        }
    }

    /// Run detection only (the share of a Node1 in the paper's best
    /// partitioning scheme). Returns ROIs for forwarding downstream.
    pub fn run_detection(&self, frame: &Image) -> (Vec<Roi>, u64) {
        detect_targets(frame, &self.detect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneBuilder;

    #[test]
    fn end_to_end_finds_and_ranges_a_target() {
        let scene = SceneBuilder::new(128, 80)
            .seed(5)
            .targets(1)
            .noise_sigma(4.0)
            .build();
        let report = AtrPipeline::standard().run(&scene.image);
        assert!(!report.targets.is_empty(), "nothing detected");
        let truth = &scene.truth[0];
        let t = &report.targets[0];
        // Position within half an ROI of truth centre.
        let tx = truth.x as f64 + truth.size as f64 / 2.0;
        let ty = truth.y as f64 + truth.size as f64 / 2.0;
        let dist = ((t.cx as f64 - tx).powi(2) + (t.cy as f64 - ty).powi(2)).sqrt();
        assert!(dist < 16.0, "detection {dist} px off");
        assert!(t.distance_m > 0.0);
    }

    #[test]
    fn classification_accuracy_over_seeds() {
        let mut correct = 0;
        let mut detected = 0;
        let n = 25;
        let pipeline = AtrPipeline::standard();
        for seed in 100..100 + n {
            let scene = SceneBuilder::new(128, 80)
                .seed(seed)
                .targets(1)
                .noise_sigma(4.0)
                .size_range(14, 20)
                .build();
            let report = pipeline.run(&scene.image);
            let truth = &scene.truth[0];
            // Find the report target nearest the truth.
            if let Some(t) = report.targets.iter().min_by_key(|t| {
                let dx = t.cx as i64 - (truth.x + truth.size / 2) as i64;
                let dy = t.cy as i64 - (truth.y + truth.size / 2) as i64;
                dx * dx + dy * dy
            }) {
                detected += 1;
                if t.class == truth.class {
                    correct += 1;
                }
            }
        }
        assert!(detected >= n * 7 / 10, "detected {detected}/{n}");
        assert!(
            correct * 3 >= detected * 2,
            "classification {correct}/{detected}"
        );
    }

    #[test]
    fn block_work_rank_matches_fig6() {
        // Fig. 6 latency rank: Compute Distance > IFFT > FFT > Target
        // Detection. The real implementation must reproduce the rank — the
        // deterministic substitute for wall-clock profiling.
        let scene = SceneBuilder::new(128, 80).seed(5).targets(1).build();
        let report = AtrPipeline::standard().run(&scene.image);
        let td = report.flops(Block::TargetDetection);
        let fft = report.flops(Block::Fft);
        let ifft = report.flops(Block::Ifft);
        let cd = report.flops(Block::ComputeDistance);
        assert!(td > 0 && fft > 0 && ifft > 0 && cd > 0);
        assert!(cd > ifft, "CD {cd} <= IFFT {ifft}");
        assert!(ifft > fft, "IFFT {ifft} <= FFT {fft}");
        assert!(fft > td, "FFT {fft} <= TD {td}");
    }

    #[test]
    fn empty_scene_costs_only_detection() {
        let scene = SceneBuilder::new(128, 80)
            .seed(13)
            .targets(0)
            .clutter_blobs(0)
            .build();
        let report = AtrPipeline::standard().run(&scene.image);
        if report.targets.is_empty() {
            assert_eq!(report.flops(Block::Fft), 0);
            assert_eq!(report.flops(Block::ComputeDistance), 0);
            assert!(report.flops(Block::TargetDetection) > 0);
        }
    }

    #[test]
    fn multi_target_scenes_yield_multiple_detections() {
        // The paper notes "a multi-frame, multi-target version of the
        // algorithm is also available" (§3); the pipeline handles any
        // number of ROIs per frame.
        let pipeline = AtrPipeline::standard();
        let mut multi_hits = 0;
        for seed in 300..315 {
            let scene = SceneBuilder::new(128, 80)
                .seed(seed)
                .targets(3)
                .noise_sigma(4.0)
                .build();
            let report = pipeline.run(&scene.image);
            if report.targets.len() >= 2 {
                multi_hits += 1;
            }
            // Per-ROI work scales the filter/distance blocks.
            if report.targets.len() >= 2 {
                let per_roi = report.flops(Block::Fft) / report.targets.len() as u64;
                assert!(per_roi > 0);
            }
        }
        assert!(
            multi_hits >= 8,
            "only {multi_hits}/15 scenes gave ≥2 detections"
        );
    }

    #[test]
    fn block_work_scales_linearly_with_detections() {
        let pipeline = AtrPipeline::standard();
        let one = SceneBuilder::new(128, 80).seed(5).targets(1).build();
        let r1 = pipeline.run(&one.image);
        let many = SceneBuilder::new(128, 80).seed(21).targets(4).build();
        let r4 = pipeline.run(&many.image);
        if r4.targets.len() > r1.targets.len() && !r1.targets.is_empty() {
            let per1 = r1.flops(Block::ComputeDistance) as f64 / r1.targets.len() as f64;
            let per4 = r4.flops(Block::ComputeDistance) as f64 / r4.targets.len() as f64;
            let rel = (per1 - per4).abs() / per1;
            assert!(rel < 0.01, "per-ROI CD cost differs: {per1} vs {per4}");
        }
    }

    #[test]
    fn distance_estimates_are_in_range_ballpark() {
        // With ladder sizes 8..28 and reference 500 m @16 px, estimates
        // should land within [250, 1100] m for in-range renditions.
        let pipeline = AtrPipeline::standard();
        let mut checked = 0;
        for seed in 200..220 {
            let scene = SceneBuilder::new(128, 80)
                .seed(seed)
                .targets(1)
                .size_range(10, 24)
                .build();
            let report = pipeline.run(&scene.image);
            for t in &report.targets {
                assert!(
                    (150.0..1500.0).contains(&t.distance_m),
                    "distance {} m out of ballpark",
                    t.distance_m
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }
}
