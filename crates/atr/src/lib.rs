//! # dles-atr — the automatic target recognition workload
//!
//! The paper's motivating application (§3, Fig. 1): an image-processing
//! pipeline of four functional blocks —
//!
//! ```text
//! Target Detection → FFT → IFFT → Compute Distance
//! ```
//!
//! — that detects pre-defined targets on an input image, extracts a region
//! of interest per target, filters it against templates in the frequency
//! domain, and finally computes the distance of each target.
//!
//! This crate contains **two coupled representations** of that workload:
//!
//! 1. A *real, runnable implementation*: synthetic scene generation
//!    ([`scene`]), a radix-2 1-D/2-D FFT written from scratch ([`fft`]),
//!    frequency-domain matched filtering ([`filter`]), detection
//!    ([`detect`]) and distance estimation over a template scale sweep
//!    ([`distance`]), composed in [`pipeline`]. Every block counts its
//!    arithmetic work, so the relative block costs can be checked against
//!    the paper's measurements deterministically.
//! 2. The *measured profile* of Fig. 6 ([`profile`]): per-block latency at
//!    206.4 MHz and communication payload bytes, which is what the
//!    battery-lifetime simulator consumes.
//!
//! The block/partition algebra shared by both lives in [`blocks`].
//!
//! ```
//! use dles_atr::{scene::SceneBuilder, pipeline::AtrPipeline};
//!
//! let scene = SceneBuilder::new(128, 80).seed(7).targets(1).build();
//! let pipeline = AtrPipeline::standard();
//! let report = pipeline.run(&scene.image);
//! assert!(!report.targets.is_empty());
//! ```
#![forbid(unsafe_code)]

pub mod blocks;
pub mod complexnum;
pub mod detect;
pub mod distance;
pub mod fft;
pub mod filter;
pub mod image;
pub mod pipeline;
pub mod profile;
pub mod scene;
pub mod template;

pub use blocks::{Block, BlockRange};
pub use complexnum::Complex;
pub use image::Image;
pub use pipeline::{AtrPipeline, AtrReport};
pub use profile::{AtrProfile, BlockProfile};
