//! The measured ATR performance profile of Fig. 6.
//!
//! For each functional block the paper publishes its latency on an Itsy at
//! the 206.4 MHz peak clock and the size of its output payload:
//!
//! ```text
//!   input frame                    10.1 KB
//!   Target Detection   0.18 s  →    0.6 KB
//!   FFT                0.19 s  →    7.5 KB
//!   IFFT               0.32 s  →    7.5 KB
//!   Compute Distance   0.53 s  →    0.1 KB (final result)
//! ```
//!
//! §4.3 also states the *whole* algorithm takes **1.1 s** at peak clock,
//! while the published block latencies sum to 1.22 s. The default profile
//! therefore scales the block latencies by `1.1 / 1.22` so the end-to-end
//! time matches the number every lifetime experiment depends on;
//! [`AtrProfile::paper_unscaled`] keeps the raw figures for sensitivity
//! checks. (This reconstruction reproduces Fig. 8 well: e.g. scheme 3's
//! Node1 computes to a required ≈378 MHz vs. the paper's "380 MHz".)

use crate::blocks::{Block, BlockRange};

/// Profile of a single functional block.
#[derive(Debug, Clone, Copy)]
pub struct BlockProfile {
    pub block: Block,
    /// Latency at the 206.4 MHz peak clock, seconds.
    pub peak_secs: f64,
    /// Output payload, bytes.
    pub output_bytes: u64,
}

/// The full algorithm profile.
#[derive(Debug, Clone)]
pub struct AtrProfile {
    blocks: [BlockProfile; Block::COUNT],
    /// Raw input frame size, bytes.
    pub input_bytes: u64,
}

const KB: f64 = 1024.0;

fn kb(x: f64) -> u64 {
    (x * KB).round() as u64
}

impl AtrProfile {
    /// Fig. 6 profile with block latencies scaled so they sum to the 1.1 s
    /// whole-algorithm measurement of §4.3 (see module docs).
    pub fn paper() -> Self {
        let raw = Self::paper_unscaled();
        let scale = 1.1 / raw.total_peak_secs();
        let blocks = raw.blocks.map(|b| BlockProfile {
            peak_secs: b.peak_secs * scale,
            ..b
        });
        AtrProfile {
            blocks,
            input_bytes: raw.input_bytes,
        }
    }

    /// Fig. 6 profile with the raw published per-block latencies
    /// (summing to 1.22 s).
    pub fn paper_unscaled() -> Self {
        AtrProfile {
            blocks: [
                BlockProfile {
                    block: Block::TargetDetection,
                    peak_secs: 0.18,
                    output_bytes: kb(0.6),
                },
                BlockProfile {
                    block: Block::Fft,
                    peak_secs: 0.19,
                    output_bytes: kb(7.5),
                },
                BlockProfile {
                    block: Block::Ifft,
                    peak_secs: 0.32,
                    output_bytes: kb(7.5),
                },
                BlockProfile {
                    block: Block::ComputeDistance,
                    peak_secs: 0.53,
                    output_bytes: kb(0.1),
                },
            ],
            input_bytes: kb(10.1),
        }
    }

    pub fn block(&self, b: Block) -> BlockProfile {
        self.blocks[b.index()]
    }

    /// Sum of all block latencies at peak clock, seconds.
    pub fn total_peak_secs(&self) -> f64 {
        self.blocks.iter().map(|b| b.peak_secs).sum()
    }

    /// Computation latency at peak clock of one node's share, seconds.
    pub fn peak_secs(&self, range: BlockRange) -> f64 {
        range.blocks().map(|b| self.block(b).peak_secs).sum()
    }

    /// Bytes a node running `range` receives per frame: the raw frame for
    /// the first node, else the previous block's output.
    pub fn recv_bytes(&self, range: BlockRange) -> u64 {
        if range.is_first() {
            self.input_bytes
        } else {
            self.blocks[range.start() - 1].output_bytes
        }
    }

    /// Bytes a node running `range` sends per frame: its last block's
    /// output (the final result for the last node).
    pub fn send_bytes(&self, range: BlockRange) -> u64 {
        self.block(range.last_block()).output_bytes
    }

    /// Total communication payload of a node running `range`, bytes —
    /// the "comm. payload" columns of Fig. 8.
    pub fn comm_payload_bytes(&self, range: BlockRange) -> u64 {
        self.recv_bytes(range) + self.send_bytes(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscaled_matches_fig6_raw_numbers() {
        let p = AtrProfile::paper_unscaled();
        assert_eq!(p.block(Block::TargetDetection).peak_secs, 0.18);
        assert_eq!(p.block(Block::Fft).peak_secs, 0.19);
        assert_eq!(p.block(Block::Ifft).peak_secs, 0.32);
        assert_eq!(p.block(Block::ComputeDistance).peak_secs, 0.53);
        assert!((p.total_peak_secs() - 1.22).abs() < 1e-12);
        assert_eq!(p.input_bytes, 10_342);
        assert_eq!(p.block(Block::TargetDetection).output_bytes, 614);
        assert_eq!(p.block(Block::Fft).output_bytes, 7_680);
        assert_eq!(p.block(Block::ComputeDistance).output_bytes, 102);
    }

    #[test]
    fn scaled_profile_sums_to_1_1s() {
        let p = AtrProfile::paper();
        assert!((p.total_peak_secs() - 1.1).abs() < 1e-12);
        // Relative shares preserved.
        let raw = AtrProfile::paper_unscaled();
        for b in Block::ALL {
            let ratio = p.block(b).peak_secs / raw.block(b).peak_secs;
            assert!((ratio - 1.1 / 1.22).abs() < 1e-12);
        }
    }

    #[test]
    fn payloads_reproduce_fig8_columns() {
        let p = AtrProfile::paper();
        // Scheme 1: Node1 = (TD): 10.1 + 0.6 = 10.7 KB; Node2: 0.6 + 0.1 = 0.7 KB.
        let s1n1 = BlockRange::new(0, 1);
        let s1n2 = BlockRange::new(1, 4);
        assert!((p.comm_payload_bytes(s1n1) as f64 / 1024.0 - 10.7).abs() < 0.05);
        assert!((p.comm_payload_bytes(s1n2) as f64 / 1024.0 - 0.7).abs() < 0.05);
        // Scheme 2: Node1 = (TD+FFT): 10.1 + 7.5 = 17.6; Node2: 7.5 + 0.1 = 7.6.
        let s2n1 = BlockRange::new(0, 2);
        let s2n2 = BlockRange::new(2, 4);
        assert!((p.comm_payload_bytes(s2n1) as f64 / 1024.0 - 17.6).abs() < 0.05);
        assert!((p.comm_payload_bytes(s2n2) as f64 / 1024.0 - 7.6).abs() < 0.05);
        // Scheme 3 repeats the 17.6 / 7.6 split (Fig. 8, third row).
        let s3n1 = BlockRange::new(0, 3);
        let s3n2 = BlockRange::new(3, 4);
        assert!((p.comm_payload_bytes(s3n1) as f64 / 1024.0 - 17.6).abs() < 0.05);
        assert!((p.comm_payload_bytes(s3n2) as f64 / 1024.0 - 7.6).abs() < 0.05);
    }

    #[test]
    fn full_range_io_is_frame_in_result_out() {
        let p = AtrProfile::paper();
        let full = BlockRange::full();
        assert_eq!(p.recv_bytes(full), 10_342);
        assert_eq!(p.send_bytes(full), 102);
        assert!((p.peak_secs(full) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn share_latencies_partition_the_total() {
        let p = AtrProfile::paper();
        for parts in crate::blocks::partitions(3) {
            let sum: f64 = parts.iter().map(|&r| p.peak_secs(r)).sum();
            assert!((sum - 1.1).abs() < 1e-9);
        }
    }
}
