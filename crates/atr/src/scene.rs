//! Synthetic scene generation: the "camera/sensor" data source.
//!
//! The paper's frames come from an external source over the network (§3);
//! we synthesize them — targets painted at known positions and scales over
//! clutter and sensor noise — so every experiment has ground truth to score
//! detection against.

use crate::image::Image;
use crate::template::{TargetClass, Template};
use dles_sim::SimRng;

/// Ground truth for one painted target.
#[derive(Debug, Clone)]
pub struct PlacedTarget {
    pub class: TargetClass,
    /// Top-left corner of the rendition in the frame.
    pub x: usize,
    pub y: usize,
    /// Rendition edge length, pixels.
    pub size: usize,
    /// True distance implied by the rendition scale, metres.
    pub distance_m: f64,
}

/// A generated frame plus its ground truth.
#[derive(Debug, Clone)]
pub struct Scene {
    pub image: Image,
    pub truth: Vec<PlacedTarget>,
}

/// Deterministic scene generator.
#[derive(Debug, Clone)]
pub struct SceneBuilder {
    width: usize,
    height: usize,
    seed: u64,
    targets: usize,
    noise_sigma: f64,
    clutter_blobs: usize,
    background: f64,
    size_range: (usize, usize),
}

impl SceneBuilder {
    /// Default frame: the paper's ~10.1 KB input is a 128 × 80 frame at
    /// 8 bpp; moderate sensor noise and a little clutter.
    pub fn new(width: usize, height: usize) -> Self {
        SceneBuilder {
            width,
            height,
            seed: 0,
            targets: 1,
            noise_sigma: 8.0,
            clutter_blobs: 3,
            background: 60.0,
            size_range: (12, 24),
        }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of targets to paint. The paper's experiments process "one
    /// image and one target at a time" (§3) but a multi-target variant is
    /// mentioned; both are supported.
    pub fn targets(mut self, n: usize) -> Self {
        self.targets = n;
        self
    }

    pub fn noise_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        self.noise_sigma = sigma;
        self
    }

    pub fn clutter_blobs(mut self, n: usize) -> Self {
        self.clutter_blobs = n;
        self
    }

    /// Allowed rendition sizes (min, max) in pixels.
    pub fn size_range(mut self, min: usize, max: usize) -> Self {
        assert!(min > 0 && min <= max, "invalid size range");
        self.size_range = (min, max);
        self
    }

    /// Generate the scene.
    pub fn build(&self) -> Scene {
        let mut rng = SimRng::seed_from_u64(self.seed);
        let mut img = Image::zeros(self.width, self.height);

        // Background level + sensor noise.
        for y in 0..self.height {
            for x in 0..self.width {
                let v = self.background + rng.normal(0.0, self.noise_sigma);
                img.set(x, y, v.clamp(0.0, 255.0));
            }
        }

        // Low-contrast clutter blobs (rocks, bushes).
        for _ in 0..self.clutter_blobs {
            let cx = rng.uniform_u64(0, self.width as u64 - 1) as isize;
            let cy = rng.uniform_u64(0, self.height as u64 - 1) as isize;
            let r = rng.uniform_u64(2, 6) as isize;
            let amp = rng.uniform_f64(15.0, 35.0);
            for dy in -r..=r {
                for dx in -r..=r {
                    if dx * dx + dy * dy <= r * r {
                        img.add_clipped(cx + dx, cy + dy, amp);
                    }
                }
            }
        }

        // Targets.
        let bank = Template::bank();
        let mut truth = Vec::with_capacity(self.targets);
        for _ in 0..self.targets {
            let template = &bank[rng.uniform_u64(0, bank.len() as u64 - 1) as usize];
            let size = rng.uniform_u64(self.size_range.0 as u64, self.size_range.1 as u64) as usize;
            let size = size
                .min(self.width.min(self.height).saturating_sub(2))
                .max(1);
            let x = rng.uniform_u64(0, (self.width - size) as u64) as usize;
            let y = rng.uniform_u64(0, (self.height - size) as u64) as usize;
            let rendition = template.scaled(size);
            for dy in 0..size {
                for dx in 0..size {
                    let v = rendition.get(dx, dy);
                    if v > 0.0 {
                        img.add_clipped((x + dx) as isize, (y + dy) as isize, v);
                    }
                }
            }
            truth.push(PlacedTarget {
                class: template.class,
                x,
                y,
                size,
                distance_m: template.distance_for_size(size),
            });
        }

        Scene { image: img, truth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = SceneBuilder::new(64, 48).seed(42).targets(2).build();
        let b = SceneBuilder::new(64, 48).seed(42).targets(2).build();
        assert_eq!(a.image.pixels(), b.image.pixels());
        assert_eq!(a.truth.len(), b.truth.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SceneBuilder::new(64, 48).seed(1).build();
        let b = SceneBuilder::new(64, 48).seed(2).build();
        assert_ne!(a.image.pixels(), b.image.pixels());
    }

    #[test]
    fn targets_are_within_frame() {
        let s = SceneBuilder::new(128, 80).seed(3).targets(4).build();
        assert_eq!(s.truth.len(), 4);
        for t in &s.truth {
            assert!(t.x + t.size <= 128);
            assert!(t.y + t.size <= 80);
            assert!(t.distance_m > 0.0);
        }
    }

    #[test]
    fn target_region_is_brighter_than_background() {
        let s = SceneBuilder::new(128, 80)
            .seed(7)
            .targets(1)
            .noise_sigma(2.0)
            .build();
        let t = &s.truth[0];
        let patch = s.image.patch(t.x as isize, t.y as isize, t.size, t.size);
        assert!(
            patch.mean() > s.image.mean() + 10.0,
            "target patch mean {} vs frame mean {}",
            patch.mean(),
            s.image.mean()
        );
    }

    #[test]
    fn zero_targets_supported() {
        let s = SceneBuilder::new(32, 32).seed(9).targets(0).build();
        assert!(s.truth.is_empty());
    }

    #[test]
    fn noise_free_scene_is_smooth() {
        let s = SceneBuilder::new(32, 32)
            .seed(11)
            .targets(0)
            .noise_sigma(0.0)
            .clutter_blobs(0)
            .build();
        assert!(s.image.variance() < 1e-9);
    }
}
