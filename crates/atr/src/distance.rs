//! The Compute Distance block: estimate target range by scale sweep.
//!
//! Apparent size is inversely proportional to distance, so the block
//! correlates the region of interest against renditions of the recognized
//! class at a ladder of scales (each a full frequency-domain correlation)
//! and converts the best-responding scale into a range estimate, refined
//! by parabolic interpolation over the score curve. The sweep makes this
//! the most expensive block — matching its position in the paper's Fig. 6
//! profile (0.53 s, the largest share).

use crate::complexnum::Complex;
use crate::detect::ROI_SIZE;
use crate::fft::{fft2d_in_place, fft2d_real};
use crate::image::Image;
use crate::template::{TargetClass, Template};

/// The default scale ladder swept by the block, pixels.
pub const DEFAULT_SCALES: [usize; 8] = [8, 10, 12, 14, 16, 20, 24, 28];

/// A range estimate for one recognized target.
#[derive(Debug, Clone, Copy)]
pub struct DistanceEstimate {
    pub class: TargetClass,
    /// Estimated range, metres.
    pub distance_m: f64,
    /// The scale (pixels) that responded best.
    pub best_size: usize,
    /// Peak correlation at the best scale.
    pub score: f64,
}

/// Correlate `patch` against renditions of `class` at each scale in
/// `scales` and estimate the distance. Returns the estimate and the block's
/// work count.
pub fn compute_distance(
    patch: &Image,
    class: TargetClass,
    scales: &[usize],
) -> (DistanceEstimate, u64) {
    assert_eq!(patch.width(), ROI_SIZE);
    assert_eq!(patch.height(), ROI_SIZE);
    assert!(!scales.is_empty(), "empty scale ladder");

    let template = Template::render(class);
    let normalized = patch.normalized();
    let (patch_spec, mut flops) = fft2d_real(normalized.pixels(), ROI_SIZE, ROI_SIZE);

    let mut responses: Vec<(usize, f64)> = Vec::with_capacity(scales.len());
    // One matched-filter buffer reused across the scale ladder, instead of
    // a fresh `collect` per scale.
    let mut product: Vec<Complex> = Vec::with_capacity(patch_spec.len());
    for &size in scales {
        let size = size.min(ROI_SIZE);
        // Render, normalize and pad the scaled template.
        let scaled = template.scaled(size).normalized();
        let mut tile = Image::zeros(ROI_SIZE, ROI_SIZE);
        for y in 0..size {
            for x in 0..size {
                tile.set(x, y, scaled.get(x, y));
            }
        }
        // Forward transform of the rendition.
        let (tmpl_spec, f) = fft2d_real(tile.pixels(), ROI_SIZE, ROI_SIZE);
        flops += f;
        // Matched filter product and inverse transform.
        product.clear();
        product.extend(
            patch_spec
                .iter()
                .zip(&tmpl_spec)
                .map(|(a, b)| *a * b.conj()),
        );
        flops += 6 * (ROI_SIZE * ROI_SIZE) as u64;
        flops += fft2d_in_place(&mut product, ROI_SIZE, ROI_SIZE, true);
        // Peak response at this scale.
        let peak = product
            .iter()
            .map(|z| z.re)
            .fold(f64::NEG_INFINITY, f64::max);
        flops += (ROI_SIZE * ROI_SIZE) as u64;
        responses.push((size, peak));
    }

    // Pick the best scale and refine with a parabolic fit over the
    // (index, score) curve when interior.
    let best_idx = responses
        .iter()
        .enumerate()
        // `total_cmp`: a NaN response ranks above all finite scores, so a
        // degenerate correlation stays deterministic instead of panicking.
        .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .map(|(i, _)| i)
        .expect("non-empty responses");
    let (best_size, best_score) = responses[best_idx];

    let refined_size = if best_idx > 0 && best_idx + 1 < responses.len() {
        let (s0, y0) = responses[best_idx - 1];
        let (s1, y1) = responses[best_idx];
        let (s2, y2) = responses[best_idx + 1];
        parabolic_vertex(s0 as f64, y0, s1 as f64, y1, s2 as f64, y2)
    } else {
        best_size as f64
    };

    let distance_m = template.reference_distance_m * crate::template::TEMPLATE_SIZE as f64
        / refined_size.max(1.0);

    (
        DistanceEstimate {
            class,
            distance_m,
            best_size,
            score: best_score,
        },
        flops,
    )
}

/// Vertex abscissa of the parabola through three points; falls back to the
/// middle point when the points are collinear.
fn parabolic_vertex(x0: f64, y0: f64, x1: f64, y1: f64, x2: f64, y2: f64) -> f64 {
    // Newton form: p(x) = y0 + d1(x−x0) + c(x−x0)(x−x1);
    // p'(x) = 0 at (x0+x1)/2 − d1/(2c).
    let d1 = (y1 - y0) / (x1 - x0);
    let d2 = (y2 - y1) / (x2 - x1);
    let curvature = (d2 - d1) / (x2 - x0);
    if curvature.abs() < 1e-12 {
        return x1;
    }
    let vertex = (x0 + x1) / 2.0 - d1 / (2.0 * curvature);
    vertex.clamp(x0, x2)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A patch with `class` rendered at exactly `size` pixels.
    fn patch_at_scale(class: TargetClass, size: usize) -> Image {
        let t = Template::render(class).scaled(size);
        let mut img = Image::zeros(ROI_SIZE, ROI_SIZE);
        let off = (ROI_SIZE - size) / 2;
        for y in 0..size {
            for x in 0..size {
                img.set(x + off, y + off, t.get(x, y) + 40.0);
            }
        }
        img
    }

    #[test]
    fn recovers_the_rendered_scale() {
        for &size in &[10usize, 16, 24] {
            let patch = patch_at_scale(TargetClass::Tank, size);
            let (est, _) = compute_distance(&patch, TargetClass::Tank, &DEFAULT_SCALES);
            assert!(
                (est.best_size as i64 - size as i64).unsigned_abs() <= 2,
                "rendered {size}, best {}",
                est.best_size
            );
        }
    }

    #[test]
    fn distance_decreases_with_apparent_size() {
        let (near, _) = compute_distance(
            &patch_at_scale(TargetClass::Truck, 24),
            TargetClass::Truck,
            &DEFAULT_SCALES,
        );
        let (far, _) = compute_distance(
            &patch_at_scale(TargetClass::Truck, 10),
            TargetClass::Truck,
            &DEFAULT_SCALES,
        );
        assert!(
            near.distance_m < far.distance_m,
            "near {} m vs far {} m",
            near.distance_m,
            far.distance_m
        );
    }

    #[test]
    fn distance_is_physically_calibrated() {
        // Reference scale (16 px) maps to the reference distance (500 m)
        // within the ladder's resolution.
        let patch = patch_at_scale(TargetClass::Bunker, 16);
        let (est, _) = compute_distance(&patch, TargetClass::Bunker, &DEFAULT_SCALES);
        assert!(
            (est.distance_m - 500.0).abs() < 120.0,
            "estimated {} m",
            est.distance_m
        );
    }

    #[test]
    fn sweep_cost_scales_with_ladder_length() {
        let patch = patch_at_scale(TargetClass::Tank, 16);
        let (_, f_small) = compute_distance(&patch, TargetClass::Tank, &DEFAULT_SCALES[..2]);
        let (_, f_full) = compute_distance(&patch, TargetClass::Tank, &DEFAULT_SCALES);
        assert!(f_full > 3 * f_small, "full {f_full} vs small {f_small}");
    }

    #[test]
    fn parabolic_vertex_exact_on_parabola() {
        // y = -(x-5)² + 3 sampled at 4, 5, 6.
        let f = |x: f64| -(x - 5.0) * (x - 5.0) + 3.0;
        let v = parabolic_vertex(4.0, f(4.0), 5.0, f(5.0), 6.0, f(6.0));
        assert!((v - 5.0).abs() < 1e-12);
        // Asymmetric sampling still recovers the vertex.
        let v2 = parabolic_vertex(3.0, f(3.0), 5.0, f(5.0), 6.0, f(6.0));
        assert!((v2 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_points_fall_back_to_middle() {
        let v = parabolic_vertex(1.0, 1.0, 2.0, 2.0, 3.0, 3.0);
        assert_eq!(v, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty scale ladder")]
    fn empty_ladder_rejected() {
        let patch = patch_at_scale(TargetClass::Tank, 16);
        let _ = compute_distance(&patch, TargetClass::Tank, &[]);
    }
}
