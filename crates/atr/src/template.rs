//! The pre-defined target templates the ATR algorithm matches against.
//!
//! The paper's targets are "pre-defined" (§3); we model three vehicle-like
//! shapes painted procedurally at a reference scale. Scaled renditions of a
//! template (for the distance sweep in the Compute Distance block) are
//! produced by nearest-neighbour resampling of the reference rendition.

use crate::image::Image;

/// The kinds of target the recognizer knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetClass {
    /// Wide hull with a turret block on top.
    Tank,
    /// Long box with a cab block at one end.
    Truck,
    /// Square emplacement with a hollow centre.
    Bunker,
}

impl TargetClass {
    pub const ALL: [TargetClass; 3] = [TargetClass::Tank, TargetClass::Truck, TargetClass::Bunker];

    pub fn name(self) -> &'static str {
        match self {
            TargetClass::Tank => "tank",
            TargetClass::Truck => "truck",
            TargetClass::Bunker => "bunker",
        }
    }
}

/// A rendered template: the reference appearance of a target class.
#[derive(Debug, Clone)]
pub struct Template {
    pub class: TargetClass,
    pub image: Image,
    /// Physical width of the real-world target, metres (used by the
    /// distance estimator: apparent size ∝ 1/distance).
    pub physical_width_m: f64,
    /// Distance at which the reference rendition's scale is correct, m.
    pub reference_distance_m: f64,
}

/// Reference template edge length in pixels (square renditions).
pub const TEMPLATE_SIZE: usize = 16;

impl Template {
    /// Render the reference template for `class`.
    pub fn render(class: TargetClass) -> Template {
        let s = TEMPLATE_SIZE;
        let mut img = Image::zeros(s, s);
        match class {
            TargetClass::Tank => {
                // Hull: rows 8..14, full width margin 1.
                fill(&mut img, 1, 8, s - 2, 6, 200.0);
                // Turret: centered block rows 4..9.
                fill(&mut img, 5, 4, 6, 5, 255.0);
                // Barrel: thin line from turret to the right edge.
                fill(&mut img, 11, 5, 4, 1, 180.0);
            }
            TargetClass::Truck => {
                // Cargo box: long and low.
                fill(&mut img, 1, 6, 10, 7, 190.0);
                // Cab at the right end, slightly taller.
                fill(&mut img, 11, 4, 4, 9, 240.0);
            }
            TargetClass::Bunker => {
                // Square walls with a hollow interior.
                fill(&mut img, 2, 2, s - 4, s - 4, 210.0);
                fill(&mut img, 5, 5, s - 10, s - 10, 40.0);
            }
        }
        let (physical_width_m, reference_distance_m) = match class {
            TargetClass::Tank => (7.0, 500.0),
            TargetClass::Truck => (9.0, 500.0),
            TargetClass::Bunker => (12.0, 500.0),
        };
        Template {
            class,
            image: img,
            physical_width_m,
            reference_distance_m,
        }
    }

    /// The full template bank.
    pub fn bank() -> Vec<Template> {
        TargetClass::ALL.iter().map(|&c| Self::render(c)).collect()
    }

    /// Nearest-neighbour resampling of the reference rendition to
    /// `size × size` pixels — the appearance of this target at distance
    /// `reference_distance_m · TEMPLATE_SIZE / size`.
    pub fn scaled(&self, size: usize) -> Image {
        assert!(size > 0, "template scale must be positive");
        let src = &self.image;
        let mut out = Image::zeros(size, size);
        for y in 0..size {
            for x in 0..size {
                let sx = x * src.width() / size;
                let sy = y * src.height() / size;
                out.set(x, y, src.get(sx, sy));
            }
        }
        out
    }

    /// Distance (metres) implied by an apparent rendition of `size` pixels.
    pub fn distance_for_size(&self, size: usize) -> f64 {
        assert!(size > 0);
        self.reference_distance_m * TEMPLATE_SIZE as f64 / size as f64
    }
}

fn fill(img: &mut Image, x0: usize, y0: usize, w: usize, h: usize, v: f64) {
    for y in y0..(y0 + h).min(img.height()) {
        for x in x0..(x0 + w).min(img.width()) {
            img.set(x, y, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_has_all_classes() {
        let bank = Template::bank();
        assert_eq!(bank.len(), 3);
        let classes: Vec<_> = bank.iter().map(|t| t.class).collect();
        assert_eq!(classes, TargetClass::ALL);
    }

    #[test]
    fn templates_are_distinct() {
        let bank = Template::bank();
        for i in 0..bank.len() {
            for j in (i + 1)..bank.len() {
                assert_ne!(
                    bank[i].image.pixels(),
                    bank[j].image.pixels(),
                    "{} and {} render identically",
                    bank[i].class.name(),
                    bank[j].class.name()
                );
            }
        }
    }

    #[test]
    fn templates_have_signal() {
        for t in Template::bank() {
            assert!(t.image.variance() > 100.0, "{} too flat", t.class.name());
        }
    }

    #[test]
    fn scaling_preserves_shape_roughly() {
        let t = Template::render(TargetClass::Tank);
        let up = t.scaled(32);
        assert_eq!(up.width(), 32);
        // Identity scale reproduces the original.
        let same = t.scaled(TEMPLATE_SIZE);
        assert_eq!(same.pixels(), t.image.pixels());
    }

    #[test]
    fn distance_size_relation_is_inverse() {
        let t = Template::render(TargetClass::Truck);
        let d16 = t.distance_for_size(16);
        let d32 = t.distance_for_size(32);
        let d8 = t.distance_for_size(8);
        assert!((d16 - 500.0).abs() < 1e-9);
        assert!((d32 - 250.0).abs() < 1e-9);
        assert!((d8 - 1000.0).abs() < 1e-9);
    }
}
