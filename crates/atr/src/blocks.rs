//! The functional-block algebra of the ATR pipeline.
//!
//! The four blocks of Fig. 1 can be "all combined into one node or
//! distributed onto multiple nodes in a pipeline" (§4.3) — always as
//! *contiguous* runs, because the data flow is a chain. [`BlockRange`]
//! represents one node's share; [`partitions`] enumerates every way to
//! split the chain across `n` nodes (the candidate set behind Fig. 8).

use std::fmt;

/// One functional block of the ATR algorithm (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Block {
    TargetDetection,
    Fft,
    Ifft,
    ComputeDistance,
}

impl Block {
    /// All blocks in dataflow order.
    pub const ALL: [Block; 4] = [
        Block::TargetDetection,
        Block::Fft,
        Block::Ifft,
        Block::ComputeDistance,
    ];

    pub const COUNT: usize = 4;

    /// Position in the dataflow chain (0-based).
    pub fn index(self) -> usize {
        match self {
            Block::TargetDetection => 0,
            Block::Fft => 1,
            Block::Ifft => 2,
            Block::ComputeDistance => 3,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Block::TargetDetection => "Target Detect.",
            Block::Fft => "FFT",
            Block::Ifft => "IFFT",
            Block::ComputeDistance => "Comp. Distance",
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A contiguous, non-empty run of blocks `[start, end)` — one node's share
/// of the algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRange {
    start: usize,
    end: usize,
}

impl BlockRange {
    /// Blocks `[start, end)`; must be non-empty and within the chain.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start < end && end <= Block::COUNT, "invalid block range");
        BlockRange { start, end }
    }

    /// The whole algorithm on one node.
    pub fn full() -> Self {
        BlockRange {
            start: 0,
            end: Block::COUNT,
        }
    }

    pub fn start(&self) -> usize {
        self.start
    }

    pub fn end(&self) -> usize {
        self.end
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        false // ranges are non-empty by construction
    }

    /// `true` if this range starts the chain (receives raw frames).
    pub fn is_first(&self) -> bool {
        self.start == 0
    }

    /// `true` if this range ends the chain (sends final results).
    pub fn is_last(&self) -> bool {
        self.end == Block::COUNT
    }

    pub fn contains(&self, b: Block) -> bool {
        (self.start..self.end).contains(&b.index())
    }

    /// The blocks in this range, in dataflow order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        Block::ALL[self.start..self.end].iter().copied()
    }

    pub fn first_block(&self) -> Block {
        Block::ALL[self.start]
    }

    pub fn last_block(&self) -> Block {
        Block::ALL[self.end - 1]
    }

    /// The range a node adopts when it absorbs the next node's share
    /// (power-failure recovery, §5.4): `[self.start, other.end)`.
    /// Panics unless `other` immediately follows `self`.
    pub fn merge_with_next(&self, other: BlockRange) -> BlockRange {
        assert_eq!(self.end, other.start, "ranges are not adjacent");
        BlockRange {
            start: self.start,
            end: other.end,
        }
    }
}

impl fmt::Display for BlockRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, b) in self.blocks().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ")")
    }
}

/// Every way to split the 4-block chain into `n_nodes` contiguous,
/// non-empty shares (compositions of 4 into `n_nodes` parts). For
/// `n_nodes = 2` this yields exactly the three schemes of Fig. 8.
pub fn partitions(n_nodes: usize) -> Vec<Vec<BlockRange>> {
    assert!(
        (1..=Block::COUNT).contains(&n_nodes),
        "node count must be in 1..={}",
        Block::COUNT
    );
    let mut out = Vec::new();
    // Choose n_nodes-1 cut points among the 3 interior boundaries.
    let cuts = n_nodes - 1;
    let mut chosen = Vec::with_capacity(cuts);
    fn recurse(
        next: usize,
        remaining: usize,
        chosen: &mut Vec<usize>,
        out: &mut Vec<Vec<BlockRange>>,
    ) {
        if remaining == 0 {
            let mut ranges = Vec::with_capacity(chosen.len() + 1);
            let mut start = 0;
            for &cut in chosen.iter() {
                ranges.push(BlockRange::new(start, cut));
                start = cut;
            }
            ranges.push(BlockRange::new(start, Block::COUNT));
            out.push(ranges);
            return;
        }
        for cut in next..Block::COUNT {
            chosen.push(cut);
            recurse(cut + 1, remaining - 1, chosen, out);
            chosen.pop();
        }
    }
    recurse(1, cuts, &mut chosen, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_order_and_indices() {
        for (i, b) in Block::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }

    #[test]
    fn full_range_covers_everything() {
        let r = BlockRange::full();
        assert!(r.is_first() && r.is_last());
        assert_eq!(r.blocks().count(), 4);
        assert_eq!(r.first_block(), Block::TargetDetection);
        assert_eq!(r.last_block(), Block::ComputeDistance);
    }

    #[test]
    fn two_node_partitions_are_the_three_fig8_schemes() {
        let parts = partitions(2);
        assert_eq!(parts.len(), 3);
        // Scheme 1: (TD) (FFT+IFFT+CD)
        assert_eq!(parts[0][0], BlockRange::new(0, 1));
        assert_eq!(parts[0][1], BlockRange::new(1, 4));
        // Scheme 2: (TD+FFT) (IFFT+CD)
        assert_eq!(parts[1][0], BlockRange::new(0, 2));
        assert_eq!(parts[1][1], BlockRange::new(2, 4));
        // Scheme 3: (TD+FFT+IFFT) (CD)
        assert_eq!(parts[2][0], BlockRange::new(0, 3));
        assert_eq!(parts[2][1], BlockRange::new(3, 4));
    }

    #[test]
    fn partition_counts_are_binomial() {
        assert_eq!(partitions(1).len(), 1);
        assert_eq!(partitions(2).len(), 3);
        assert_eq!(partitions(3).len(), 3);
        assert_eq!(partitions(4).len(), 1);
    }

    #[test]
    fn partitions_tile_the_chain() {
        for n in 1..=4 {
            for p in partitions(n) {
                assert_eq!(p.len(), n);
                assert!(p[0].is_first());
                assert!(p[n - 1].is_last());
                for w in p.windows(2) {
                    assert_eq!(w[0].end(), w[1].start(), "gap in partition");
                }
                let total: usize = p.iter().map(|r| r.len()).sum();
                assert_eq!(total, Block::COUNT);
            }
        }
    }

    #[test]
    fn merge_with_next_joins_adjacent() {
        let a = BlockRange::new(0, 1);
        let b = BlockRange::new(1, 4);
        let merged = a.merge_with_next(b);
        assert_eq!(merged, BlockRange::full());
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn merge_rejects_non_adjacent() {
        let a = BlockRange::new(0, 1);
        let c = BlockRange::new(2, 4);
        let _ = a.merge_with_next(c);
    }

    #[test]
    fn display_matches_fig8_notation() {
        let s = format!("{}", BlockRange::new(1, 4));
        assert_eq!(s, "(FFT + IFFT + Comp. Distance)");
    }

    #[test]
    #[should_panic(expected = "invalid block range")]
    fn empty_range_rejected() {
        let _ = BlockRange::new(2, 2);
    }
}
